"""Perf benchmark: sequential vs batched cross-config QoR inference.

Times the Table-5 DSE prediction hot path on a 64-configuration design space
of ``gemm`` in two modes:

* **sequential** — one :meth:`HierarchicalQoRModel.predict` call per
  configuration (the paper-faithful fallback path; it keeps no state between
  calls, so every sweep re-runs graph construction and one GNN forward pass
  per inner loop and per design);
* **batched** — one :meth:`HierarchicalQoRModel.predict_batch` call for the
  whole space: graphs are constructed once per pragma delta, all inner-loop
  units share one disjoint-union forward pass per inner model, one batched
  GNNg pass scores the distinct condensed graphs, and predictions are
  memoized per design delta.

Both modes are measured over repeated sweeps of the same space (the DSE
serving scenario): the batched engine's first sweep pays construction for
every distinct design it has not seen, later sweeps run from the caches.
Results are written to ``benchmarks/results/BENCH_dse_inference.json`` so
successive PRs can track the perf trajectory; the guard asserts numerical
equivalence (1e-9) and the >= 5x steady-state speedup target.

Environment knobs: ``REPRO_BENCH_DSE_SPACE`` (space size, default 64),
``REPRO_BENCH_DSE_SWEEPS`` (measured sweeps, default 3),
``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10 — prediction
*speed* does not depend on model quality).
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
)
from repro.dse.space import sample_design_space
from repro.kernels import load_kernel

pytestmark = pytest.mark.perf

KERNEL = "gemm"
SPEEDUP_TARGET = 5.0
EQUIVALENCE_TOLERANCE = 1e-9


def _train_model(function) -> HierarchicalQoRModel:
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({KERNEL: function}, {KERNEL: configs})
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    model.fit(instances)
    return model


def _sweep_stats(seconds: list[float], num_configs: int) -> dict:
    mean = float(np.mean(seconds))
    return {
        "sweep_seconds": [round(s, 6) for s in seconds],
        "mean_sweep_seconds": round(mean, 6),
        "configs_per_second": round(num_configs / mean, 2),
    }


def test_dse_batched_inference_throughput():
    function = load_kernel(KERNEL)
    model = _train_model(function)
    space = sample_design_space(
        function, env_int("REPRO_BENCH_DSE_SPACE", 64),
        rng=np.random.default_rng(1),
    )
    sweeps = max(1, env_int("REPRO_BENCH_DSE_SWEEPS", 3))

    # sequential path: stateless between calls, every sweep is identical
    model.clear_inference_caches()
    sequential_times: list[float] = []
    for _ in range(sweeps):
        start = time.perf_counter()
        sequential = [model.predict(function, config) for config in space]
        sequential_times.append(time.perf_counter() - start)

    # batched path: first sweep builds the caches, later sweeps serve from
    # them — both phases are reported separately
    model.clear_inference_caches()
    start = time.perf_counter()
    batched = model.predict_batch(function, space)
    first_sweep_seconds = time.perf_counter() - start
    steady_times: list[float] = []
    for _ in range(sweeps):
        start = time.perf_counter()
        batched_again = model.predict_batch(function, space)
        steady_times.append(time.perf_counter() - start)

    worst_rel = 0.0
    for seq, bat, again in zip(sequential, batched, batched_again):
        for name in seq:
            denominator = max(abs(seq[name]), 1.0)
            worst_rel = max(
                worst_rel,
                abs(seq[name] - bat[name]) / denominator,
                abs(seq[name] - again[name]) / denominator,
            )

    num_configs = len(space)
    sequential_stats = _sweep_stats(sequential_times, num_configs)
    first_stats = _sweep_stats([first_sweep_seconds], num_configs)
    steady_stats = _sweep_stats(steady_times, num_configs)
    speedup_first = (
        sequential_stats["mean_sweep_seconds"] / first_stats["mean_sweep_seconds"]
    )
    speedup_steady = (
        sequential_stats["mean_sweep_seconds"] / steady_stats["mean_sweep_seconds"]
    )

    payload = {
        "benchmark": "dse_batched_inference",
        "kernel": KERNEL,
        "num_configs": num_configs,
        "measured_sweeps": sweeps,
        "sequential": sequential_stats,
        "batched_first_sweep": first_stats,
        "batched_steady_state": steady_stats,
        "speedup_first_sweep": round(speedup_first, 2),
        "speedup_steady_state": round(speedup_steady, 2),
        "equivalence_max_rel_error": worst_rel,
        "graph_cache_stats": model._graph_cache.stats.as_dict(),
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_dse_inference.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        ["sequential", f"{sequential_stats['mean_sweep_seconds']:.3f}",
         f"{sequential_stats['configs_per_second']:.1f}", "1.0x"],
        ["batched (first sweep)", f"{first_stats['mean_sweep_seconds']:.3f}",
         f"{first_stats['configs_per_second']:.1f}", f"{speedup_first:.1f}x"],
        ["batched (steady state)", f"{steady_stats['mean_sweep_seconds']:.3f}",
         f"{steady_stats['configs_per_second']:.1f}", f"{speedup_steady:.1f}x"],
    ]
    write_result(
        "BENCH_dse_inference.txt",
        format_table(
            ["mode", "sweep s", "configs/s", "speedup"], rows,
            title=f"DSE inference throughput — {KERNEL}, "
                  f"{num_configs} configs, {sweeps} sweeps",
        ),
    )

    assert worst_rel < EQUIVALENCE_TOLERANCE, (
        f"batched predictions diverged from sequential: {worst_rel}"
    )
    assert speedup_steady >= SPEEDUP_TARGET, (
        f"steady-state batched speedup {speedup_steady:.1f}x "
        f"below the {SPEEDUP_TARGET}x target"
    )
