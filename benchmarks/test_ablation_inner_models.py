"""Ablation — separate GNNp / GNNnp models vs one shared inner-loop model.

The paper trains distinct models for pipelined and non-pipelined loops
"because execution models of pipelined and non-pipelined loops are different
and training GNN models separately can improve accuracy".  This ablation
trains a single shared model on the union of the two inner-loop datasets and
compares its per-class MAPE with the specialised models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import inner_unit_samples
from repro.core.models import InnerLoopGNN
from repro.core.trainer import GraphRegressorTrainer
from repro.nn.data import train_validation_test_split

from conftest import bench_training_config, format_table, write_result

TARGETS = ("lut", "dsp", "ff", "iteration_latency", "latency")


def _train_inner(samples, seed=0):
    rng = np.random.default_rng(seed)
    train, validation, test = train_validation_test_split(samples, rng=rng)
    trainer = GraphRegressorTrainer(None, TARGETS, bench_training_config())
    trainer.fit_preprocessing(train or samples)
    model = InnerLoopGNN(
        in_features=trainer.input_dim(train or samples), hidden=32,
        conv_type="graphsage", rng=np.random.default_rng(seed),
    )
    trainer.model = model
    trainer.train(train or samples, validation or None)
    return trainer, test or validation or samples


@pytest.mark.benchmark(group="ablation")
def test_ablation_separate_vs_shared_inner_models(benchmark, training_corpus):
    instances = training_corpus["instances"]
    results = {}

    def run() -> None:
        pipelined, non_pipelined = inner_unit_samples(instances)
        trainer_p, test_p = _train_inner(pipelined, seed=0)
        trainer_np, test_np = _train_inner(non_pipelined, seed=1)
        trainer_shared, _ = _train_inner(pipelined + non_pipelined, seed=2)
        results["separate_p"] = trainer_p.evaluate(test_p)
        results["separate_np"] = trainer_np.evaluate(test_np)
        results["shared_on_p"] = trainer_shared.evaluate(test_p)
        results["shared_on_np"] = trainer_shared.evaluate(test_np)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, key in (
        ("GNNp (separate)", "separate_p"),
        ("shared model on pipelined loops", "shared_on_p"),
        ("GNNnp (separate)", "separate_np"),
        ("shared model on non-pipelined loops", "shared_on_np"),
    ):
        scores = results[key]
        rows.append([
            label, f"{scores['latency']:.1f}", f"{scores['iteration_latency']:.1f}",
            f"{scores['lut']:.1f}", f"{scores['ff']:.1f}",
            f"{float(np.mean(list(scores.values()))):.1f}",
        ])
    text = format_table(
        ["Model", "Latency", "IterLat", "LUT", "FF", "Mean"],
        rows,
        title="Ablation: separate GNNp/GNNnp vs one shared inner model (MAPE %)",
    )
    write_result("ablation_inner_models.txt", text)

    assert results["separate_p"] and results["separate_np"]
