"""Table V — design-space exploration on the four unseen kernels.

For ``bicg``, ``symm``, ``mvt`` and ``syrk`` (held out of training) the
benchmark: enumerates the pragma design space, evaluates every point with the
ground-truth flow ("Vivado" reference, whose simulated runtime gives the
exhaustive DSE time), then runs model-guided DSE with three predictors —
the Wu-style pragma-blind GNN [8], the GNN-DSE-style post-HLS predictor [6]
and our hierarchical model — and reports #configs, DSE time and ADRS.

Shape checks: our ADRS is the lowest of the three predictors on average, and
model-guided DSE is orders of magnitude faster than the exhaustive flow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FlatGNNBaseline, GNNDSEBaseline
from repro.dse import ModelGuidedExplorer, exhaustive_ground_truth
from repro.dse.space import sample_design_space
from repro.kernels import dse_kernels

from conftest import bench_training_config, env_int, format_table, write_result


@pytest.mark.benchmark(group="table5")
def test_table5_dse_on_unseen_kernels(benchmark, training_corpus, hierarchical_model):
    instances = training_corpus["instances"]
    ours = hierarchical_model["model"]
    rows = []
    adrs_summary: dict[str, list[float]] = {"wu": [], "gnn_dse": [], "ours": []}
    speedups: list[float] = []

    def run() -> None:
        # train the two comparison predictors on the same corpus
        wu = FlatGNNBaseline(
            pragma_aware=False, label_stage="post_route",
            training=bench_training_config(),
        )
        wu.fit(instances)
        gnn_dse = GNNDSEBaseline(training=bench_training_config())
        gnn_dse.fit(instances)

        limit = env_int("REPRO_BENCH_DSE_CONFIGS", 150)
        for name, function in dse_kernels().items():
            configs = sample_design_space(
                function, limit, rng=np.random.default_rng(23)
            )
            space = exhaustive_ground_truth(function, configs)
            results = {}
            for label, predictor in (
                ("wu", wu), ("gnn_dse", gnn_dse), ("ours", ours)
            ):
                explorer = ModelGuidedExplorer(
                    predictor.predict, name=label,
                    predict_batch_fn=getattr(predictor, "predict_batch", None),
                )
                results[label] = explorer.explore(function, space)
                adrs_summary[label].append(results[label].adrs_percent)
            ours_result = results["ours"]
            speedups.append(ours_result.speedup)
            rows.append([
                name,
                str(space.num_configs),
                f"{space.simulated_tool_seconds / 86400:.1f} days",
                f"{max(ours_result.model_seconds, 1e-3):.1f} s",
                f"{results['wu'].adrs_percent:.2f}",
                f"{results['gnn_dse'].adrs_percent:.2f}",
                f"{ours_result.adrs_percent:.2f}",
            ])

    benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_table(
        ["Kernel", "#Configs", "Exhaustive (sim.)", "Ours (wall)",
         "ADRS [8] %", "ADRS [6] %", "ADRS Ours %"],
        rows,
        title="Table V reproduction: DSE on unseen applications",
    )
    averages = {k: float(np.mean(v)) for k, v in adrs_summary.items()}
    text += (
        f"\nAverage ADRS (%): Wu [8]={averages['wu']:.2f}  "
        f"GNN-DSE [6]={averages['gnn_dse']:.2f}  Ours={averages['ours']:.2f}\n"
        f"Mean exhaustive/model speedup: {np.mean(speedups):.0f}x\n"
    )
    write_result("table5_dse.txt", text)

    # Shape checks
    assert averages["ours"] <= averages["wu"], "ours should beat the pragma-blind DSE"
    assert np.mean(speedups) > 100.0, "model-guided DSE should be orders faster"
