"""Perf benchmark: the serving daemon under concurrent load.

A load generator drives one resident :class:`~repro.serve.QoRServer`
(in-process, real TCP sockets) with single-configuration requests — the
worst case for a batched inference engine, because every request alone is
far below the batching sweet spot.  The cross-request micro-batcher is
what recovers the throughput: requests from concurrent clients that land
in the same coalescing window are merged into shared ``predict_batch``
passes.

The measured quantity is steady-state service throughput (the prediction
memo is primed first): a single client pays the full coalescing window per
request with nobody to share it, while concurrent clients amortize the
same window across everything that arrived during it.  The headline guard
is that ``CONCURRENCY`` clients sustain at least ``SPEEDUP_TARGET``x the
single-client configs/s; per-request p50/p99 latency and the server's
batch-size histogram land in ``benchmarks/results/BENCH_serve.json`` for
the perf-trend gate.

Environment knobs: ``REPRO_BENCH_SERVE_REQUESTS`` (requests per client,
default 80), ``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10 —
throughput does not depend on model quality).
"""

from __future__ import annotations

import asyncio
import json
import platform
import threading
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    TrainingConfig,
    build_design_instances,
)
from repro.core.predictor import QoRPredictor
from repro.dse.space import sample_design_space
from repro.kernels import load_kernel
from repro.serve import QoRClient, QoRServer

pytestmark = pytest.mark.perf

KERNEL = "gemm"
CONCURRENCY = 8
CONCURRENCY_LEVELS = (1, 2, CONCURRENCY)
SPEEDUP_TARGET = 3.0
POOL_SIZE = 32


def _train_predictor(function) -> QoRPredictor:
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({KERNEL: function}, {KERNEL: configs})
    predictor = QoRPredictor(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    predictor.fit_instances(instances)
    return predictor


class _DaemonThread:
    """Minimal in-process host: the server on a background event loop."""

    def __init__(self, server: QoRServer):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())
        self._loop.close()

    async def _main(self) -> None:
        await self.server.start()
        self.address = self.server.address
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    def __enter__(self) -> "_DaemonThread":
        self._thread.start()
        assert self._ready.wait(timeout=60)
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


def _drive_clients(address, pool, num_clients: int, requests_each: int) -> dict:
    """``num_clients`` concurrent clients, single-config requests each.

    Returns sustained throughput and the per-request latency distribution.
    Clients round-robin different offsets of the config pool so concurrent
    requests genuinely differ (coalesced passes carry distinct designs).
    """
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    barrier = threading.Barrier(num_clients + 1)

    def worker(index: int) -> None:
        with QoRClient(*address) as client:
            barrier.wait(timeout=60)
            for step in range(requests_each):
                config = pool[(index + step) % len(pool)]
                begin = time.perf_counter()
                client.predict_kernel(KERNEL, [config])
                latencies[index].append(time.perf_counter() - begin)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)  # all clients connected: the clock starts fair
    begin = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - begin
    flat = sorted(value for series in latencies for value in series)
    total = num_clients * requests_each
    return {
        "clients": num_clients,
        "requests": total,
        "elapsed_seconds": round(elapsed, 6),
        "configs_per_second": round(total / elapsed, 2),
        "latency_p50_ms": round(float(np.percentile(flat, 50)) * 1e3, 3),
        "latency_p99_ms": round(float(np.percentile(flat, 99)) * 1e3, 3),
        "latency_max_ms": round(flat[-1] * 1e3, 3),
    }


def test_serve_concurrent_throughput():
    function = load_kernel(KERNEL)
    predictor = _train_predictor(function)
    pool = sample_design_space(function, POOL_SIZE, rng=np.random.default_rng(2))
    requests_each = env_int("REPRO_BENCH_SERVE_REQUESTS", 80)

    with _DaemonThread(QoRServer(predictor, port=0)) as daemon:
        # prime the resident caches once: the measured regime is the steady
        # state of a long-lived daemon, where the batching window (not cold
        # graph construction) dominates per-request latency
        with QoRClient(*daemon.address) as client:
            client.predict_kernel(KERNEL, pool)
        levels = {
            f"c{level}": _drive_clients(
                daemon.address, pool, level, requests_each
            )
            for level in CONCURRENCY_LEVELS
        }
        with QoRClient(*daemon.address) as client:
            stats = client.stats()

    single = levels["c1"]
    loaded = levels[f"c{CONCURRENCY}"]
    speedup = round(
        loaded["configs_per_second"] / single["configs_per_second"], 2
    )

    payload = {
        "benchmark": "serve",
        "kernel": KERNEL,
        "pool_configs": len(pool),
        "requests_per_client": requests_each,
        "batch_window_ms": daemon.server.batcher.window_seconds * 1e3,
        "levels": levels,
        "concurrency_speedup": speedup,
        "batcher": stats["batcher"],
        "server": stats["server"],
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [
            name, stats_["configs_per_second"],
            f"{stats_['latency_p50_ms']:.2f}", f"{stats_['latency_p99_ms']:.2f}",
            f"{stats_['latency_max_ms']:.2f}",
        ]
        for name, stats_ in levels.items()
    ]
    write_result(
        "BENCH_serve.txt",
        format_table(
            ["clients", "configs/s", "p50 ms", "p99 ms", "max ms"],
            rows,
            title=f"Serving throughput — {KERNEL}, single-config requests, "
                  f"warm daemon; {CONCURRENCY}-client speedup {speedup:.2f}x "
                  f"({stats['batcher']['coalesced_batches']} coalesced batches)",
        ),
    )

    assert stats["batcher"]["coalesced_batches"] > 0, (
        "concurrent load never produced a coalesced batch — the "
        "micro-batching window is not merging cross-client requests"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"{CONCURRENCY} concurrent clients sustained only {speedup:.2f}x the "
        f"single-client configs/s (target >= {SPEEDUP_TARGET}x): "
        f"cross-request micro-batching is not paying off"
    )
