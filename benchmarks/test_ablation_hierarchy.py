"""Ablation — hierarchical prediction vs a flat whole-graph model.

Both models see the same pragma-aware graphs and post-route labels; the only
difference is the paper's contribution: decomposing the kernel into inner
loops predicted by GNNp/GNNnp and condensing them into super nodes for GNNg.
The paper attributes its Table IV margin partly to this "reservation of loop
hierarchies"; the ablation quantifies it in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table, write_result


def _mean(scores: dict[str, float]) -> float:
    return float(np.mean(list(scores.values())))


@pytest.mark.benchmark(group="ablation")
def test_ablation_hierarchy_vs_flat(
    benchmark, training_corpus, hierarchical_model, flat_pragma_aware_baseline
):
    instances = training_corpus["instances"]
    results = {}

    def run() -> None:
        results["hierarchical"] = hierarchical_model["model"].evaluate(instances)
        results["flat"] = flat_pragma_aware_baseline["model"].evaluate_post_route(
            instances
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, f"{scores['latency']:.1f}", f"{scores['dsp']:.1f}",
         f"{scores['lut']:.1f}", f"{scores['ff']:.1f}", f"{_mean(scores):.1f}"]
        for name, scores in (
            ("hierarchical (GNNp/GNNnp/GNNg)", results["hierarchical"]),
            ("flat whole-graph (same graphs)", results["flat"]),
        )
    ]
    text = format_table(
        ["Model", "Latency", "DSP", "LUT", "FF", "Mean"],
        rows,
        title="Ablation: hierarchy vs flat whole-graph prediction (MAPE %)",
    )
    write_result("ablation_hierarchy.txt", text)

    # the hierarchical decomposition should not be worse on average
    assert _mean(results["hierarchical"]) <= _mean(results["flat"]) * 1.25
