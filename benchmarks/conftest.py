"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Because the
full-paper scale (thousands of designs, 250 epochs) is not laptop-friendly,
the corpus size is controlled by environment variables and defaults to a
configuration that finishes in minutes while preserving the qualitative
shape of each result:

``REPRO_BENCH_KERNELS``      number of training kernels       (default 8)
``REPRO_BENCH_CONFIGS``      configurations sampled per kernel (default 20)
``REPRO_BENCH_EPOCHS``       training epochs per model         (default 40)
``REPRO_BENCH_DSE_CONFIGS``  design points per DSE kernel      (default 150)
``REPRO_BENCH_GNN_TYPES``    comma list for Table III          (default all 5)

Numbers reported by each benchmark are written to ``benchmarks/results/`` so
that EXPERIMENTS.md can reference them after a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
)
from repro.dse.space import sample_design_space
from repro.kernels import TRAIN_KERNELS, load_kernels

RESULTS_DIR = Path(__file__).parent / "results"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def bench_kernel_names() -> tuple[str, ...]:
    count = env_int("REPRO_BENCH_KERNELS", 8)
    return TRAIN_KERNELS[:max(1, min(count, len(TRAIN_KERNELS)))]


def bench_gnn_types() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_GNN_TYPES", "gcn,gat,graphsage,transformer,pna")
    return [name.strip() for name in raw.split(",") if name.strip()]


def bench_training_config() -> TrainingConfig:
    return TrainingConfig(
        epochs=env_int("REPRO_BENCH_EPOCHS", 40),
        batch_size=32,
        learning_rate=2e-3,
        patience=20,
        seed=0,
    )


def peak_rss_mb() -> float:
    """Peak resident-set size of this process so far, in MiB.

    Each perf benchmark stamps this into its ``BENCH_*.json`` so the
    perf-trend gate can warn on memory growth alongside speed regressions.
    ``ru_maxrss`` is a process-lifetime high-water mark, so within one
    pytest process later benchmarks inherit the peak of earlier ones — the
    tracked quantity is "memory needed to run the perf suite up to and
    including this benchmark", which is exactly what the CI runner must
    provision.
    """
    import resource

    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1)


def write_result(name: str, text: str) -> Path:
    """Persist a benchmark's table so EXPERIMENTS.md can quote it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    print(f"\n{text}")
    return path


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="session")
def training_corpus():
    """Design instances for the training kernels (ground truth included)."""
    rng = np.random.default_rng(11)
    kernels = load_kernels(bench_kernel_names())
    limit = env_int("REPRO_BENCH_CONFIGS", 20)
    configs = {
        name: sample_design_space(function, limit, rng=rng)
        for name, function in kernels.items()
    }
    instances = build_design_instances(kernels, configs)
    return {"kernels": kernels, "instances": instances}


@pytest.fixture(scope="session")
def flat_pragma_aware_baseline(training_corpus):
    """A whole-graph GNN on pragma-aware graphs (the 'no hierarchy' ablation)."""
    from repro.baselines import FlatGNNBaseline

    baseline = FlatGNNBaseline(
        pragma_aware=True, label_stage="post_route",
        training=bench_training_config(),
    )
    result = baseline.fit(training_corpus["instances"])
    return {"model": baseline, "result": result}


@pytest.fixture(scope="session")
def hierarchical_model(training_corpus):
    """The default (GraphSAGE) hierarchical model trained on the corpus."""
    config = HierarchicalModelConfig(
        conv_type="graphsage", hidden=32, training=bench_training_config()
    )
    model = HierarchicalQoRModel(config)
    report = model.fit(training_corpus["instances"])
    return {"model": model, "report": report}
