"""Perf benchmark: the vectorized cold-path encoder and epoch-cached unions.

After the replica-replay work (PR 2) and sharding (PR 3), cold end-to-end
sweeps were GNN-bound: forward passes plus *sample encoding* dominated the
wall time of a first-contact ``predict_batch``.  This benchmark times the
vectorized encoding pipeline — the single-pass union encoder in
``repro.nn.data.make_batch``, the outer-graph sample templates in
``repro.core.hierarchical``, and the memoized flat scatter indices in
``repro.nn.autograd`` — against the retained reference implementation
(:func:`repro.nn.data.make_batch_reference`, forced end to end with
:func:`repro.nn.autograd.reference_encoding`), in three parts:

* **cold sweep** — a first-contact ``predict_batch`` over a design space
  from empty inference caches, reference vs vectorized.  Since the columnar
  cold path landed (PR 5: builder-native feature columns, zero-object
  replica replay, embedding-gather encoding, zero-copy graph-to-tensor
  handoff, fused SAGE/residual ops) the guard asserts >= 2.6x configs/s on
  ``gemm`` and >= 2.2x on ``bicg``;
* **equivalence** — for *every* registered kernel, a small sweep must agree
  between the two pipelines to <= 1e-9 relative per metric;
* **training epochs** — a ``GraphRegressorTrainer`` run on flat samples.
  With stable minibatch membership the epoch-level
  :class:`~repro.nn.data.BatchCache` replays every union from epoch 2
  onwards; the guard asserts post-epoch-1 epochs run >= 1.5x faster than the
  reference pipeline's post-epoch-1 epochs (whose own per-sample encoded
  cache is already warm, so the comparison isolates batch assembly, edge
  derivations and scatter-index reuse).

Results land in ``benchmarks/results/BENCH_cold_path.json`` and feed the CI
perf-trend gate (``benchmarks/check_trend.py``).

Environment knobs: ``REPRO_BENCH_COLD_SPACE`` (timed space size, default
64), ``REPRO_BENCH_COLD_SWEEPS`` (cold repetitions, default 3),
``REPRO_BENCH_COLD_EQ_CONFIGS`` (equivalence configs per kernel, default 6),
``REPRO_BENCH_COLD_TRAIN_CONFIGS`` (training samples, default 48) and
``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10).
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
)
from repro.core.dataset import flat_sample
from repro.core.models import GlobalGNN
from repro.core.trainer import GraphRegressorTrainer
from repro.dse.space import sample_design_space
from repro.kernels import KERNEL_SOURCES, load_kernel
from repro.nn.autograd import reference_encoding

pytestmark = pytest.mark.perf

TIMED_KERNELS = ("gemm", "bicg")
GUARDED_KERNEL = "gemm"
#: vs the retained reference pipeline; raised from 2.0 when the columnar
#: cold path landed (measured ~3.3-3.7x on gemm on the 1-core dev box)
COLD_SWEEP_SPEEDUP_TARGET = 2.6
SECONDARY_SPEEDUP_TARGETS = {"bicg": 2.2}
EPOCH_SPEEDUP_TARGET = 1.5
EQUIVALENCE_TOLERANCE = 1e-9


def _train_model() -> HierarchicalQoRModel:
    function = load_kernel("gemm")
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({"gemm": function}, {"gemm": configs})
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    model.fit(instances)
    return model


def _cold_sweep(model, function, space, *, reference: bool):
    """One first-contact sweep from empty caches; returns seconds + outputs."""
    model.clear_inference_caches()
    start = time.perf_counter()
    if reference:
        with reference_encoding():
            outputs = model.predict_batch(function, space)
    else:
        outputs = model.predict_batch(function, space)
    return time.perf_counter() - start, outputs


def _best_cold_sweep(model, function, space, *, reference: bool, sweeps: int):
    best_seconds, outputs = None, None
    for _ in range(sweeps):
        seconds, outputs = _cold_sweep(model, function, space, reference=reference)
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return best_seconds, outputs


def _max_rel_error(expected, actual) -> float:
    worst = 0.0
    for want, got in zip(expected, actual):
        for name in want:
            denominator = max(abs(want[name]), 1.0)
            worst = max(worst, abs(want[name] - got[name]) / denominator)
    return worst


def _train_flat(samples, *, epochs: int, reference: bool):
    """One trainer run over flat samples; returns (result, trainer)."""
    config = TrainingConfig(
        epochs=epochs, batch_size=8, seed=0, patience=epochs,
        regroup_each_epoch=reference,
    )
    trainer = GraphRegressorTrainer(None, ("lut", "latency"), config)
    trainer.fit_preprocessing(samples)
    trainer.model = GlobalGNN(
        in_features=trainer.input_dim(samples), hidden=32, num_layers=3,
        conv_type="graphsage", rng=np.random.default_rng(0),
    )
    if reference:
        with reference_encoding():
            result = trainer.train(samples)
    else:
        result = trainer.train(samples)
    return result, trainer


def test_cold_path_vectorized_encoding():
    model = _train_model()
    space_size = env_int("REPRO_BENCH_COLD_SPACE", 64)
    sweeps = max(1, env_int("REPRO_BENCH_COLD_SWEEPS", 3))
    eq_configs = max(2, env_int("REPRO_BENCH_COLD_EQ_CONFIGS", 6))

    # ---------------------------------------------------------------- #
    # 1) timed cold sweeps: reference vs vectorized pipeline
    # ---------------------------------------------------------------- #
    per_kernel: dict[str, dict] = {}
    rows = []
    for kernel in TIMED_KERNELS:
        function = load_kernel(kernel)
        space = sample_design_space(
            function, space_size, rng=np.random.default_rng(1)
        )
        ref_seconds, ref_outputs = _best_cold_sweep(
            model, function, space, reference=True, sweeps=sweeps
        )
        vec_seconds, vec_outputs = _best_cold_sweep(
            model, function, space, reference=False, sweeps=sweeps
        )
        kernel_target = (
            COLD_SWEEP_SPEEDUP_TARGET if kernel == GUARDED_KERNEL
            else SECONDARY_SPEEDUP_TARGETS.get(kernel, 0.0)
        )
        if kernel_target and ref_seconds / vec_seconds < kernel_target:
            # timing guard, not a correctness check: one noisy scheduler
            # burst on a shared runner can depress either side, so the
            # guarded kernel gets a single deeper re-measure before failing
            ref_retry, ref_outputs = _best_cold_sweep(
                model, function, space, reference=True, sweeps=sweeps + 2
            )
            vec_retry, vec_outputs = _best_cold_sweep(
                model, function, space, reference=False, sweeps=sweeps + 2
            )
            ref_seconds = min(ref_seconds, ref_retry)
            vec_seconds = min(vec_seconds, vec_retry)
        equivalence = _max_rel_error(ref_outputs, vec_outputs)
        speedup = ref_seconds / vec_seconds
        per_kernel[kernel] = {
            "num_configs": len(space),
            "reference_cold": {
                "sweep_seconds": round(ref_seconds, 6),
                "configs_per_second": round(len(space) / ref_seconds, 2),
            },
            "vectorized_cold": {
                "sweep_seconds": round(vec_seconds, 6),
                "configs_per_second": round(len(space) / vec_seconds, 2),
            },
            "cold_sweep_speedup": round(speedup, 2),
            "equivalence_max_rel_error": equivalence,
        }
        rows.append([
            kernel,
            f"{len(space) / ref_seconds:.0f}",
            f"{len(space) / vec_seconds:.0f}",
            f"{speedup:.2f}x",
            f"{equivalence:.1e}",
        ])
        assert equivalence < EQUIVALENCE_TOLERANCE, (
            f"{kernel}: vectorized sweep diverged from reference by {equivalence}"
        )

    # ---------------------------------------------------------------- #
    # 2) prediction equivalence for every registered kernel
    # ---------------------------------------------------------------- #
    equivalence_by_kernel: dict[str, float] = {}
    for kernel in sorted(KERNEL_SOURCES):
        function = load_kernel(kernel)
        space = sample_design_space(
            function, eq_configs, rng=np.random.default_rng(2)
        )
        _, ref_outputs = _cold_sweep(model, function, space, reference=True)
        _, vec_outputs = _cold_sweep(model, function, space, reference=False)
        error = _max_rel_error(ref_outputs, vec_outputs)
        equivalence_by_kernel[kernel] = error
        assert error < EQUIVALENCE_TOLERANCE, (
            f"{kernel}: vectorized encoder diverged from the reference "
            f"encoder by {error}"
        )

    # ---------------------------------------------------------------- #
    # 3) training: epoch-cached unions vs the reference pipeline
    # ---------------------------------------------------------------- #
    function = load_kernel(GUARDED_KERNEL)
    train_space = sample_design_space(
        function,
        max(8, env_int("REPRO_BENCH_COLD_TRAIN_CONFIGS", 48)),
        rng=np.random.default_rng(3),
    )
    instances = build_design_instances(
        {GUARDED_KERNEL: function}, {GUARDED_KERNEL: train_space}
    )
    samples = [flat_sample(instance) for instance in instances]
    epochs = max(4, env_int("REPRO_BENCH_PERF_EPOCHS", 10))
    ref_result, _ = _train_flat(samples, epochs=epochs, reference=True)
    vec_result, vec_trainer = _train_flat(samples, epochs=epochs, reference=False)
    ref_post1 = float(np.mean(ref_result.epoch_seconds[1:]))
    vec_post1 = float(np.mean(vec_result.epoch_seconds[1:]))
    epoch_speedup = ref_post1 / vec_post1
    warmup_ratio = float(vec_result.epoch_seconds[0]) / vec_post1
    batch_cache_stats = vec_trainer._batch_cache.stats()
    training = {
        "num_samples": len(samples),
        "epochs": epochs,
        "batch_size": 8,
        "reference_epoch_seconds": [round(s, 6) for s in ref_result.epoch_seconds],
        "vectorized_epoch_seconds": [round(s, 6) for s in vec_result.epoch_seconds],
        "reference_post_epoch1_mean_seconds": round(ref_post1, 6),
        "vectorized_post_epoch1_mean_seconds": round(vec_post1, 6),
        "epoch_speedup": round(epoch_speedup, 2),
        "first_epoch_over_cached_epoch": round(warmup_ratio, 2),
        "batch_cache": batch_cache_stats,
    }

    payload = {
        "benchmark": "cold_path",
        "space_size": space_size,
        "measured_sweeps": sweeps,
        "cold_sweep_speedup_target": COLD_SWEEP_SPEEDUP_TARGET,
        "epoch_speedup_target": EPOCH_SPEEDUP_TARGET,
        "guarded_kernel": GUARDED_KERNEL,
        "kernels": per_kernel,
        "equivalence_max_rel_error_by_kernel": {
            kernel: error for kernel, error in sorted(equivalence_by_kernel.items())
        },
        "training": training,
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_cold_path.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    write_result(
        "BENCH_cold_path.txt",
        format_table(
            ["kernel", "reference c/s", "vectorized c/s", "speedup", "max err"],
            rows,
            title=(
                f"Cold-path encoding throughput — {space_size} configs, best "
                f"of {sweeps} cold sweeps (c/s = end-to-end predict_batch "
                f"configs per second from empty caches); training epochs "
                f"(n={len(samples)}, batch 8): reference "
                f"{ref_post1:.3f}s/epoch vs cached {vec_post1:.3f}s/epoch "
                f"= {epoch_speedup:.2f}x after epoch 1"
            ),
        ),
    )

    # ---------------------------------------------------------------- #
    # guards
    # ---------------------------------------------------------------- #
    guarded = per_kernel[GUARDED_KERNEL]["cold_sweep_speedup"]
    assert guarded >= COLD_SWEEP_SPEEDUP_TARGET, (
        f"cold-sweep speedup {guarded:.2f}x on {GUARDED_KERNEL} is below the "
        f"{COLD_SWEEP_SPEEDUP_TARGET}x columnar-cold-path target"
    )
    for kernel, target in SECONDARY_SPEEDUP_TARGETS.items():
        measured = per_kernel[kernel]["cold_sweep_speedup"]
        assert measured >= target, (
            f"cold-sweep speedup {measured:.2f}x on {kernel} is below the "
            f"{target}x columnar-cold-path target"
        )
    assert batch_cache_stats["batch_cache_hits"] > 0, (
        "the epoch-level batch cache never replayed a union during training"
    )
    assert epoch_speedup >= EPOCH_SPEEDUP_TARGET, (
        f"post-epoch-1 epoch speedup {epoch_speedup:.2f}x is below the "
        f"{EPOCH_SPEEDUP_TARGET}x epoch-cache target"
    )
