"""Table III — MAPE of post-route QoR prediction for the five GNN types.

The paper trains GNNp, GNNnp and GNNg with five different propagation layers
(GCN, GAT, GraphSAGE, TransformerConv, PNA) and reports the MAPE of latency,
iteration latency, DSP, LUT and FF.  This benchmark regenerates that table on
the simulator-backed corpus; the headline check is that the hierarchical
models reach low prediction error across all metrics and GNN types.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HierarchicalModelConfig, HierarchicalQoRModel

from conftest import bench_gnn_types, bench_training_config, format_table, write_result


@pytest.mark.benchmark(group="table3")
def test_table3_qor_prediction_accuracy(benchmark, training_corpus):
    instances = training_corpus["instances"]
    gnn_types = bench_gnn_types()
    rows = []
    summary: dict[str, dict[str, dict[str, float]]] = {}

    def run() -> None:
        for conv_type in gnn_types:
            config = HierarchicalModelConfig(
                conv_type=conv_type, hidden=32, training=bench_training_config()
            )
            model = HierarchicalQoRModel(config)
            report = model.fit(instances, rng=np.random.default_rng(0))
            summary[conv_type] = report.test_mape()

    benchmark.pedantic(run, rounds=1, iterations=1)

    for conv_type in gnn_types:
        for model_name in ("GNNp", "GNNnp", "GNNg"):
            scores = summary.get(conv_type, {}).get(model_name, {})
            rows.append([
                conv_type, model_name,
                f"{scores.get('latency', float('nan')):.1f}",
                f"{scores.get('iteration_latency', float('nan')):.1f}"
                if model_name != "GNNg" else "N/A",
                f"{scores.get('dsp', float('nan')):.1f}",
                f"{scores.get('lut', float('nan')):.1f}",
                f"{scores.get('ff', float('nan')):.1f}",
            ])
    text = format_table(
        ["GNN type", "Model", "Latency", "IterLat", "DSP", "LUT", "FF"],
        rows,
        title="Table III reproduction: MAPE (%) of post-route QoR prediction",
    )
    write_result("table3_qor_accuracy.txt", text)

    # Shape check: the inner-hierarchy models must deliver usable accuracy
    # (the paper reports <10%; the simulator-backed corpus is far smaller, so
    # we assert a loose bound that still rules out non-learning models).
    inner_errors = []
    for conv_type in summary:
        for model_name in ("GNNp", "GNNnp"):
            scores = summary[conv_type].get(model_name, {})
            for metric in ("lut", "latency"):
                if metric in scores:
                    inner_errors.append(scores[metric])
    assert inner_errors, "no inner-hierarchy models were trained"
    assert float(np.median(inner_errors)) < 60.0
