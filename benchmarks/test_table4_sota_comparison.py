"""Table IV — comparison with the Wu et al. [8] whole-graph approach.

The paper evaluates both methods on a dataset without pragmas and on a
dataset with pragmas applied.  Without pragmas the two approaches are close;
with pragmas the pragma-blind graphs of [8] collapse (they cannot tell design
points apart) while the pragma-aware hierarchical method keeps its accuracy.
The benchmark asserts exactly that ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FlatGNNBaseline
from repro.frontend import PragmaConfig
from repro.core import build_design_instances

from conftest import bench_training_config, format_table, write_result


def _mean(scores: dict[str, float]) -> float:
    return float(np.mean(list(scores.values())))


@pytest.mark.benchmark(group="table4")
def test_table4_comparison_with_wu_et_al(benchmark, training_corpus, hierarchical_model):
    instances = training_corpus["instances"]
    kernels = training_corpus["kernels"]

    # the "without pragmas" dataset: one baseline configuration per kernel
    baseline_instances = build_design_instances(
        kernels, {name: [PragmaConfig()] for name in kernels}
    )

    results: dict[str, dict[str, float]] = {}

    def run() -> None:
        # Wu-style pragma-blind whole-graph GNN on the pragma dataset
        wu_with = FlatGNNBaseline(
            pragma_aware=False, label_stage="post_route",
            training=bench_training_config(),
        )
        wu_with.fit(instances)
        results["wu_with_pragma"] = wu_with.evaluate_post_route(instances)

        # our hierarchical model on the pragma dataset (already trained)
        ours = hierarchical_model["model"]
        results["ours_with_pragma"] = ours.evaluate(instances)

        # both methods on the pragma-free dataset: graphs are identical, so
        # the comparison degenerates to per-kernel regression for both.
        wu_without = FlatGNNBaseline(
            pragma_aware=False, label_stage="post_route",
            training=bench_training_config(),
        )
        wu_without.fit(baseline_instances + instances[: len(baseline_instances)])
        results["wu_without_pragma"] = wu_without.evaluate_post_route(baseline_instances)
        results["ours_without_pragma"] = ours.evaluate(baseline_instances)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, key in [
        ("[8]  w/o pragma", "wu_without_pragma"),
        ("Ours w/o pragma", "ours_without_pragma"),
        ("[8]  w/ pragma", "wu_with_pragma"),
        ("Ours w/ pragma", "ours_with_pragma"),
    ]:
        scores = results[key]
        rows.append([
            label, f"{scores['latency']:.1f}", f"{scores['dsp']:.1f}",
            f"{scores['lut']:.1f}", f"{scores['ff']:.1f}",
        ])
    text = format_table(
        ["Method", "Latency", "DSP", "LUT", "FF"],
        rows,
        title="Table IV reproduction: MAPE (%) vs the pragma-blind whole-graph GNN",
    )
    write_result("table4_sota_comparison.txt", text)

    # Shape check: with pragmas applied, the pragma-aware hierarchical model
    # must beat the pragma-blind baseline by a clear margin (paper: 8.5% vs
    # 35.8% latency MAPE).
    assert _mean(results["ours_with_pragma"]) < _mean(results["wu_with_pragma"])
    assert results["ours_with_pragma"]["latency"] < results["wu_with_pragma"]["latency"]
