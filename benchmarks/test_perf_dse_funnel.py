"""Perf benchmark: precision tiers x surrogate-first funnel on the cold path.

Times one cold sweep of a ``gemm`` design space under every combination of
inference tier (float64 default, float32 cheap tier) and exploration engine
(exhaustive batched scoring vs the :class:`~repro.dse.FunnelExplorer`
surrogate-first funnel).  "Cold" means the inference caches — including the
process-wide scatter-index and edge caches, which survive
``clear_inference_caches`` and arrive pre-warmed when the full suite runs
earlier gemm benches in the same process — are cleared before each measured
exploration: the scenario where the matmul floor actually binds, because
every prediction pays graph construction plus GNN forward passes.

The funnel's throughput is *effective*: the whole space divided by total
exploration time, even though only the surrogate-selected fraction ever
reaches the full model.  Quality is measured as ADRS degradation versus the
exhaustive float64 exploration of the same space (both against the exact
front), clamped at zero for the trend gate — the funnel is occasionally
*better* than exhaustive (dropping a noisy near-front prediction can help),
and a negative baseline would break the ratio-based regression check.

Guards: the float32+funnel combination must beat the exhaustive float64 cold
sweep by >= 1.8x effective throughput (a conservative floor on a ratio that
measures ~3x standalone and ~2.2-2.4x under full-suite load — see
``SPEEDUP_TARGET``), with ADRS degradation <= 1 percentage point.  Results land in ``benchmarks/results/BENCH_dse_funnel.json`` for the
perf-trend gate.

A ``deduped_space`` section reports the effective-directive equivalence
structure of the benchmarked space and of each kernel's full enumeration
(raw configuration count vs canonical class count) — the dedup algebra the
sharded benchmark measures end to end.

Each combination is measured as the best of ``REPRO_BENCH_FUNNEL_REPEATS``
cold explorations (default 3, caches cleared before each) — the same
best-of-N convention as the other cold-path harnesses; predictions are
deterministic per combination, so repeats only de-noise the timing.

Environment knobs: ``REPRO_BENCH_FUNNEL_SPACE`` (space size, default 240),
``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10 — throughput does
not depend on model quality).
"""

from __future__ import annotations

import json
import platform

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
)
from repro.dse import (
    DesignSpace,
    FunnelExplorer,
    ModelGuidedExplorer,
    exhaustive_ground_truth,
)
from repro.dse.space import sample_design_space
from repro.kernels import KERNEL_SOURCES, load_kernel
from repro.nn.autograd import SCATTER_INDEX_CACHE
from repro.nn.message_passing import EDGE_CACHE

pytestmark = pytest.mark.perf

KERNEL = "gemm"
#: conservative floor: standalone the ratio measures ~3x, but under the full
#: suite the exhaustive float64 reference (the denominator) runs faster than
#: a genuinely cold standalone sweep — allocator/BLAS warm state plus
#: canonical-signature sharing introduced with the dedup algebra — which
#: compresses the measured ratio to ~2.2-2.4 with ~15% scheduling jitter on
#: the 1-core container
SPEEDUP_TARGET = 1.8
ADRS_DEGRADATION_LIMIT_PP = 1.0
#: kernels whose full enumerated spaces are reported in ``deduped_space``
DEDUP_KERNELS = ("gemm", "stencil3d", "syrk", "gemver")


def _train_model(function) -> HierarchicalQoRModel:
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({KERNEL: function}, {KERNEL: configs})
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    model.fit(instances)
    return model


def test_dse_funnel_throughput():
    function = load_kernel(KERNEL)
    model = _train_model(function)
    configs = sample_design_space(
        function, env_int("REPRO_BENCH_FUNNEL_SPACE", 240),
        rng=np.random.default_rng(1),
    )
    space = exhaustive_ground_truth(function, configs)
    num_configs = space.num_configs

    combos: dict[str, dict] = {}
    repeats = env_int("REPRO_BENCH_FUNNEL_REPEATS", 3)
    for tier in ("float64", "float32"):
        for engine in ("exhaustive", "funnel"):
            model.set_precision(tier)
            # best-of-N cold explorations (same convention as the other
            # cold-path harnesses): predictions are deterministic per run,
            # so repeats only de-noise the timing of the marginal 2x guard
            result = None
            for _ in range(repeats):
                model.clear_inference_caches()
                # the process-wide caches survive clear_inference_caches;
                # under the full suite they arrive warm from earlier gemm
                # benches, which speeds up the exhaustive reference sweep
                # (the speedup denominator) relative to a standalone run
                SCATTER_INDEX_CACHE.clear()
                EDGE_CACHE.clear()
                if engine == "exhaustive":
                    candidate = ModelGuidedExplorer(
                        predict_batch_fn=model.predict_batch
                    ).explore(function, space)
                else:
                    candidate = FunnelExplorer(model.predict_batch).explore(
                        function, space
                    )
                if result is None or candidate.model_seconds < result.model_seconds:
                    result = candidate
            if engine == "exhaustive":
                extra = {}
            else:
                extra = {
                    "full_model_configs": result.full_model_configs,
                    "configs_saved": result.configs_saved,
                    "keep": result.keep,
                    "rounds": result.rounds,
                    "surrogate_seconds": round(result.surrogate_seconds, 6),
                }
            combos[f"{engine}_{tier}"] = {
                "adrs_pp": round(result.adrs_percent, 4),
                "explore_seconds": round(result.model_seconds, 6),
                "effective_configs_per_second": round(
                    result.configs_per_second, 2
                ),
                **extra,
            }
    model.set_precision("float64")

    reference = combos["exhaustive_float64"]
    headline = combos["funnel_float32"]
    speedup = round(
        headline["effective_configs_per_second"]
        / reference["effective_configs_per_second"], 2,
    )
    degradation = round(headline["adrs_pp"] - reference["adrs_pp"], 4)

    # effective-directive dedup structure: the benchmarked sampled space
    # plus each kernel's full enumeration (canonicalization only, no model)
    bench_deduped = DesignSpace.from_lowered(
        function, KERNEL_SOURCES[KERNEL], configs
    ).dedup()
    classes_per_kernel = {}
    for kernel in DEDUP_KERNELS:
        kernel_space = DesignSpace.from_kernel(kernel, 4096, seed=7)
        deduped = kernel_space.dedup()
        classes_per_kernel[kernel] = {
            "raw_configs": len(kernel_space),
            "classes": deduped.num_classes,
            "dedup_ratio": round(deduped.dedup_ratio, 4),
        }

    payload = {
        "benchmark": "dse_funnel",
        "kernel": KERNEL,
        "num_configs": num_configs,
        "combos": combos,
        "deduped_space": {
            "benchmarked_space": {
                "raw_configs": num_configs,
                "classes": bench_deduped.num_classes,
                "dedup_ratio": round(bench_deduped.dedup_ratio, 4),
            },
            "classes_per_kernel": classes_per_kernel,
        },
        "funnel_float32_speedup_vs_exhaustive_float64": speedup,
        "adrs_degradation_pp": degradation,
        "adrs_degradation_pp_clamped": max(0.0, degradation),
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_dse_funnel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = []
    for name, stats in combos.items():
        scored = stats.get("full_model_configs", num_configs)
        rows.append([
            name, f"{stats['explore_seconds']:.3f}",
            f"{stats['effective_configs_per_second']:.1f}",
            f"{scored}/{num_configs}", f"{stats['adrs_pp']:.2f}%",
        ])
    write_result(
        "BENCH_dse_funnel.txt",
        format_table(
            ["combo", "explore s", "eff configs/s", "model-scored", "ADRS"],
            rows,
            title=f"Precision tiers x DSE funnel — {KERNEL}, "
                  f"{num_configs} configs, cold sweeps; "
                  f"funnel_float32 speedup {speedup:.2f}x, "
                  f"ADRS degradation {degradation:+.2f}pp",
        ),
    )

    assert speedup >= SPEEDUP_TARGET, (
        f"float32+funnel effective throughput only {speedup:.2f}x the "
        f"exhaustive float64 cold sweep (target >= {SPEEDUP_TARGET}x)"
    )
    assert degradation <= ADRS_DEGRADATION_LIMIT_PP, (
        f"funnel ADRS degraded by {degradation:.2f}pp vs the exhaustive "
        f"float64 front (limit {ADRS_DEGRADATION_LIMIT_PP}pp)"
    )
