"""Dataset-generation benchmark (Section IV-A experimental setup).

The paper builds 3102 / 2300 / 6178 valid designs for GNNp / GNNnp / GNNg by
running the full C-to-bitstream flow over pragma combinations of the training
applications.  This benchmark measures the throughput of the simulator-backed
dataset generator and reports the dataset sizes obtained at the benchmark
scale, plus the extrapolated full-space sizes.
"""

from __future__ import annotations

import pytest

from repro.core import inner_unit_samples
from repro.dse.space import enumerate_design_space
from repro.kernels import load_kernels

from conftest import bench_kernel_names, format_table, write_result


@pytest.mark.benchmark(group="datasets")
def test_dataset_generation_sizes_and_throughput(benchmark, training_corpus):
    instances = training_corpus["instances"]
    result = {}

    def run():
        pipelined, non_pipelined = inner_unit_samples(instances)
        result["pipelined"] = len(pipelined)
        result["non_pipelined"] = len(non_pipelined)
        result["designs"] = len(instances)
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)

    full_space = {
        name: len(enumerate_design_space(function))
        for name, function in load_kernels(bench_kernel_names()).items()
    }
    rows = [
        ["designs evaluated (GNNg samples)", str(result["designs"])],
        ["pipelined inner loops (GNNp samples)", str(result["pipelined"])],
        ["non-pipelined inner loops (GNNnp samples)", str(result["non_pipelined"])],
        ["full enumerable space across kernels", str(sum(full_space.values()))],
    ]
    text = format_table(
        ["Quantity", "Count"], rows,
        title="Dataset generation (paper: 3102 / 2300 / 6178 designs)",
    )
    write_result("dataset_generation.txt", text)

    assert result["designs"] > 0
    assert result["pipelined"] > 0
    assert result["non_pipelined"] > 0
    # the enumerable space is orders of magnitude larger than the sampled
    # corpus, as in the paper (thousands of configurations per kernel).
    assert sum(full_space.values()) > result["designs"]
