"""Perf benchmark: single-process vs sharded multi-worker cold DSE sweeps.

Times the *cold path* (fresh predictor, empty caches — first contact with a
design space) on a ``gemm`` space in three modes:

* **single-process** — one :meth:`QoRPredictor.predict_batch` call over the
  whole space (the PR-1 batched engine), model load included;
* **sharded / pragma-locality** — :class:`repro.dse.sharding.ShardedExplorer`
  with N worker processes, each bootstrapping its own predictor from the
  saved model and scoring a locality-grouped shard;
* **sharded / round-robin** — same fleet, delta-agnostic partitioning
  (reported for comparison: the gap to pragma-locality is the value of
  construction-cache-aware sharding);
* **work-stealing** — the same pragma-locality shards split into chunks on
  one shared queue (PR 5): workers pull the next chunk as they finish, so
  the fleet load-balances itself;
* **skewed shards** — a deliberately imbalanced partition (one shard owns
  ~70% of the space) run with fixed assignments vs work stealing.  The
  fixed fleet idles behind the straggler shard; stealing spreads its
  chunks.  All correctness guards (1e-9 predictions, bit-identical merged
  front) apply to every mode.

The differential guards run unconditionally:

* per-configuration predictions within 1e-9 relative of single-process;
* the merged front is **bit-identical** to one Pareto front fed every
  streamed prediction (the deterministic-merge guarantee);
* the merged front is equivalent to the single-process front within the
  prediction tolerance (:func:`repro.dse.sharding.fronts_equivalent`).
  Dedup mode makes ties *within* an equivalence class exact across
  processes, but two *distinct* designs whose predictions coincide up to
  ulps can still swap under the batch-composition differences between one
  big in-process batch and per-shard chunks, so the single-process
  comparison stays tolerance-based; the exact-membership guarantees
  (``fronts_match`` / ``fronts_bit_equal``) are guarded sharded-vs-sharded
  in ``tests/dse/test_sharding.py``.

A ``deduped_space`` section reports the effective-directive dedup algebra:
raw vs canonical class counts over the full enumerated space of several
registered kernels, plus a raw-vs-dedup cold sweep on the kernel with the
largest dedup ratio (stencil3d) measuring the *effective* configs/s gain —
predictions for all raw configurations per second, scoring only class
representatives.

The >= 2x throughput guard is enforced only when the machine actually has
at least as many usable cores as workers (CI perf runners do); on smaller
boxes the numbers are still reported, with ``speedup_target_enforced:
false`` in ``benchmarks/results/BENCH_dse_sharded.json``.

Environment knobs: ``REPRO_BENCH_DSE_SHARD_SPACE`` (space size, default
192), ``REPRO_BENCH_DSE_WORKERS`` (worker count, default 4),
``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
    save_model,
)
from repro.core.predictor import QoRPredictor
from repro.dse import (
    DesignSpace,
    ShardedExplorer,
    fronts_bit_equal,
    predicted_front,
)
from repro.dse.sharding import fronts_equivalent
from repro.dse.sharding import PREDICTION_TOLERANCE, max_prediction_error
from repro.dse.space import sample_design_space
from repro.flags import raw_directives
from repro.kernels import load_kernel

pytestmark = pytest.mark.perf

KERNEL = "gemm"
SPEEDUP_TARGET = 2.0
#: kernels whose full enumerated spaces are reported in ``deduped_space``
DEDUP_KERNELS = ("gemm", "stencil3d", "syrk", "gemver")
#: the registered kernel with the largest dedup ratio: the cold-sweep case
DEDUP_SWEEP_KERNEL = "stencil3d"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _train_and_save(tmp_path) -> str:
    function = load_kernel(KERNEL)
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({KERNEL: function}, {KERNEL: configs})
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    model.fit(instances)
    path = tmp_path / "qor_model.npz"
    save_model(model, path, warm_caches=False)
    return str(path)


def _deduped_space_section(model_path: str) -> dict:
    """The effective-directive dedup report: class counts + cold-sweep gain.

    Class counts come from the full enumerated space of each kernel in
    :data:`DEDUP_KERNELS` (canonicalization only — no graphs, no model).
    The cold sweep scores :data:`DEDUP_SWEEP_KERNEL`'s full space twice
    from a cold predictor: once with canonicalization disabled (every raw
    configuration scored) and once through the dedup algebra (class
    representatives scored, predictions fanned out), guarded to agree
    within the sharding tolerance and on the Pareto front.
    """
    classes_per_kernel = {}
    for kernel in DEDUP_KERNELS:
        kernel_space = DesignSpace.from_kernel(kernel, 4096, seed=7)
        deduped = kernel_space.dedup()
        classes_per_kernel[kernel] = {
            "raw_configs": len(kernel_space),
            "classes": deduped.num_classes,
            "dedup_ratio": round(deduped.dedup_ratio, 4),
        }

    space = DesignSpace.from_kernel(DEDUP_SWEEP_KERNEL, 4096, seed=7)
    deduped = space.dedup()
    function = space.function()

    raw_predictor = QoRPredictor.load(model_path, warm_caches=False)
    start = time.perf_counter()
    with raw_directives():
        raw_predictions = raw_predictor.predict_batch(
            function, list(space.configs)
        )
    raw_seconds = time.perf_counter() - start

    dedup_predictor = QoRPredictor.load(model_path, warm_caches=False)
    representatives = deduped.representative_ids()
    start = time.perf_counter()
    rep_predictions = dedup_predictor.predict_batch(
        function, [space.config(rid) for rid in representatives]
    )
    fanned = deduped.fan_out(dict(zip(representatives, rep_predictions)))
    dedup_predictions = [fanned[cid] for cid in range(len(space))]
    dedup_seconds = time.perf_counter() - start

    # the two sweeps describe the same designs: raw-directive scoring and
    # canonical-representative scoring must agree per configuration (ulp
    # differences from batch composition only) and on the front
    worst = max_prediction_error(raw_predictions, dedup_predictions)
    assert worst < PREDICTION_TOLERANCE, (
        f"dedup sweep diverged from the raw-directive sweep by {worst}"
    )
    assert fronts_equivalent(
        predicted_front(space, raw_predictions).points(),
        predicted_front(space, dedup_predictions).points(),
    ), "dedup sweep selected a different Pareto front than the raw sweep"

    return {
        "classes_per_kernel": classes_per_kernel,
        "cold_sweep": {
            "kernel": DEDUP_SWEEP_KERNEL,
            "raw_configs": len(space),
            "classes": deduped.num_classes,
            "dedup_ratio": round(deduped.dedup_ratio, 4),
            "raw_seconds": round(raw_seconds, 6),
            "dedup_seconds": round(dedup_seconds, 6),
            "raw_configs_per_second": round(len(space) / raw_seconds, 2),
            "dedup_effective_configs_per_second": round(
                len(space) / dedup_seconds, 2
            ),
            #: raw seconds / dedup seconds — how much faster the same set of
            #: predictions materializes when only representatives are scored
            "effective_configs_per_second_gain": round(
                raw_seconds / dedup_seconds, 4
            ),
        },
    }


def test_dse_sharded_throughput(tmp_path):
    model_path = _train_and_save(tmp_path)
    num_workers = max(2, env_int("REPRO_BENCH_DSE_WORKERS", 4))
    space = DesignSpace.from_kernel(
        KERNEL, env_int("REPRO_BENCH_DSE_SHARD_SPACE", 192), seed=1
    )

    # single-process cold sweep: fresh predictor, empty caches
    start = time.perf_counter()
    predictor = QoRPredictor.load(model_path, warm_caches=False)
    single_predictions = predictor.predict_batch(
        space.function(), list(space.configs)
    )
    single_seconds = time.perf_counter() - start
    single_front = predicted_front(space, single_predictions).points()

    def record(name: str, result) -> None:
        results[name] = result
        sharded[name] = {
            "seconds": round(result.model_seconds, 6),
            "configs_per_second": round(result.configs_per_second, 2),
            "speedup_vs_single_process": round(
                single_seconds / result.model_seconds, 2
            ),
            "workers": result.num_workers,
            "work_stealing": result.work_stealing,
            "recovered_configs": result.recovered_configs,
            "num_classes": result.num_classes,
            "dedup_ratio": round(result.dedup_ratio, 4),
            "fleet_cache_stats": result.cache_stats,
        }

    sharded: dict[str, dict] = {}
    results = {}
    identical_fronts: list[str] = []
    for strategy in ("pragma-locality", "round-robin"):
        explorer = ShardedExplorer(
            model_path, num_workers=num_workers, shard_strategy=strategy,
            warm_caches=False, chunk_size=48,
        )
        record(strategy, explorer.explore(space))
    # work stealing over the same locality shards, chunked on one queue
    record("work-stealing", ShardedExplorer(
        model_path, num_workers=num_workers, warm_caches=False,
        chunk_size=24, work_stealing=True,
    ).explore(space))

    # skewed-shard case: one shard owns ~70% of the space; fixed
    # assignments idle behind it, stealing redistributes its chunks
    def skewed_partition(space_arg, num_shards):
        from repro.dse.sharding import ShardSpec

        count = len(space_arg)
        head = max(1, int(count * 0.7))
        blocks = [tuple(range(head))]
        rest = list(range(head, count))
        per = max(1, -(-len(rest) // max(1, num_shards - 1))) if rest else 0
        for index in range(num_shards - 1):
            block = tuple(rest[index * per:(index + 1) * per])
            if block:
                blocks.append(block)
        return [
            ShardSpec(shard_id=index, config_ids=block)
            for index, block in enumerate(blocks)
        ]

    record("skewed-fixed", ShardedExplorer(
        model_path, num_workers=num_workers, warm_caches=False,
        chunk_size=24, partitioner=skewed_partition,
    ).explore(space))
    record("skewed-stealing", ShardedExplorer(
        model_path, num_workers=num_workers, warm_caches=False,
        chunk_size=24, work_stealing=True, partitioner=skewed_partition,
    ).explore(space))

    # differential guards (always enforced)
    for strategy, result in results.items():
        worst = max_prediction_error(single_predictions, result.predictions)
        assert worst < PREDICTION_TOLERANCE, (
            f"{strategy}: sharded predictions diverged from the "
            f"single-process engine by {worst}"
        )
        stream_front = predicted_front(space, result.predictions).points()
        assert [(p.key, p.objectives) for p in result.front] == [
            (p.key, p.objectives) for p in stream_front
        ], f"{strategy}: merged front is not bit-identical to the stream front"
        # cross-process guarantee: dedup mode makes same-class ties exact,
        # but distinct designs predicting equal-up-to-ulps can still swap
        # between the one-batch single-process sweep and per-shard chunks,
        # so the single-process comparison is tolerance-based (see the
        # module docstring; exact-membership guards are sharded-vs-sharded)
        assert fronts_equivalent(single_front, result.front), (
            f"{strategy}: merged front is not equivalent to the "
            f"single-process front"
        )
        if fronts_bit_equal(single_front, result.front):
            identical_fronts.append(strategy)
        assert result.recovered_configs == 0

    cores = _usable_cores()
    enforce_speedup = cores >= num_workers
    locality = sharded["pragma-locality"]
    stealing_recovery = round(
        sharded["skewed-fixed"]["seconds"]
        / sharded["skewed-stealing"]["seconds"], 2
    )

    deduped_space = _deduped_space_section(model_path)
    payload = {
        "benchmark": "dse_sharded",
        "kernel": KERNEL,
        "num_configs": len(space),
        "num_workers": num_workers,
        "usable_cores": cores,
        "single_process": {
            "seconds": round(single_seconds, 6),
            "configs_per_second": round(len(space) / single_seconds, 2),
        },
        "sharded": sharded,
        "deduped_space": deduped_space,
        "front_size": len(single_front),
        #: modes whose merged front is bit-identical (not merely matching)
        #: to the single-process front on this machine
        "front_identical_modes": sorted(identical_fronts),
        "prediction_max_rel_error": max(
            max_prediction_error(single_predictions, r.predictions)
            for r in results.values()
        ),
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_enforced": enforce_speedup,
        #: skewed-fixed seconds / skewed-stealing seconds — how much of the
        #: straggler time work stealing claws back (> 1 means stealing wins)
        "stealing_skew_recovery": stealing_recovery,
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_dse_sharded.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        ["single-process", f"{single_seconds:.3f}",
         f"{len(space) / single_seconds:.1f}", "1.0x"],
    ]
    for strategy in (
        "pragma-locality", "round-robin", "work-stealing",
        "skewed-fixed", "skewed-stealing",
    ):
        stats = sharded[strategy]
        rows.append([
            f"sharded ({strategy}, {num_workers}w)",
            f"{stats['seconds']:.3f}", f"{stats['configs_per_second']:.1f}",
            f"{stats['speedup_vs_single_process']:.1f}x",
        ])
    sweep = deduped_space["cold_sweep"]
    rows.append([
        f"dedup off ({sweep['kernel']}, {sweep['raw_configs']} raw)",
        f"{sweep['raw_seconds']:.3f}",
        f"{sweep['raw_configs_per_second']:.1f}", "1.0x",
    ])
    rows.append([
        f"dedup on ({sweep['kernel']}, {sweep['classes']} classes)",
        f"{sweep['dedup_seconds']:.3f}",
        f"{sweep['dedup_effective_configs_per_second']:.1f}",
        f"{sweep['effective_configs_per_second_gain']:.2f}x",
    ])
    write_result(
        "BENCH_dse_sharded.txt",
        format_table(
            ["mode", "sweep s", "configs/s", "speedup"], rows,
            title=f"Sharded DSE cold sweep — {KERNEL}, {len(space)} configs, "
                  f"{num_workers} workers, {cores} cores "
                  f"(target {'enforced' if enforce_speedup else 'reported only'})",
        ),
    )

    if enforce_speedup:
        speedup = locality["speedup_vs_single_process"]
        assert speedup >= SPEEDUP_TARGET, (
            f"sharded speedup {speedup:.1f}x below the {SPEEDUP_TARGET}x "
            f"target with {num_workers} workers on {cores} cores"
        )
