"""Perf benchmark: replica-replay graph construction on first-contact sweeps.

PR 1 made *steady-state* model-guided DSE run from caches; what remained
slow was **first contact** — the first sweep over a design space the engine
has never seen, where every distinct pragma delta pays graph construction.
This benchmark times that regime on ``gemm`` and ``bicg`` in three views:

* **construction stage** — wall time spent inside ``GraphBuilder`` during a
  cold ``predict_batch`` sweep (the replica-replay target), measured for the
  node-by-node reference path and the replay fast path.  The guard asserts
  the replay path sustains >= 3x the naive construction configs/s on gemm;
* **end-to-end cold sweep** — full ``predict_batch`` wall time per mode
  (construction plus GNN forwards and sample conversion, reported so the
  construction share stays visible);
* **warm start** — the sweep is persisted with ``save_model``, the model is
  reloaded as a fresh service, and the first post-restart sweep must serve
  entirely from the memo: zero graph constructions.

Numerical equivalence between the naive and replay sweeps is asserted at
1e-9.  Results land in ``benchmarks/results/BENCH_construction_replay.json``.

Environment knobs: ``REPRO_BENCH_REPLAY_SPACE`` (space size, default 64),
``REPRO_BENCH_REPLAY_SWEEPS`` (cold repetitions, default 3),
``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10 — construction
speed does not depend on model quality).
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
    load_model,
    save_model,
)
from repro.dse.space import sample_design_space
from repro.graph.construction import GraphBuilder, naive_emission
from repro.ir import lower_source
from repro.kernels import kernel_source, load_kernel

pytestmark = pytest.mark.perf

KERNELS = ("gemm", "bicg")
GUARDED_KERNEL = "gemm"
CONSTRUCTION_SPEEDUP_TARGET = 3.0
EQUIVALENCE_TOLERANCE = 1e-9


def _train_model() -> HierarchicalQoRModel:
    function = load_kernel("gemm")
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({"gemm": function}, {"gemm": configs})
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    model.fit(instances)
    return model


def _cold_sweep(model, function, space, *, naive: bool):
    """One first-contact sweep from empty caches; returns timing + outputs."""
    model.clear_inference_caches()
    builds_before = GraphBuilder.build_count
    construction_before = GraphBuilder.build_seconds
    start = time.perf_counter()
    if naive:
        with naive_emission():
            outputs = model.predict_batch(function, space)
    else:
        outputs = model.predict_batch(function, space)
    return {
        "sweep_seconds": time.perf_counter() - start,
        "construction_seconds": GraphBuilder.build_seconds - construction_before,
        "graph_builds": GraphBuilder.build_count - builds_before,
        "outputs": outputs,
    }


def _best_cold_sweep(model, function, space, *, naive: bool, sweeps: int):
    best = None
    for _ in range(sweeps):
        run = _cold_sweep(model, function, space, naive=naive)
        if best is None or run["construction_seconds"] < best["construction_seconds"]:
            best = run
    return best


def _max_rel_error(expected, actual) -> float:
    worst = 0.0
    for want, got in zip(expected, actual):
        for name in want:
            denominator = max(abs(want[name]), 1.0)
            worst = max(worst, abs(want[name] - got[name]) / denominator)
    return worst


def test_construction_replay_cold_sweeps(tmp_path):
    model = _train_model()
    space_size = env_int("REPRO_BENCH_REPLAY_SPACE", 64)
    sweeps = max(1, env_int("REPRO_BENCH_REPLAY_SWEEPS", 3))

    per_kernel: dict[str, dict] = {}
    rows = []
    for kernel in KERNELS:
        function = load_kernel(kernel)
        space = sample_design_space(
            function, space_size, rng=np.random.default_rng(1)
        )
        naive = _best_cold_sweep(model, function, space, naive=True, sweeps=sweeps)
        replay = _best_cold_sweep(model, function, space, naive=False, sweeps=sweeps)
        equivalence = _max_rel_error(naive["outputs"], replay["outputs"])

        def stage(run):
            return {
                "sweep_seconds": round(run["sweep_seconds"], 6),
                "construction_seconds": round(run["construction_seconds"], 6),
                "graph_builds": run["graph_builds"],
                "construction_configs_per_second": round(
                    len(space) / run["construction_seconds"], 2
                ),
                "sweep_configs_per_second": round(
                    len(space) / run["sweep_seconds"], 2
                ),
            }

        naive_stage, replay_stage = stage(naive), stage(replay)
        construction_speedup = (
            naive["construction_seconds"] / replay["construction_seconds"]
        )
        sweep_speedup = naive["sweep_seconds"] / replay["sweep_seconds"]

        # warm start: persist the swept caches, reload as a fresh service
        # and replay the same space against a re-lowered kernel object
        path = tmp_path / f"{kernel}.npz"
        save_model(model, path)
        restored = load_model(path)
        relowered = lower_source(kernel_source(kernel))
        builds_before = GraphBuilder.build_count
        start = time.perf_counter()
        warm_outputs = restored.predict_batch(relowered, space)
        warm_seconds = time.perf_counter() - start
        warm_builds = GraphBuilder.build_count - builds_before
        warm_equivalence = _max_rel_error(replay["outputs"], warm_outputs)

        per_kernel[kernel] = {
            "num_configs": len(space),
            "naive_cold": naive_stage,
            "replay_cold": replay_stage,
            "construction_speedup": round(construction_speedup, 2),
            "cold_sweep_speedup": round(sweep_speedup, 2),
            "equivalence_max_rel_error": equivalence,
            "warm_start": {
                "sweep_seconds": round(warm_seconds, 6),
                "graph_builds": warm_builds,
                "sweep_configs_per_second": round(len(space) / warm_seconds, 2),
                "equivalence_max_rel_error": warm_equivalence,
            },
        }
        rows.append([
            kernel,
            f"{naive_stage['construction_configs_per_second']:.0f}",
            f"{replay_stage['construction_configs_per_second']:.0f}",
            f"{construction_speedup:.1f}x",
            f"{naive_stage['sweep_configs_per_second']:.0f}",
            f"{replay_stage['sweep_configs_per_second']:.0f}",
            f"{per_kernel[kernel]['warm_start']['sweep_configs_per_second']:.0f}",
        ])

        assert equivalence < EQUIVALENCE_TOLERANCE, (
            f"{kernel}: replayed sweep diverged from naive by {equivalence}"
        )
        assert warm_builds == 0, (
            f"{kernel}: warm-started service built {warm_builds} graphs"
        )
        assert warm_equivalence < EQUIVALENCE_TOLERANCE

    payload = {
        "benchmark": "construction_replay",
        "space_size": space_size,
        "measured_sweeps": sweeps,
        "construction_speedup_target": CONSTRUCTION_SPEEDUP_TARGET,
        "guarded_kernel": GUARDED_KERNEL,
        "kernels": per_kernel,
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_construction_replay.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    write_result(
        "BENCH_construction_replay.txt",
        format_table(
            ["kernel", "naive c/s", "replay c/s", "constr speedup",
             "naive sweep c/s", "replay sweep c/s", "warm sweep c/s"],
            rows,
            title=(
                f"First-contact construction throughput — {space_size} "
                f"configs, best of {sweeps} cold sweeps (c/s = configs per "
                f"second; construction stage vs end-to-end sweep vs "
                f"post-restart warm sweep)"
            ),
        ),
    )

    guarded = per_kernel[GUARDED_KERNEL]["construction_speedup"]
    assert guarded >= CONSTRUCTION_SPEEDUP_TARGET, (
        f"cold-sweep construction speedup {guarded:.1f}x on {GUARDED_KERNEL} "
        f"is below the {CONSTRUCTION_SPEEDUP_TARGET}x replica-replay target"
    )
