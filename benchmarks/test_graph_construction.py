"""Figure 2 — pragma-aware graph construction behaviour and throughput.

The paper's Fig. 2 shows how the CDFG changes under loop pipelining (no
change), loop unrolling (logic-node replication) and array partitioning
(memory-port insertion).  This benchmark verifies those structural properties
on the gemm kernel and measures graph-construction throughput over the
sampled design space (construction is on the DSE critical path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import (
    ArrayDirective,
    LoopDirective,
    PartitionType,
    PragmaConfig,
)
from repro.graph import build_flat_graph
from repro.dse.space import sample_design_space
from repro.kernels import load_kernel

from conftest import format_table, write_result


@pytest.mark.benchmark(group="figure2")
def test_figure2_graph_construction(benchmark):
    gemm = load_kernel("gemm")
    configs = sample_design_space(gemm, 64, rng=np.random.default_rng(2))

    def run():
        return [build_flat_graph(gemm, config) for config in configs]

    graphs = benchmark.pedantic(run, rounds=1, iterations=3)

    baseline = build_flat_graph(gemm)
    pipelined = build_flat_graph(
        gemm, PragmaConfig.from_dicts(loops={"L0_0_0": LoopDirective(pipeline=True)})
    )
    unrolled = build_flat_graph(
        gemm, PragmaConfig.from_dicts(loops={"L0_0_0": LoopDirective(unroll_factor=4)})
    )
    partitioned = build_flat_graph(
        gemm,
        PragmaConfig.from_dicts(
            arrays={"A": ArrayDirective(PartitionType.CYCLIC, factor=4, dim=2)}
        ),
    )
    rows = [
        ["baseline", str(baseline.num_nodes), str(baseline.num_edges),
         str(len(baseline.memory_port_nodes()))],
        ["pipeline (Fig. 2a)", str(pipelined.num_nodes), str(pipelined.num_edges),
         str(len(pipelined.memory_port_nodes()))],
        ["unroll x4 (Fig. 2b)", str(unrolled.num_nodes), str(unrolled.num_edges),
         str(len(unrolled.memory_port_nodes()))],
        ["partition x4 (Fig. 2c)", str(partitioned.num_nodes), str(partitioned.num_edges),
         str(len(partitioned.memory_port_nodes()))],
    ]
    sizes = [graph.num_nodes for graph in graphs]
    text = format_table(
        ["Configuration", "Nodes", "Edges", "Memory ports"], rows,
        title="Figure 2 reproduction: graph construction under pragmas (gemm)",
    )
    text += (
        f"\nSampled space of {len(configs)} configs: node counts "
        f"min={min(sizes)} median={int(np.median(sizes))} max={max(sizes)}\n"
    )
    write_result("figure2_graph_construction.txt", text)

    # Fig. 2a: pipelining leaves the graph unchanged
    assert pipelined.num_nodes == baseline.num_nodes
    # Fig. 2b: unrolling replicates logic nodes
    assert unrolled.num_nodes > baseline.num_nodes
    # Fig. 2c: partitioning inserts one port node per bank
    assert len(partitioned.memory_port_nodes("A")) == 4
