"""Ablation — pragma-aware graph construction on vs off.

Holds the model architecture fixed (a flat whole-graph GNN with post-route
labels) and toggles only the paper's graph-construction contribution: unroll
replication, memory-port insertion/partitioning and pragma-consistent bank
connections.  Turning the transforms off makes design points with different
pragmas indistinguishable, which is the failure mode Table IV attributes to
the Wu et al. baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FlatGNNBaseline

from conftest import bench_training_config, format_table, write_result


def _mean(scores: dict[str, float]) -> float:
    return float(np.mean(list(scores.values())))


@pytest.mark.benchmark(group="ablation")
def test_ablation_pragma_graph_transforms(
    benchmark, training_corpus, flat_pragma_aware_baseline
):
    instances = training_corpus["instances"]
    results = {}

    def run() -> None:
        pragma_blind = FlatGNNBaseline(
            pragma_aware=False, label_stage="post_route",
            training=bench_training_config(),
        )
        pragma_blind.fit(instances)
        results["transforms_off"] = pragma_blind.evaluate_post_route(instances)
        results["transforms_on"] = flat_pragma_aware_baseline[
            "model"
        ].evaluate_post_route(instances)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, f"{scores['latency']:.1f}", f"{scores['dsp']:.1f}",
         f"{scores['lut']:.1f}", f"{scores['ff']:.1f}", f"{_mean(scores):.1f}"]
        for name, scores in (
            ("pragma-aware graphs (ours)", results["transforms_on"]),
            ("pragma-blind graphs ([8]-style)", results["transforms_off"]),
        )
    ]
    text = format_table(
        ["Graph construction", "Latency", "DSP", "LUT", "FF", "Mean"],
        rows,
        title="Ablation: pragma-aware graph transforms on vs off (MAPE %)",
    )
    write_result("ablation_pragma_graph.txt", text)

    # Shape check with slack: at very small corpus scales both models are
    # noisy, but pragma-aware graphs must not be categorically worse.
    assert _mean(results["transforms_on"]) < _mean(results["transforms_off"]) * 1.5
