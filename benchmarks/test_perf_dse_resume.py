"""Perf benchmark: fault-tolerant sweeps — checkpoint/resume + write-back.

Measures what the fault-tolerance machinery costs and saves on a ``gemm``
design space:

* **checkpoint overhead** — an uninterrupted checkpointed sweep vs the same
  sweep with checkpointing off (the periodic atomic JSON writes are the
  only delta);
* **crash + resume** — the coordinator is killed mid-sweep through the
  fault-injection harness (:class:`repro.testing.faults.FaultPlan`, abort
  after the first periodic checkpoint save), then the sweep is resumed from
  the checkpoint.  Guards: the resumed front is **bit-equal** to the
  uninterrupted one, nothing already scored is re-dispatched
  (``configs_rescored`` — trend-gated at exactly 0), and the resumed run
  only pays for the remaining work;
* **warm-cache write-back** — a first fleet over a cold model file banks
  the construction/memo entries its workers built
  (``write_back=True``); a second ``warm_caches`` fleet must then do
  **zero** cold graph builds (``second_run_cold_builds`` — trend-gated at
  exactly 0) and replays correspondingly faster (``warm_replay_gain``).

Environment knobs: ``REPRO_BENCH_DSE_RESUME_SPACE`` (space size, default
96), ``REPRO_BENCH_DSE_WORKERS`` (worker count, default 4),
``REPRO_BENCH_PERF_EPOCHS`` (training epochs, default 10).
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, env_int, format_table, peak_rss_mb, write_result
from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
    save_model,
)
from repro.dse import DesignSpace, ShardedExplorer, fronts_bit_equal
from repro.dse.space import sample_design_space
from repro.kernels import load_kernel
from repro.testing import FaultPlan, InjectedFault

pytestmark = pytest.mark.perf

KERNEL = "gemm"


def _train_and_save(tmp_path, name: str) -> str:
    function = load_kernel(KERNEL)
    configs = sample_design_space(function, 12, rng=np.random.default_rng(7))
    instances = build_design_instances({KERNEL: function}, {KERNEL: configs})
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type="graphsage", hidden=32,
            training=TrainingConfig(
                epochs=env_int("REPRO_BENCH_PERF_EPOCHS", 10), seed=0
            ),
        )
    )
    model.fit(instances)
    path = tmp_path / name
    save_model(model, path, warm_caches=False)
    return str(path)


def test_dse_resume_and_write_back(tmp_path):
    model_path = _train_and_save(tmp_path, "qor_model.npz")
    num_workers = max(2, env_int("REPRO_BENCH_DSE_WORKERS", 4))
    space = DesignSpace.from_kernel(
        KERNEL, env_int("REPRO_BENCH_DSE_RESUME_SPACE", 96), seed=1
    )
    num_classes = space.dedup().num_classes
    # one periodic save covers roughly half the sweep, so the injected
    # abort kills the coordinator with ~50% of the work checkpointed
    interval = max(1, num_classes // 2)
    checkpoint = tmp_path / "sweep.ckpt"

    def explorer(**kwargs) -> ShardedExplorer:
        kwargs.setdefault("num_workers", num_workers)
        kwargs.setdefault("chunk_size", 8)
        return ShardedExplorer(model_path, **kwargs)

    # --- uninterrupted references: checkpointing off, then on ------------
    start = time.perf_counter()
    clean = explorer().explore(space)
    clean_seconds = time.perf_counter() - start

    start = time.perf_counter()
    checkpointed = explorer(
        checkpoint=tmp_path / "overhead.ckpt", checkpoint_interval=interval
    ).explore(space)
    checkpointed_seconds = time.perf_counter() - start
    assert fronts_bit_equal(clean.front, checkpointed.front)

    # --- crash mid-sweep, then resume ------------------------------------
    start = time.perf_counter()
    with pytest.raises(InjectedFault):
        explorer(
            checkpoint=checkpoint, checkpoint_interval=interval,
            fault_plan=FaultPlan(abort_coordinator_after_checkpoints=1),
        ).explore(space)
    aborted_seconds = time.perf_counter() - start

    start = time.perf_counter()
    resumed = explorer(checkpoint=checkpoint, resume=True).explore(space)
    resume_seconds = time.perf_counter() - start

    assert fronts_bit_equal(clean.front, resumed.front), (
        "resumed front is not bit-equal to the uninterrupted sweep"
    )
    assert resumed.predictions == clean.predictions
    assert resumed.rescored_configs == 0
    assert resumed.resumed_configs >= interval

    # --- warm-cache write-back -------------------------------------------
    bank_path = _train_and_save(tmp_path, "bank_model.npz")
    start = time.perf_counter()
    first = ShardedExplorer(
        bank_path, num_workers=num_workers, chunk_size=8,
        warm_caches=True, write_back=True,
    ).explore(space)
    cold_seconds = time.perf_counter() - start
    assert first.write_back_stats["deltas"] >= 1

    start = time.perf_counter()
    second = ShardedExplorer(
        bank_path, num_workers=num_workers, chunk_size=8, warm_caches=True,
    ).explore(space)
    warm_seconds = time.perf_counter() - start
    second_run_cold_builds = (
        second.cache_stats["unit_misses"] + second.cache_stats["outer_misses"]
    )
    assert second_run_cold_builds == 0, (
        "write-back left cold graph builds for the second fleet"
    )
    assert second.predictions == first.predictions

    payload = {
        "benchmark": "dse_resume",
        "kernel": KERNEL,
        "num_configs": len(space),
        "num_classes": num_classes,
        "num_workers": num_workers,
        "checkpoint_interval": interval,
        "uninterrupted_seconds": round(clean_seconds, 6),
        "checkpointed_seconds": round(checkpointed_seconds, 6),
        #: checkpointed / uninterrupted wall time — the cost of durability
        "checkpoint_overhead_ratio": round(
            checkpointed_seconds / clean_seconds, 4
        ),
        "aborted_seconds": round(aborted_seconds, 6),
        "resume_seconds": round(resume_seconds, 6),
        "resumed_configs": resumed.resumed_configs,
        #: already-checkpointed configurations a worker scored again —
        #: exactly 0 by construction, trend-gated so it stays that way
        "configs_rescored": resumed.rescored_configs,
        #: uninterrupted / resume wall time (resume pays only the remainder)
        "resume_speedup_vs_full": round(clean_seconds / resume_seconds, 4),
        "write_back": {
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "write_back_stats": first.write_back_stats,
            #: cold banking run / warm replay run wall time
            "warm_replay_gain": round(cold_seconds / warm_seconds, 4),
            #: cold graph builds in the second fleet — 0 means the bank
            #: covered the whole space, trend-gated at exactly 0
            "second_run_cold_builds": second_run_cold_builds,
        },
        "peak_rss_mb": peak_rss_mb(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_dse_resume.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        ["uninterrupted", f"{clean_seconds:.3f}", "-"],
        ["checkpointed", f"{checkpointed_seconds:.3f}",
         f"{payload['checkpoint_overhead_ratio']:.2f}x overhead"],
        ["aborted @ ~50%", f"{aborted_seconds:.3f}",
         f"{resumed.resumed_configs} configs banked"],
        ["resume", f"{resume_seconds:.3f}",
         f"{payload['resume_speedup_vs_full']:.2f}x vs full, 0 rescored"],
        ["write-back (cold)", f"{cold_seconds:.3f}",
         f"{first.write_back_stats.get('new_predictions', 0)} banked"],
        ["warm replay", f"{warm_seconds:.3f}",
         f"{payload['write_back']['warm_replay_gain']:.2f}x, 0 cold builds"],
    ]
    write_result(
        "BENCH_dse_resume.txt",
        format_table(
            ["phase", "seconds", "notes"], rows,
            title=(
                f"Fault-tolerant DSE: {KERNEL}, {len(space)} configs "
                f"({num_classes} classes), {num_workers} workers"
            ),
        ),
    )
