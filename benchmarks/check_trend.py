"""CI perf-trend gate: compare BENCH_*.json headline metrics to baselines.

Every perf benchmark writes a ``BENCH_*.json`` into ``benchmarks/results/``;
this script compares the *headline* metric of each one (declared in
``benchmarks/results/BASELINE.json``) against its committed baseline value
and exits non-zero when any metric regresses by more than the allowed
fraction (default 20%).  The tracked metrics are deliberately machine-mostly
speedup *ratios* (vectorized vs reference encoder, replay vs naive
construction, cached vs first epoch), not absolute configs/s, so the same
baselines hold on a laptop and on a CI runner; the ``max_regression`` margin
absorbs the residual timing noise.

Memory is tracked alongside speed: each benchmark stamps its process's peak
RSS into the JSON, and the manifest's ``memory`` section compares it to a
committed baseline.  Growth beyond ``max_memory_growth`` (default 30%)
prints a **warning only** — absolute RSS varies with allocator and Python
version, so the memory trend informs rather than gates.

Usage (from the repository root)::

    python benchmarks/check_trend.py                 # gate (exit 1 on regression)
    python benchmarks/check_trend.py --summary       # + markdown step summary
    python benchmarks/check_trend.py --rebaseline    # intentional rebaseline

``--summary`` renders the verdict and the headline metrics (speedups, dedup
ratios, peak RSS) as GitHub-flavored markdown, appended to the file named by
``$GITHUB_STEP_SUMMARY`` when that variable is set (the CI job summary) and
printed to stdout otherwise.

Rebaselining after an intentional perf change is one line: re-run the perf
benchmarks, then ``python benchmarks/check_trend.py --rebaseline`` and commit
the updated ``BASELINE.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BASELINE.json"


def metric_value(payload: dict, dotted_path: str):
    """Navigate ``payload`` along a dotted key path (e.g. ``kernels.gemm.x``)."""
    node = payload
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(
                f"metric path {dotted_path!r} broke at {part!r} "
                f"(available: {sorted(node) if isinstance(node, dict) else type(node).__name__})"
            )
        node = node[part]
    return float(node)


def check_memory(
    baseline: dict, results_dir: Path, rows: list[dict] | None = None
) -> list[str]:
    """Warning messages for peak-RSS growth past the allowed fraction.

    Non-fatal by design: the returned messages are printed, not turned into
    a gate failure (see the module docstring).  ``rows``, when given,
    collects one record per tracked metric for the markdown summary.
    """
    max_growth = float(baseline.get("max_memory_growth", 0.30))
    warnings: list[str] = []
    for bench_file, metrics in baseline.get("memory", {}).items():
        path = results_dir / bench_file
        if not path.exists():
            continue
        payload = json.loads(path.read_text())
        for dotted_path, spec in metrics.items():
            reference = float(spec["baseline"])
            try:
                current = metric_value(payload, dotted_path)
            except KeyError as error:
                warnings.append(
                    f"{bench_file}: memory metric {dotted_path!r} "
                    f"(baseline {reference:.4g} MiB) is missing from the "
                    f"current results — {error}; if the benchmark layout "
                    f"changed intentionally, update BASELINE.json (re-run "
                    f"the perf benchmarks, then `python "
                    f"benchmarks/check_trend.py --rebaseline`)"
                )
                continue
            ceiling = reference * (1.0 + max_growth)
            grown = current > ceiling
            status = "MEM-GROWN" if grown else "ok"
            if rows is not None:
                rows.append({
                    "bench": bench_file, "metric": dotted_path,
                    "current": current, "baseline": reference,
                    "bound": f"<= {ceiling:.4g}", "flagged": grown,
                })
            print(
                f"{status:>9}  {bench_file}::{dotted_path} = {current:.4g} MiB "
                f"(baseline {reference:.4g}, warn above {ceiling:.4g})"
            )
            if grown:
                warnings.append(
                    f"{bench_file}::{dotted_path} grew to {current:.4g} MiB "
                    f"(> {ceiling:.4g} allowed vs baseline {reference:.4g}); "
                    f"if intentional, rebaseline with `python "
                    f"benchmarks/check_trend.py --rebaseline`"
                )
    return warnings


def check(
    baseline: dict, results_dir: Path, rows: list[dict] | None = None
) -> list[str]:
    """All regression messages (empty when every headline metric holds up).

    ``rows``, when given, collects one record per tracked metric for the
    markdown summary.
    """
    max_regression = float(baseline.get("max_regression", 0.20))
    failures: list[str] = []
    for bench_file, metrics in baseline.get("metrics", {}).items():
        path = results_dir / bench_file
        if not path.exists():
            failures.append(f"{bench_file}: missing from {results_dir}")
            continue
        payload = json.loads(path.read_text())
        for dotted_path, spec in metrics.items():
            reference = float(spec["baseline"])
            direction = spec.get("direction", "higher")
            try:
                current = metric_value(payload, dotted_path)
            except KeyError as error:
                failures.append(
                    f"{bench_file}: headline metric {dotted_path!r} "
                    f"(baseline {reference:.4g}, direction {direction!r}) is "
                    f"missing from the current results — {error}; if the "
                    f"benchmark layout changed intentionally, update "
                    f"BASELINE.json (re-run the perf benchmarks, then "
                    f"`python benchmarks/check_trend.py --rebaseline`)"
                )
                continue
            if direction == "higher":
                floor = reference * (1.0 - max_regression)
                regressed = current < floor
                bound = f">= {floor:.4g}"
            else:
                ceiling = reference * (1.0 + max_regression)
                regressed = current > ceiling
                bound = f"<= {ceiling:.4g}"
            status = "REGRESSED" if regressed else "ok"
            if rows is not None:
                rows.append({
                    "bench": bench_file, "metric": dotted_path,
                    "current": current, "baseline": reference,
                    "bound": bound, "flagged": regressed,
                })
            print(
                f"{status:>9}  {bench_file}::{dotted_path} = {current:.4g} "
                f"(baseline {reference:.4g}, allowed {bound})"
            )
            if regressed:
                failures.append(
                    f"{bench_file}::{dotted_path} regressed to {current:.4g} "
                    f"({bound} required vs baseline {reference:.4g}); if this "
                    f"change is intentional, re-run the perf benchmarks and "
                    f"rebaseline with `python benchmarks/check_trend.py "
                    f"--rebaseline`"
                )
    return failures


def _dedup_summary_lines(results_dir: Path) -> list[str]:
    """Markdown block describing the design-space dedup algebra, if present."""
    path = results_dir / "BENCH_dse_sharded.json"
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    section = payload.get("deduped_space")
    if not section:
        return []
    lines = ["", "### Design-space dedup (effective-directive classes)", ""]
    per_kernel = section.get("classes_per_kernel", {})
    if per_kernel:
        lines += [
            "| kernel | raw configs | classes | dedup ratio |",
            "|---|---:|---:|---:|",
        ]
        for kernel, stats in sorted(per_kernel.items()):
            lines.append(
                f"| {kernel} | {stats['raw_configs']} | {stats['classes']} "
                f"| {stats['dedup_ratio']:.2f}x |"
            )
    sweep = section.get("cold_sweep")
    if sweep:
        lines += [
            "",
            f"Cold sweep on `{sweep['kernel']}`: "
            f"{sweep['raw_configs']} raw configurations scored as "
            f"{sweep['classes']} class representatives — "
            f"**{sweep['effective_configs_per_second_gain']:.2f}x** "
            f"effective configs/s "
            f"({sweep['raw_configs_per_second']:.0f} → "
            f"{sweep['dedup_effective_configs_per_second']:.0f}).",
        ]
    return lines


def build_summary(
    passed: bool,
    metric_rows: list[dict],
    memory_rows: list[dict],
    results_dir: Path,
) -> str:
    """The markdown step summary: verdict + headline metrics tables."""
    verdict = "✅ passed" if passed else "❌ FAILED"
    lines = [f"## Perf-trend gate: {verdict}", ""]
    if metric_rows:
        lines += [
            "| benchmark | metric | current | baseline | allowed | status |",
            "|---|---|---:|---:|---|---|",
        ]
        for row in metric_rows:
            status = "❌ regressed" if row["flagged"] else "✅ ok"
            lines.append(
                f"| {row['bench']} | `{row['metric']}` "
                f"| {row['current']:.4g} | {row['baseline']:.4g} "
                f"| {row['bound']} | {status} |"
            )
    lines += _dedup_summary_lines(results_dir)
    if memory_rows:
        lines += [
            "",
            "### Memory (peak RSS, MiB — warns only)",
            "",
            "| benchmark | current | baseline | warn above | status |",
            "|---|---:|---:|---|---|",
        ]
        for row in memory_rows:
            status = "⚠️ grown" if row["flagged"] else "✅ ok"
            lines.append(
                f"| {row['bench']} | {row['current']:.4g} "
                f"| {row['baseline']:.4g} | {row['bound']} | {status} |"
            )
    return "\n".join(lines) + "\n"


def write_summary(text: str) -> None:
    """Append markdown to ``$GITHUB_STEP_SUMMARY``, or print it."""
    target = os.environ.get("GITHUB_STEP_SUMMARY")
    if target:
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text)


def rebaseline(baseline: dict, results_dir: Path, baseline_path: Path) -> None:
    """Overwrite every tracked baseline with the currently-measured value."""
    for section in ("metrics", "memory"):
        for bench_file, metrics in baseline.get(section, {}).items():
            path = results_dir / bench_file
            if not path.exists():
                print(f"skipping {bench_file}: not present in {results_dir}")
                continue
            payload = json.loads(path.read_text())
            for dotted_path, spec in metrics.items():
                previous = spec["baseline"]
                spec["baseline"] = round(metric_value(payload, dotted_path), 4)
                print(
                    f"rebaselined {bench_file}::{dotted_path}: "
                    f"{previous} -> {spec['baseline']}"
                )
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=Path, default=RESULTS_DIR,
        help="directory holding the freshly-generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help="committed baseline manifest (BASELINE.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=None,
        help="override the manifest's allowed fractional regression",
    )
    parser.add_argument(
        "--rebaseline", action="store_true",
        help="rewrite the manifest's baselines from the current results",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="emit a markdown verdict + headline-metrics report, appended "
             "to $GITHUB_STEP_SUMMARY when set (stdout otherwise)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    if args.max_regression is not None:
        baseline["max_regression"] = args.max_regression
    if args.rebaseline:
        rebaseline(baseline, args.results_dir, args.baseline)
        return 0
    metric_rows: list[dict] = []
    memory_rows: list[dict] = []
    failures = check(baseline, args.results_dir, metric_rows)
    memory_warnings = check_memory(baseline, args.results_dir, memory_rows)
    if args.summary:
        write_summary(
            build_summary(not failures, metric_rows, memory_rows, args.results_dir)
        )
    if memory_warnings:
        # informative, never fatal: see the module docstring
        print("\nperf-trend memory WARNINGS:", file=sys.stderr)
        for warning in memory_warnings:
            print(f"  - {warning}", file=sys.stderr)
    if failures:
        print("\nperf-trend gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf-trend gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
