"""Process-wide runtime toggles, dependency-free by design.

Currently a single toggle: the *reference encoding* switch.  The vectorized
cold-path pipeline (union encoder, batch/template caches, scatter-index and
CSR memos, fused ops) retains its pre-vectorization implementation for
differential testing and benchmarking; code at every layer — ``graph``,
``nn`` and ``core`` — consults :func:`reference_encoding_active` to decide
which path to take, so the flag lives here at the bottom of the dependency
graph instead of inverting the ``graph -> nn`` layering.
"""

from __future__ import annotations

import contextlib

_REFERENCE_MODE = False


def reference_encoding_active() -> bool:
    """Whether the retained reference (pre-vectorization) pipeline is forced."""
    return _REFERENCE_MODE


@contextlib.contextmanager
def reference_encoding():
    """Force the reference encoding pipeline within the ``with`` block.

    Used by differential tests and by ``benchmarks/test_perf_cold_path.py``
    to time and verify the vectorized pipeline against the implementation it
    replaced: inside the block, ``make_batch`` runs the per-sample reference
    path, the trainers skip their batch caches, ``predict_batch`` skips its
    outer-template fast path, and the scatter ops recompute their indices
    (and skip their CSR operators) on every call.
    """
    global _REFERENCE_MODE
    previous = _REFERENCE_MODE
    _REFERENCE_MODE = True
    try:
        yield
    finally:
        _REFERENCE_MODE = previous


__all__ = ["reference_encoding", "reference_encoding_active"]
