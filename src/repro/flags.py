"""Process-wide runtime toggles, dependency-free by design.

Three toggles live here, all at the bottom of the dependency graph so code at
every layer — ``graph``, ``nn`` and ``core`` — can consult them without
inverting the ``graph -> nn`` layering:

* the *reference encoding* switch: the vectorized cold-path pipeline (union
  encoder, batch/template caches, scatter-index and CSR memos, fused ops)
  retains its pre-vectorization implementation for differential testing and
  benchmarking;
* the *precision* tier: ``float64`` (the bit-identical default and numerical
  reference) or ``float32`` (the cheap inference tier — roughly half the
  matmul bandwidth, guarded by a relaxed equivalence bound against the
  float64 reference);
* the *canonical directives* switch: graph construction normally rewrites
  every configuration to its effective form first
  (:func:`repro.hls.directives.canonicalize_config`), so equivalent design
  points share one cache/memo signature; ``raw_directives()`` disables the
  rewrite for differential testing and for benchmarking what the
  canonicalization buys.

All toggles are backed by :class:`contextvars.ContextVar`, so concurrent
requests in a threaded or async serving daemon each see their own setting:
``with precision("float32")`` in one request cannot leak into another
thread's forward pass, and the contextmanager API is unchanged from the
module-global implementation it replaced.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar

_REFERENCE_MODE: ContextVar[bool] = ContextVar(
    "repro_reference_encoding", default=False
)

#: the supported precision tiers, canonical spelling first
PRECISIONS = ("float64", "float32")

#: accepted aliases per canonical tier name
_PRECISION_ALIASES = {
    "float64": "float64", "f64": "float64", "fp64": "float64",
    "double": "float64",
    "float32": "float32", "f32": "float32", "fp32": "float32",
    "single": "float32",
}

_PRECISION: ContextVar[str] = ContextVar("repro_precision", default="float64")


def reference_encoding_active() -> bool:
    """Whether the retained reference (pre-vectorization) pipeline is forced."""
    return _REFERENCE_MODE.get()


@contextlib.contextmanager
def reference_encoding():
    """Force the reference encoding pipeline within the ``with`` block.

    Used by differential tests and by ``benchmarks/test_perf_cold_path.py``
    to time and verify the vectorized pipeline against the implementation it
    replaced: inside the block, ``make_batch`` runs the per-sample reference
    path, the trainers skip their batch caches, ``predict_batch`` skips its
    outer-template fast path, and the scatter ops recompute their indices
    (and skip their CSR operators) on every call.
    """
    token = _REFERENCE_MODE.set(True)
    try:
        yield
    finally:
        _REFERENCE_MODE.reset(token)


_RAW_DIRECTIVES: ContextVar[bool] = ContextVar(
    "repro_raw_directives", default=False
)


def canonical_directives_active() -> bool:
    """Whether configurations are canonicalized before graph construction.

    True by default; :func:`raw_directives` flips it off for the enclosed
    block.
    """
    return not _RAW_DIRECTIVES.get()


@contextlib.contextmanager
def raw_directives():
    """Disable effective-directive canonicalization within the ``with`` block.

    Inside the block, :func:`~repro.graph.hierarchy.decompose` and
    :func:`~repro.graph.hierarchy.decomposition_signature` consume the
    configuration exactly as written: equivalent design points keep their
    distinct cache keys and prediction-memo entries.  Used by the
    differential tests (canonicalized and raw predictions must agree
    bit-for-bit) and by the dedup benchmarks to measure the raw-sweep
    baseline.
    """
    token = _RAW_DIRECTIVES.set(True)
    try:
        yield
    finally:
        _RAW_DIRECTIVES.reset(token)


def normalize_precision(value: str) -> str:
    """Canonical tier name (``"float64"``/``"float32"``) for ``value``.

    Accepts the common aliases (``f32``, ``fp32``, ``single``, ``double``,
    ...); raises :class:`ValueError` for anything else so typos fail loudly
    instead of silently running the wrong tier.
    """
    name = _PRECISION_ALIASES.get(str(value).strip().lower())
    if name is None:
        raise ValueError(
            f"unknown precision {value!r}; expected one of {PRECISIONS}"
        )
    return name


def active_precision() -> str:
    """The precision tier of the current context (``"float64"`` default)."""
    return _PRECISION.get()


@contextlib.contextmanager
def precision(value: str):
    """Run the ``with`` block under the given precision tier.

    Governs the dtype of arrays *created* inside the block — batch-encoding
    union buffers, tensors built from scalars and lists — while arrays that
    already carry a float32/float64 dtype (model weights cast once at load)
    propagate their own dtype through the kernels.  The default tier,
    float64, is bit-identical to the pre-tiered implementation.
    """
    token = _PRECISION.set(normalize_precision(value))
    try:
        yield
    finally:
        _PRECISION.reset(token)


__all__ = [
    "PRECISIONS", "reference_encoding", "reference_encoding_active",
    "raw_directives", "canonical_directives_active",
    "normalize_precision", "active_precision", "precision",
]
