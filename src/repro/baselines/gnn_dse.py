"""GNN-DSE-style baseline (Sohrabizadeh et al. [6]).

GNN-DSE represents the source code (with pragmas) as a graph and predicts
*post-HLS* metrics, then drives DSE with those predictions.  Because post-HLS
resource estimates deviate from the post-route truth, the Pareto set it
selects is systematically biased — which is the effect Table V quantifies.

Implementation-wise this is a :class:`~repro.baselines.flat_gnn.FlatGNNBaseline`
configured with pragma-aware graphs and post-HLS labels.
"""

from __future__ import annotations

from repro.baselines.flat_gnn import FlatGNNBaseline
from repro.core.trainer import TrainingConfig
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary


class GNNDSEBaseline(FlatGNNBaseline):
    """Pragma-aware whole-graph GNN trained on post-HLS labels."""

    def __init__(
        self,
        *,
        conv_type: str = "graphsage",
        hidden: int = 32,
        num_layers: int = 3,
        training: TrainingConfig | None = None,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        seed: int = 0,
    ):
        super().__init__(
            pragma_aware=True,
            label_stage="post_hls",
            conv_type=conv_type,
            hidden=hidden,
            num_layers=num_layers,
            training=training,
            library=library,
            seed=seed,
        )


__all__ = ["GNNDSEBaseline"]
