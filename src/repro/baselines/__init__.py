"""Baseline QoR predictors the paper compares against."""

from repro.baselines.flat_gnn import FlatGNNBaseline, post_hls_targets
from repro.baselines.gbm import (
    GBMBaseline,
    GradientBoostingRegressor,
    RegressionTree,
    extract_features,
    feature_names,
)
from repro.baselines.gnn_dse import GNNDSEBaseline

__all__ = [
    "FlatGNNBaseline", "post_hls_targets",
    "GBMBaseline", "GradientBoostingRegressor", "RegressionTree",
    "extract_features", "feature_names",
    "GNNDSEBaseline",
]
