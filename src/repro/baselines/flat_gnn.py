"""Whole-graph GNN baselines.

``FlatGNNBaseline`` reproduces the comparison axes of Table IV / Table V:

* in **pragma-blind** mode (``pragma_aware=False``) it mirrors Wu et al. [8]:
  the input graph is built from the IR alone, so two design points that
  differ only in pragmas produce identical graphs — the model cannot separate
  their (very different) post-route labels;
* in **pragma-aware** mode it is the "no hierarchy" ablation: the same
  pragma-aware graphs as our method, but predicted in one shot with a single
  whole-graph GNN instead of the hierarchical GNNp/GNNnp/GNNg pipeline.

Which post-synthesis stage the labels come from is selectable
(``label_stage``), so the same class also implements the GNN-DSE-style [6]
baseline that predicts *post-HLS* metrics (see
:mod:`repro.baselines.gnn_dse`).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import DesignInstance, flat_sample, graph_to_sample
from repro.core.models import GlobalGNN
from repro.core.trainer import GraphRegressorTrainer, TrainingConfig, TrainingResult
from repro.frontend.pragmas import PragmaConfig
from repro.graph.construction import build_flat_graph
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.structure import IRFunction
from repro.nn.data import GraphSample, train_validation_test_split

QOR_TARGETS = ("lut", "dsp", "ff", "latency")


def post_hls_targets(instance: DesignInstance) -> dict[str, float]:
    """Post-HLS (pre-route) labels of one design instance."""
    report = instance.qor.hls_report
    if report is None:
        raise ValueError("design instance has no HLS report attached")
    return {
        "latency": float(report.latency),
        "lut": float(report.resources.lut),
        "dsp": float(report.resources.dsp),
        "ff": float(report.resources.ff),
    }


class FlatGNNBaseline:
    """A single whole-graph GNN predicting design-level QoR."""

    def __init__(
        self,
        *,
        pragma_aware: bool = False,
        label_stage: str = "post_route",
        conv_type: str = "graphsage",
        hidden: int = 32,
        num_layers: int = 3,
        training: TrainingConfig | None = None,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        seed: int = 0,
    ):
        if label_stage not in ("post_route", "post_hls"):
            raise ValueError("label_stage must be 'post_route' or 'post_hls'")
        self.pragma_aware = pragma_aware
        self.label_stage = label_stage
        self.conv_type = conv_type
        self.hidden = hidden
        self.num_layers = num_layers
        self.training = training or TrainingConfig()
        self.library = library
        self.seed = seed
        self.trainer: GraphRegressorTrainer | None = None

    # ------------------------------------------------------------------ #
    # dataset assembly
    # ------------------------------------------------------------------ #
    def _sample_of(self, instance: DesignInstance) -> GraphSample:
        sample = flat_sample(
            instance, pragma_aware=self.pragma_aware, library=self.library
        )
        if self.label_stage == "post_hls":
            sample.targets = post_hls_targets(instance)
        return sample

    def build_samples(self, instances: list[DesignInstance]) -> list[GraphSample]:
        return [self._sample_of(instance) for instance in instances]

    # ------------------------------------------------------------------ #
    # training / inference
    # ------------------------------------------------------------------ #
    def fit(
        self,
        instances: list[DesignInstance],
        *,
        rng: np.random.Generator | None = None,
    ) -> TrainingResult:
        rng = rng or np.random.default_rng(self.seed)
        samples = self.build_samples(instances)
        train, validation, test = train_validation_test_split(samples, rng=rng)
        train = train or samples
        trainer = GraphRegressorTrainer(
            model=None, target_names=QOR_TARGETS, config=self.training
        )
        trainer.fit_preprocessing(train)
        model = GlobalGNN(
            in_features=trainer.input_dim(train),
            hidden=self.hidden,
            num_layers=self.num_layers,
            conv_type=self.conv_type,
            rng=np.random.default_rng(self.seed),
        )
        trainer.model = model
        result = trainer.train(train, validation or None, test or None)
        self.trainer = trainer
        return result

    def predict(
        self, function: IRFunction, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        if self.trainer is None:
            raise RuntimeError("baseline has not been trained")
        config = config or PragmaConfig()
        graph = build_flat_graph(
            function,
            config if self.pragma_aware else PragmaConfig(),
            pragma_aware=self.pragma_aware,
            library=self.library,
        )
        predictions = self.trainer.predict([graph_to_sample(graph)])
        return {name: float(values[0]) for name, values in predictions.items()}

    def evaluate(self, instances: list[DesignInstance]) -> dict[str, float]:
        """MAPE of the baseline against its own label stage."""
        from repro.nn.losses import mape

        samples = self.build_samples(instances)
        predictions = {name: [] for name in QOR_TARGETS}
        truths = {name: [] for name in QOR_TARGETS}
        for instance, sample in zip(instances, samples):
            predicted = self.predict(instance.function, instance.config)
            for name in QOR_TARGETS:
                predictions[name].append(predicted[name])
                truths[name].append(sample.targets[name])
        return {
            name: mape(np.array(predictions[name]), np.array(truths[name]))
            for name in QOR_TARGETS
        }

    def evaluate_post_route(self, instances: list[DesignInstance]) -> dict[str, float]:
        """MAPE against post-route labels regardless of the training stage.

        This is how a post-HLS predictor's error looks when judged against
        the post-route truth — the deviation the paper's Table I / Section I
        argues makes post-HLS labels misleading for DSE.
        """
        from repro.nn.losses import mape

        predictions = {name: [] for name in QOR_TARGETS}
        truths = {name: [] for name in QOR_TARGETS}
        for instance in instances:
            predicted = self.predict(instance.function, instance.config)
            truth = {
                "latency": float(instance.qor.latency),
                "lut": float(instance.qor.lut),
                "dsp": float(instance.qor.dsp),
                "ff": float(instance.qor.ff),
            }
            for name in QOR_TARGETS:
                predictions[name].append(predicted[name])
                truths[name].append(truth[name])
        return {
            name: mape(np.array(predictions[name]), np.array(truths[name]))
            for name in QOR_TARGETS
        }


__all__ = ["FlatGNNBaseline", "QOR_TARGETS", "post_hls_targets"]
