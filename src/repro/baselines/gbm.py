"""Gradient-boosted-machine baseline (Zhong et al. [3] style).

The earliest learning-based HLS QoR estimators profile the source code into a
flat feature vector (operation histogram, loop statistics, pragma settings)
and fit boosted regression trees per metric.  This module implements both the
feature extraction and a small gradient-boosting regressor (least-squares
boosting over depth-limited CART trees) from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import DesignInstance
from repro.frontend.pragmas import PragmaConfig
from repro.hls.directives import effective_unroll_factors, partition_banks
from repro.ir.passes import loop_nest_analysis, operation_histogram
from repro.ir.structure import IRFunction

QOR_TARGETS = ("lut", "dsp", "ff", "latency")

#: opcodes counted individually in the feature vector
_COUNTED_OPS = (
    "add", "sub", "mul", "sdiv", "fadd", "fsub", "fmul", "fdiv",
    "load", "store", "icmp", "fcmp", "select", "getelementptr", "call",
)


# --------------------------------------------------------------------------- #
# feature extraction
# --------------------------------------------------------------------------- #
def extract_features(function: IRFunction, config: PragmaConfig) -> np.ndarray:
    """Flat feature vector for one design point (code profile + pragmas)."""
    histogram = operation_histogram(function)
    nests = loop_nest_analysis(function)
    unroll = effective_unroll_factors(function, config)

    op_counts = [float(histogram.get(name, 0)) for name in _COUNTED_OPS]
    loop_count = float(len(nests))
    max_depth = float(max([info.depth for info in nests.values()] or [0]))
    total_iterations = float(
        sum(info.total_iterations for info in nests.values())
    )
    pipelined = float(
        sum(1 for label in nests if config.loop(label).pipeline)
    )
    flattened = float(
        sum(1 for label in nests if config.loop(label).flatten)
    )
    unroll_sum = float(sum(unroll.values()))
    unroll_max = float(max(unroll.values() or [1]))
    banks = [
        partition_banks(info, config.array(name))
        for name, info in function.arrays.items()
    ]
    bank_total = float(sum(banks) if banks else 0)
    bank_max = float(max(banks) if banks else 0)
    array_count = float(len(function.arrays))
    array_words = float(sum(info.total_size for info in function.arrays.values()))
    return np.array(
        op_counts
        + [
            loop_count, max_depth, np.log1p(total_iterations), pipelined,
            flattened, unroll_sum, unroll_max, bank_total, bank_max,
            array_count, np.log1p(array_words),
        ],
        dtype=np.float64,
    )


def feature_names() -> list[str]:
    """Names of the entries of :func:`extract_features` (for inspection)."""
    return [f"count_{name}" for name in _COUNTED_OPS] + [
        "loop_count", "max_depth", "log_total_iterations", "pipelined_loops",
        "flattened_loops", "unroll_sum", "unroll_max", "bank_total", "bank_max",
        "array_count", "log_array_words",
    ]


# --------------------------------------------------------------------------- #
# regression trees and boosting
# --------------------------------------------------------------------------- #
@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "._TreeNode | None" = None
    right: "._TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """A depth-limited CART regression tree with variance-reduction splits."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 4):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.root: _TreeNode | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self.root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()) if y.size else 0.0)
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        best_gain = 0.0
        best: tuple[int, float] | None = None
        base_error = float(((y - y.mean()) ** 2).sum())
        for feature in range(X.shape[1]):
            column = X[:, feature]
            candidates = np.unique(column)
            if candidates.size <= 1:
                continue
            thresholds = (candidates[:-1] + candidates[1:]) / 2.0
            if thresholds.size > 16:
                thresholds = np.quantile(column, np.linspace(0.05, 0.95, 16))
            for threshold in np.unique(thresholds):
                mask = column <= threshold
                if (
                    mask.sum() < self.min_samples_leaf
                    or (~mask).sum() < self.min_samples_leaf
                ):
                    continue
                left, right = y[mask], y[~mask]
                error = float(((left - left.mean()) ** 2).sum()) + float(
                    ((right - right.mean()) ** 2).sum()
                )
                gain = base_error - error
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        output = np.empty(X.shape[0], dtype=np.float64)
        for index, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[index] = node.value
        return output


class GradientBoostingRegressor:
    """Least-squares gradient boosting over regression trees."""

    def __init__(
        self,
        n_estimators: int = 120,
        learning_rate: float = 0.08,
        max_depth: int = 3,
        min_samples_leaf: int = 4,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.base_value = 0.0
        self.trees: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        self.base_value = float(y.mean()) if y.size else 0.0
        prediction = np.full_like(y, self.base_value)
        self.trees = []
        for _ in range(self.n_estimators):
            residual = y - prediction
            tree = RegressionTree(self.max_depth, self.min_samples_leaf).fit(X, residual)
            update = tree.predict(X)
            prediction = prediction + self.learning_rate * update
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        prediction = np.full(X.shape[0], self.base_value, dtype=np.float64)
        for tree in self.trees:
            prediction = prediction + self.learning_rate * tree.predict(X)
        return prediction


# --------------------------------------------------------------------------- #
# the baseline model
# --------------------------------------------------------------------------- #
@dataclass
class GBMBaseline:
    """Per-metric boosted trees on profile features (post-HLS labels)."""

    n_estimators: int = 120
    learning_rate: float = 0.08
    max_depth: int = 3
    label_stage: str = "post_hls"
    models: dict[str, GradientBoostingRegressor] = field(default_factory=dict)

    def _targets(self, instance: DesignInstance) -> dict[str, float]:
        if self.label_stage == "post_route":
            return {
                "latency": float(instance.qor.latency),
                "lut": float(instance.qor.lut),
                "dsp": float(instance.qor.dsp),
                "ff": float(instance.qor.ff),
            }
        report = instance.qor.hls_report
        return {
            "latency": float(report.latency),
            "lut": float(report.resources.lut),
            "dsp": float(report.resources.dsp),
            "ff": float(report.resources.ff),
        }

    def fit(self, instances: list[DesignInstance]) -> "GBMBaseline":
        X = np.stack(
            [extract_features(i.function, i.config) for i in instances]
        )
        for name in QOR_TARGETS:
            y = np.log1p(np.array([self._targets(i)[name] for i in instances]))
            model = GradientBoostingRegressor(
                self.n_estimators, self.learning_rate, self.max_depth
            )
            self.models[name] = model.fit(X, y)
        return self

    def predict(
        self, function: IRFunction, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        if not self.models:
            raise RuntimeError("GBM baseline has not been trained")
        features = extract_features(function, config or PragmaConfig()).reshape(1, -1)
        return {
            name: float(np.expm1(model.predict(features)[0]))
            for name, model in self.models.items()
        }

    def evaluate(self, instances: list[DesignInstance]) -> dict[str, float]:
        from repro.nn.losses import mape

        scores = {}
        predictions = {name: [] for name in QOR_TARGETS}
        truths = {name: [] for name in QOR_TARGETS}
        for instance in instances:
            predicted = self.predict(instance.function, instance.config)
            truth = self._targets(instance)
            for name in QOR_TARGETS:
                predictions[name].append(predicted[name])
                truths[name].append(truth[name])
        for name in QOR_TARGETS:
            scores[name] = mape(np.array(predictions[name]), np.array(truths[name]))
        return scores


__all__ = [
    "GBMBaseline", "GradientBoostingRegressor", "RegressionTree",
    "extract_features", "feature_names", "QOR_TARGETS",
]
