"""Analysis passes over the structured IR.

These are the "LLVM passes" mentioned in the paper: tripcount extraction,
memory-access analysis (which load/store touches which array with which affine
map — used for memory-port connection and the resource-constrained II), and
bookkeeping queries used by the graph constructor and the HLS scheduler.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IfRegion, IRFunction, Loop, Region


# --------------------------------------------------------------------------- #
# loop nest analysis
# --------------------------------------------------------------------------- #
@dataclass
class LoopNestInfo:
    """Summary of one loop within its nest."""

    loop: Loop
    parent_label: str | None
    depth: int
    enclosing_tripcount: int

    @property
    def label(self) -> str:
        return self.loop.label

    @property
    def total_iterations(self) -> int:
        """Iterations of this loop times all enclosing loops."""
        return self.enclosing_tripcount * self.loop.tripcount


def loop_nest_analysis(function: IRFunction) -> dict[str, LoopNestInfo]:
    """Compute parent/depth/enclosing-tripcount info for every loop."""
    result: dict[str, LoopNestInfo] = {}

    def visit(region: Region, parent: str | None, depth: int, enclosing: int) -> None:
        for item in region.items:
            if isinstance(item, Loop):
                result[item.label] = LoopNestInfo(
                    loop=item, parent_label=parent, depth=depth,
                    enclosing_tripcount=enclosing,
                )
                visit(item.body, item.label, depth + 1,
                      enclosing * max(1, item.tripcount))
            elif isinstance(item, IfRegion):
                visit(item.then_region, parent, depth, enclosing)
                visit(item.else_region, parent, depth, enclosing)

    visit(function.body, None, 0, 1)
    return result


def enclosing_loops(function: IRFunction) -> dict[int, tuple[str, ...]]:
    """Map every instruction id to the labels of its enclosing loops
    (outermost first).  Loop control instructions belong to their own loop."""
    result: dict[int, tuple[str, ...]] = {}

    def visit(region: Region, stack: tuple[str, ...]) -> None:
        for item in region.items:
            if isinstance(item, Instruction):
                result[item.instr_id] = stack
            elif isinstance(item, Loop):
                inner = stack + (item.label,)
                for instr in item.header_instrs:
                    result[instr.instr_id] = inner
                for instr in item.latch_instrs:
                    result[instr.instr_id] = inner
                visit(item.body, inner)
            elif isinstance(item, IfRegion):
                visit(item.then_region, stack)
                visit(item.else_region, stack)

    visit(function.body, ())
    return result


def invocation_counts(function: IRFunction) -> dict[int, int]:
    """Number of times each instruction executes (product of enclosing
    tripcounts), before any unrolling is applied."""
    nests = loop_nest_analysis(function)
    enclosing = enclosing_loops(function)
    counts: dict[int, int] = {}
    for instr in function.all_instructions():
        total = 1
        for label in enclosing.get(instr.instr_id, ()):
            total *= max(1, nests[label].loop.tripcount)
        counts[instr.instr_id] = total
    return counts


# --------------------------------------------------------------------------- #
# memory access analysis
# --------------------------------------------------------------------------- #
@dataclass
class MemoryAccess:
    """One load or store to an array."""

    instr: Instruction
    is_store: bool
    loop_labels: tuple[str, ...] = ()

    @property
    def array(self) -> str:
        return self.instr.array


@dataclass
class ArrayAccessSummary:
    """All accesses touching one array."""

    array: str
    accesses: list[MemoryAccess] = field(default_factory=list)

    @property
    def load_count(self) -> int:
        return sum(1 for access in self.accesses if not access.is_store)

    @property
    def store_count(self) -> int:
        return sum(1 for access in self.accesses if access.is_store)

    def accesses_in_loop(self, label: str) -> list[MemoryAccess]:
        return [a for a in self.accesses if label in a.loop_labels]


def memory_access_analysis(function: IRFunction) -> dict[str, ArrayAccessSummary]:
    """Group every load/store by the array it touches."""
    enclosing = enclosing_loops(function)
    summaries: dict[str, ArrayAccessSummary] = {}
    for instr in function.all_instructions():
        if instr.opcode not in (Opcode.LOAD, Opcode.STORE):
            continue
        summary = summaries.setdefault(instr.array, ArrayAccessSummary(instr.array))
        summary.accesses.append(
            MemoryAccess(
                instr=instr,
                is_store=instr.opcode is Opcode.STORE,
                loop_labels=enclosing.get(instr.instr_id, ()),
            )
        )
    return summaries


# --------------------------------------------------------------------------- #
# miscellaneous statistics
# --------------------------------------------------------------------------- #
def operation_histogram(function: IRFunction) -> Counter:
    """Count instructions by opcode (used by the GBM baseline features)."""
    return Counter(instr.opcode.value for instr in function.all_instructions())


def arithmetic_intensity(function: IRFunction) -> float:
    """Ratio of arithmetic instructions to memory instructions."""
    histogram = operation_histogram(function)
    arith = sum(
        count for name, count in histogram.items()
        if Opcode(name).is_arithmetic
    )
    memory = histogram.get("load", 0) + histogram.get("store", 0)
    if memory == 0:
        return float(arith)
    return arith / memory


def innermost_loops(function: IRFunction) -> list[Loop]:
    """All loops that contain no nested sub-loops."""
    return [loop for loop in function.all_loops() if loop.is_innermost]


def loop_recurrences(function: IRFunction, label: str):
    """Recurrences recorded for the loop ``label``."""
    return [rec for rec in function.recurrences if rec.loop_label == label]


__all__ = [
    "LoopNestInfo", "loop_nest_analysis", "enclosing_loops", "invocation_counts",
    "MemoryAccess", "ArrayAccessSummary", "memory_access_analysis",
    "operation_histogram", "arithmetic_intensity", "innermost_loops",
    "loop_recurrences",
]
