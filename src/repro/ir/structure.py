"""Structured (region-based) IR: functions, loops and conditional regions.

Unlike a flat CFG, the IR keeps the loop structure of the source program
explicit — a function body is a :class:`Region` whose items are instructions,
:class:`Loop` nodes (each with its own body region) or :class:`IfRegion`
nodes.  This mirrors how HLS tools reason about loop nests and makes the
hierarchical decomposition used by the paper (inner-hierarchy loops vs the
outer hierarchy) a simple tree traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.ir.instructions import Instruction


@dataclass
class Region:
    """An ordered sequence of instructions and nested control structures."""

    items: list["RegionItem"] = field(default_factory=list)

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over instructions directly in this region (not nested)."""
        for item in self.items:
            if isinstance(item, Instruction):
                yield item

    def loops(self) -> Iterator["Loop"]:
        """Iterate over loops directly in this region (not nested)."""
        for item in self.items:
            if isinstance(item, Loop):
                yield item

    def walk_instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in this region, recursively."""
        for item in self.items:
            if isinstance(item, Instruction):
                yield item
            elif isinstance(item, Loop):
                yield from item.header_instrs
                yield from item.body.walk_instructions()
                yield from item.latch_instrs
            elif isinstance(item, IfRegion):
                yield from item.then_region.walk_instructions()
                yield from item.else_region.walk_instructions()

    def walk_loops(self) -> Iterator["Loop"]:
        """Iterate over every loop in this region, recursively (pre-order)."""
        for item in self.items:
            if isinstance(item, Loop):
                yield item
                yield from item.body.walk_loops()
            elif isinstance(item, IfRegion):
                yield from item.then_region.walk_loops()
                yield from item.else_region.walk_loops()


@dataclass
class Loop:
    """A counted loop with a constant trip count.

    ``header_instrs`` holds the control instructions evaluated every
    iteration (induction-variable ``phi``, exit ``icmp``, backedge ``br``);
    ``latch_instrs`` holds the induction-variable increment.  ``body`` holds
    the loop payload, which may itself contain nested loops.
    """

    label: str = ""
    var: str = ""
    start: int = 0
    bound: int = 0
    step: int = 1
    cmp_op: str = "<"
    body: Region = field(default_factory=Region)
    header_instrs: list[Instruction] = field(default_factory=list)
    latch_instrs: list[Instruction] = field(default_factory=list)
    line: int = 0

    @property
    def tripcount(self) -> int:
        """Number of iterations executed by this loop."""
        if self.step == 0:
            return 0
        span = self.bound - self.start
        if self.cmp_op in ("<=", ">="):
            span += 1 if self.step > 0 else -1
        count = span / self.step
        if count <= 0:
            return 0
        import math
        return int(math.ceil(count))

    def sub_loops(self) -> list["Loop"]:
        """Loops directly nested inside this loop (one level down)."""
        return list(self.body.loops())

    def all_sub_loops(self) -> list["Loop"]:
        """All loops nested inside this loop, at any depth."""
        return list(self.body.walk_loops())

    @property
    def is_innermost(self) -> bool:
        return not self.all_sub_loops()

    @property
    def depth_below(self) -> int:
        """Number of loop levels nested inside (0 for an innermost loop)."""
        subs = self.sub_loops()
        if not subs:
            return 0
        return 1 + max(sub.depth_below for sub in subs)

    def is_perfect_nest(self) -> bool:
        """True if this loop's body contains only a single sub-loop (no other
        instructions except index bookkeeping) at every level — the condition
        Vitis HLS requires for loop flattening."""
        current = self
        while True:
            subs = current.sub_loops()
            if not subs:
                return True
            if len(subs) > 1:
                return False
            body_instr_count = sum(1 for _ in current.body.instructions())
            if body_instr_count > 0:
                return False
            current = subs[0]

    def body_instruction_count(self) -> int:
        """Number of instructions in the loop body (recursively)."""
        return sum(1 for _ in self.body.walk_instructions())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Loop({self.label}, tc={self.tripcount}, depth_below={self.depth_below})"


@dataclass
class IfRegion:
    """A two-way conditional region.  ``cond_instr_id`` produces the predicate."""

    cond_instr_id: int = -1
    then_region: Region = field(default_factory=Region)
    else_region: Region = field(default_factory=Region)
    line: int = 0


RegionItem = Union[Instruction, Loop, IfRegion]


@dataclass(frozen=True)
class Recurrence:
    """A loop-carried dependence recorded during lowering.

    ``loop_label`` is the innermost enclosing loop, ``distance`` the iteration
    distance of the dependence and ``chain`` the ids of the instructions on
    the cyclic data-flow path.  The HLS scheduler uses these to compute the
    recurrence-constrained initiation interval (II_rec in the paper).
    """

    loop_label: str
    distance: int
    chain: tuple[int, ...]
    kind: str = "scalar"
    array: str = ""


@dataclass
class ArrayInfo:
    """Metadata for an array (function argument or local array)."""

    name: str
    dims: tuple[int, ...]
    dtype: str = "i32"
    is_argument: bool = True

    @property
    def total_size(self) -> int:
        size = 1
        for dim in self.dims:
            size *= dim
        return size


@dataclass
class IRFunction:
    """A lowered function: scalar params, arrays and a structured body."""

    name: str = ""
    scalar_params: list[tuple[str, str]] = field(default_factory=list)
    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    body: Region = field(default_factory=Region)
    recurrences: list[Recurrence] = field(default_factory=list)
    next_instr_id: int = 0

    def all_instructions(self) -> list[Instruction]:
        """Every instruction in the function, in textual order."""
        return list(self.body.walk_instructions())

    def all_loops(self) -> list["Loop"]:
        """Every loop in the function, in pre-order."""
        return list(self.body.walk_loops())

    def top_level_loops(self) -> list["Loop"]:
        return list(self.body.loops())

    def loop_by_label(self, label: str) -> Loop:
        for loop in self.all_loops():
            if loop.label == label:
                return loop
        raise KeyError(f"no loop labelled {label!r} in function {self.name!r}")

    def instruction_by_id(self, instr_id: int) -> Instruction:
        for instr in self.all_instructions():
            if instr.instr_id == instr_id:
                return instr
        raise KeyError(f"no instruction with id {instr_id}")

    @property
    def instruction_count(self) -> int:
        return len(self.all_instructions())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"IRFunction({self.name}, instrs={self.instruction_count}, "
            f"loops={len(self.all_loops())})"
        )


__all__ = [
    "Region", "Loop", "IfRegion", "RegionItem", "Recurrence", "ArrayInfo",
    "IRFunction",
]
