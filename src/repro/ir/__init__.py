"""Structured SSA intermediate representation and analysis passes."""

from repro.ir.builder import IRBuilder, LoweringError, lower_function, lower_source
from repro.ir.instructions import (
    AffineAccess,
    ArrayOperand,
    ConstOperand,
    Instruction,
    Opcode,
    Operand,
    ParamOperand,
    ValueRef,
    binop_opcode,
)
from repro.ir.passes import (
    ArrayAccessSummary,
    LoopNestInfo,
    MemoryAccess,
    arithmetic_intensity,
    enclosing_loops,
    innermost_loops,
    invocation_counts,
    loop_nest_analysis,
    loop_recurrences,
    memory_access_analysis,
    operation_histogram,
)
from repro.ir.structure import (
    ArrayInfo,
    IfRegion,
    IRFunction,
    Loop,
    Recurrence,
    Region,
)

__all__ = [
    "IRBuilder", "LoweringError", "lower_function", "lower_source",
    "AffineAccess", "ArrayOperand", "ConstOperand", "Instruction", "Opcode",
    "Operand", "ParamOperand", "ValueRef", "binop_opcode",
    "ArrayAccessSummary", "LoopNestInfo", "MemoryAccess",
    "arithmetic_intensity", "enclosing_loops", "innermost_loops",
    "invocation_counts", "loop_nest_analysis", "loop_recurrences",
    "memory_access_analysis", "operation_histogram",
    "ArrayInfo", "IfRegion", "IRFunction", "Loop", "Recurrence", "Region",
]
