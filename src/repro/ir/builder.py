"""Lowering from the HLS-C AST to the structured SSA IR.

The builder mirrors what Clang + mem2reg would produce for the supported C
subset: scalar variables become SSA values tracked in a symbol table, array
accesses become ``getelementptr`` + ``load``/``store`` pairs with affine
access maps, ``for`` loops become :class:`~repro.ir.structure.Loop` regions
with explicit ``phi``/``icmp``/``br`` control instructions, and loop-carried
dependences (scalar accumulations and read-after-write array recurrences) are
recorded as :class:`~repro.ir.structure.Recurrence` objects for the HLS
scheduler's II computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import ast_nodes as ast
from repro.ir.instructions import (
    AffineAccess,
    ArrayOperand,
    ConstOperand,
    Instruction,
    Opcode,
    Operand,
    ParamOperand,
    ValueRef,
    binop_opcode,
)
from repro.ir.structure import ArrayInfo, IfRegion, IRFunction, Loop, Recurrence, Region


class LoweringError(Exception):
    """Raised when the AST cannot be lowered (unsupported construct)."""


@dataclass
class _Value:
    """A value binding in the symbol table."""

    operand: Operand
    dtype: str


_FLOAT_INTRINSICS = {
    "sqrtf", "sqrt", "expf", "exp", "logf", "log", "fabs", "fabsf",
    "sinf", "cosf", "powf", "pow", "fmaxf", "fminf",
}


class IRBuilder:
    """Builds an :class:`IRFunction` from a parsed :class:`FunctionDef`."""

    def __init__(self, func_def: ast.FunctionDef):
        self.func_def = func_def
        self.function = IRFunction(name=func_def.name)
        self._scopes: list[dict[str, _Value]] = [{}]
        self._region_stack: list[Region] = [self.function.body]
        self._loop_stack: list[Loop] = []
        self._instr_index: dict[int, Instruction] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build(self) -> IRFunction:
        """Lower the function and return the IR."""
        for param in self.func_def.params:
            dtype = "f32" if param.type_name in ("float", "double") else "i32"
            if param.is_array:
                self.function.arrays[param.name] = ArrayInfo(
                    name=param.name, dims=tuple(param.dims), dtype=dtype,
                    is_argument=True,
                )
            else:
                self.function.scalar_params.append((param.name, dtype))
                self._bind(param.name, ParamOperand(param.name, dtype), dtype)
        if self.func_def.body is not None:
            self._lower_block(self.func_def.body)
        return self.function

    # ------------------------------------------------------------------ #
    # scope / region helpers
    # ------------------------------------------------------------------ #
    @property
    def _region(self) -> Region:
        return self._region_stack[-1]

    def _bind(self, name: str, operand: Operand, dtype: str) -> None:
        self._scopes[-1][name] = _Value(operand, dtype)

    def _rebind(self, name: str, operand: Operand, dtype: str) -> None:
        """Update an existing binding wherever it was declared."""
        for scope in reversed(self._scopes):
            if name in scope:
                scope[name] = _Value(operand, dtype)
                return
        self._scopes[-1][name] = _Value(operand, dtype)

    def _lookup(self, name: str) -> _Value | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _emit(
        self,
        opcode: Opcode,
        operands: list[Operand],
        dtype: str = "i32",
        *,
        array: str = "",
        access: AffineAccess | None = None,
        callee: str = "",
        name: str = "",
        line: int = 0,
        region: Region | None = None,
        collect: list[Instruction] | None = None,
    ) -> Instruction:
        instr = Instruction(
            instr_id=self.function.next_instr_id,
            opcode=opcode,
            dtype=dtype,
            operands=operands,
            array=array,
            access=access,
            callee=callee,
            name=name,
            line=line,
        )
        self.function.next_instr_id += 1
        self._instr_index[instr.instr_id] = instr
        if collect is not None:
            collect.append(instr)
        else:
            (region or self._region).items.append(instr)
        return instr

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _lower_block(self, block: ast.Block) -> None:
        self._scopes.append({})
        for stmt in block.statements:
            self._lower_stmt(stmt)
        self._scopes.pop()

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.Assignment):
            self._lower_assignment(stmt)
        elif isinstance(stmt, ast.ForLoop):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._lower_stmt(inner)
        elif isinstance(stmt, ast.ReturnStmt):
            operands: list[Operand] = []
            if stmt.value is not None:
                value, _ = self._lower_expr(stmt.value)
                operands.append(value)
            self._emit(Opcode.RET, operands, "void", line=stmt.line)
        else:
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def _lower_declaration(self, decl: ast.Declaration) -> None:
        dtype = "f32" if decl.type_name in ("float", "double") else "i32"
        if decl.dims:
            self.function.arrays[decl.name] = ArrayInfo(
                name=decl.name, dims=tuple(decl.dims), dtype=dtype, is_argument=False,
            )
            self._emit(
                Opcode.ALLOCA, [ArrayOperand(decl.name)], dtype,
                array=decl.name, line=decl.line,
            )
            return
        if decl.init is not None:
            value, value_dtype = self._lower_expr(decl.init)
            if value_dtype != dtype and isinstance(value, (ValueRef, ParamOperand)):
                cast = self._emit(Opcode.CAST, [value], dtype, line=decl.line)
                value = ValueRef(cast.instr_id)
            self._bind(decl.name, value, dtype)
        else:
            self._bind(decl.name, ConstOperand(0, dtype), dtype)

    def _lower_assignment(self, assign: ast.Assignment) -> None:
        target = assign.target
        if isinstance(target, ast.VarRef):
            self._lower_scalar_assignment(target, assign)
        elif isinstance(target, ast.ArrayRef):
            self._lower_array_assignment(target, assign)
        else:
            raise LoweringError("assignment target must be scalar or array element")

    def _lower_scalar_assignment(self, target: ast.VarRef, assign: ast.Assignment) -> None:
        old = self._lookup(target.name)
        rhs_value, rhs_dtype = self._lower_expr(assign.value)
        if assign.op == "=":
            new_value, new_dtype = rhs_value, rhs_dtype
        else:
            if old is None:
                raise LoweringError(f"compound assignment to undeclared {target.name!r}")
            op = assign.op[0]
            dtype = "f32" if "f32" in (old.dtype, rhs_dtype) else "i32"
            opcode = binop_opcode(op, dtype)
            instr = self._emit(
                opcode, [old.operand, rhs_value], dtype, line=assign.line
            )
            new_value, new_dtype = ValueRef(instr.instr_id), dtype
        # detect loop-carried scalar recurrence: new value depends on old value
        if self._loop_stack and old is not None and isinstance(new_value, ValueRef):
            chain: list[int] = []
            if assign.op != "=":
                # compound assignment (x += ...) is always a recurrence whose
                # cycle contains only the combining instruction.
                chain = [new_value.instr_id]
            elif isinstance(old.operand, ValueRef):
                chain = self._dataflow_chain(new_value.instr_id, old.operand.instr_id)
            if chain:
                self.function.recurrences.append(
                    Recurrence(
                        loop_label=self._loop_stack[-1].label,
                        distance=1,
                        chain=tuple(chain),
                        kind="scalar",
                    )
                )
        self._rebind(target.name, new_value, new_dtype)

    def _lower_array_assignment(self, target: ast.ArrayRef, assign: ast.Assignment) -> None:
        info = self.function.arrays.get(target.name)
        if info is None:
            raise LoweringError(f"store to undeclared array {target.name!r}")
        access, index_value = self._lower_array_index(target)
        rhs_value, rhs_dtype = self._lower_expr(assign.value)
        if assign.op != "=":
            load = self._emit(
                Opcode.LOAD, [ArrayOperand(target.name), index_value], info.dtype,
                array=target.name, access=access, line=assign.line,
            )
            op = assign.op[0]
            dtype = "f32" if "f32" in (info.dtype, rhs_dtype) else "i32"
            opcode = binop_opcode(op, dtype)
            combined = self._emit(
                opcode, [ValueRef(load.instr_id), rhs_value], dtype, line=assign.line
            )
            rhs_value = ValueRef(combined.instr_id)
        store = self._emit(
            Opcode.STORE, [rhs_value, ArrayOperand(target.name), index_value],
            info.dtype, array=target.name, access=access, line=assign.line,
        )
        self._record_array_recurrence(store)

    def _record_array_recurrence(self, store: Instruction) -> None:
        """Detect read-after-write recurrences like ``a[j] += a[j-1]``."""
        if not self._loop_stack or store.access is None or not store.access.is_affine:
            return
        loop = self._loop_stack[-1]
        value_operand = store.operands[0]
        if not isinstance(value_operand, ValueRef):
            return
        cone = self._backward_cone(value_operand.instr_id)
        for instr_id in cone:
            instr = self._instr_index[instr_id]
            if instr.opcode is not Opcode.LOAD or instr.array != store.array:
                continue
            if instr.access is None or not instr.access.is_affine:
                continue
            distance = self._access_distance(store.access, instr.access, loop.var)
            if distance is None:
                if instr.access != store.access:
                    continue
                # identical accesses: a cross-iteration dependence only exists
                # when the index does not advance with the loop variable
                # (e.g. ``a[0] += x[i]`` — an accumulation into a fixed cell).
                uses_loop_var = any(
                    loop.var in store.access.dim_map(dim)
                    for dim in range(store.access.ndims)
                )
                if uses_loop_var:
                    continue
                distance = 1
            if distance <= 0:
                continue
            chain = self._dataflow_chain(value_operand.instr_id, instr_id)
            chain = [instr_id] + chain + [store.instr_id]
            self.function.recurrences.append(
                Recurrence(
                    loop_label=loop.label,
                    distance=distance,
                    chain=tuple(dict.fromkeys(chain)),
                    kind="array",
                    array=store.array,
                )
            )

    @staticmethod
    def _access_distance(
        write: AffineAccess, read: AffineAccess, loop_var: str
    ) -> int | None:
        """Iteration distance between a write and a read access, if constant."""
        if write.ndims != read.ndims:
            return None
        total = 0
        for dim in range(write.ndims):
            write_map = write.dim_map(dim)
            read_map = read.dim_map(dim)
            if write_map != read_map:
                return None
            coeff = write_map.get(loop_var, 0)
            const_delta = write.dim_const(dim) - read.dim_const(dim)
            if const_delta == 0:
                continue
            if coeff == 0 or const_delta % coeff != 0:
                return None
            total += const_delta // coeff
        return total if total != 0 else None

    # ------------------------------------------------------------------ #
    # loops and conditionals
    # ------------------------------------------------------------------ #
    def _lower_for(self, stmt: ast.ForLoop) -> None:
        start = self._const_int(stmt.start)
        bound = self._const_int(stmt.bound)
        loop = Loop(
            label=stmt.label, var=stmt.var, start=start, bound=bound,
            step=stmt.step, cmp_op=stmt.cmp_op, line=stmt.line,
        )
        # header: phi (induction variable), icmp (exit test), br (backedge)
        phi = self._emit(
            Opcode.PHI, [ConstOperand(start, "i32")], "i32",
            name=stmt.var, line=stmt.line, collect=loop.header_instrs,
        )
        icmp = self._emit(
            Opcode.ICMP, [ValueRef(phi.instr_id), ConstOperand(bound, "i32")], "i1",
            line=stmt.line, collect=loop.header_instrs,
        )
        self._emit(
            Opcode.BR, [ValueRef(icmp.instr_id)], "void",
            line=stmt.line, collect=loop.header_instrs,
        )
        # latch: induction increment
        incr = self._emit(
            Opcode.ADD, [ValueRef(phi.instr_id), ConstOperand(stmt.step, "i32")],
            "i32", line=stmt.line, collect=loop.latch_instrs,
        )
        phi.operands.append(ValueRef(incr.instr_id))

        self._region.items.append(loop)
        self._loop_stack.append(loop)
        self._region_stack.append(loop.body)
        self._scopes.append({stmt.var: _Value(ValueRef(phi.instr_id), "i32")})
        if stmt.body is not None:
            for inner in stmt.body.statements:
                self._lower_stmt(inner)
        self._scopes.pop()
        self._region_stack.pop()
        self._loop_stack.pop()

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond_value, _ = self._lower_expr(stmt.cond)
        if not isinstance(cond_value, ValueRef):
            cmp = self._emit(
                Opcode.ICMP, [cond_value, ConstOperand(0, "i32")], "i1", line=stmt.line
            )
            cond_value = ValueRef(cmp.instr_id)
        if_region = IfRegion(cond_instr_id=cond_value.instr_id, line=stmt.line)
        self._region.items.append(if_region)

        # lower both branches while tracking scalar rebinds, then merge with
        # select (mux) instructions — mirrors what if-conversion does in HLS.
        before = self._snapshot_bindings()
        self._region_stack.append(if_region.then_region)
        self._scopes.append({})
        if stmt.then_body is not None:
            for inner in stmt.then_body.statements:
                self._lower_stmt(inner)
        self._scopes.pop()
        self._region_stack.pop()
        after_then = self._snapshot_bindings()
        self._restore_bindings(before)

        self._region_stack.append(if_region.else_region)
        self._scopes.append({})
        if stmt.else_body is not None:
            for inner in stmt.else_body.statements:
                self._lower_stmt(inner)
        self._scopes.pop()
        self._region_stack.pop()
        after_else = self._snapshot_bindings()
        self._restore_bindings(before)

        changed = {
            name for name in before
            if after_then.get(name) != before.get(name)
            or after_else.get(name) != before.get(name)
        }
        for name in sorted(changed):
            then_value = after_then.get(name, before[name])
            else_value = after_else.get(name, before[name])
            dtype = then_value.dtype
            select = self._emit(
                Opcode.SELECT,
                [ValueRef(if_region.cond_instr_id), then_value.operand, else_value.operand],
                dtype, line=stmt.line,
            )
            self._rebind(name, ValueRef(select.instr_id), dtype)

    def _snapshot_bindings(self) -> dict[str, _Value]:
        snapshot: dict[str, _Value] = {}
        for scope in self._scopes:
            snapshot.update(scope)
        return snapshot

    def _restore_bindings(self, snapshot: dict[str, _Value]) -> None:
        for scope in self._scopes:
            for name in list(scope):
                if name in snapshot:
                    scope[name] = snapshot[name]

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _lower_expr(self, expr: ast.Expr | None) -> tuple[Operand, str]:
        if expr is None:
            raise LoweringError("missing expression")
        if isinstance(expr, ast.IntLiteral):
            return ConstOperand(expr.value, "i32"), "i32"
        if isinstance(expr, ast.FloatLiteral):
            return ConstOperand(expr.value, "f32"), "f32"
        if isinstance(expr, ast.VarRef):
            value = self._lookup(expr.name)
            if value is None:
                raise LoweringError(f"use of undeclared variable {expr.name!r}")
            return value.operand, value.dtype
        if isinstance(expr, ast.ArrayRef):
            return self._lower_array_load(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.TernaryOp):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        raise LoweringError(f"unsupported expression {type(expr).__name__}")

    def _lower_array_load(self, expr: ast.ArrayRef) -> tuple[Operand, str]:
        info = self.function.arrays.get(expr.name)
        if info is None:
            raise LoweringError(f"load from undeclared array {expr.name!r}")
        access, index_value = self._lower_array_index(expr)
        load = self._emit(
            Opcode.LOAD, [ArrayOperand(expr.name), index_value], info.dtype,
            array=expr.name, access=access, line=expr.line,
        )
        return ValueRef(load.instr_id), info.dtype

    def _lower_array_index(self, ref: ast.ArrayRef) -> tuple[AffineAccess, Operand]:
        """Lower index expressions, emit a GEP and build the affine access map."""
        dims: list[tuple[tuple[str, int], ...]] = []
        consts: list[int] = []
        is_affine = True
        index_operands: list[Operand] = [ArrayOperand(ref.name)]
        for index_expr in ref.indices:
            value, _ = self._lower_expr(index_expr)
            index_operands.append(value)
            affine = self._analyse_affine(index_expr)
            if affine is None:
                is_affine = False
                dims.append(())
                consts.append(0)
            else:
                coeffs, const = affine
                dims.append(tuple(sorted(coeffs.items())))
                consts.append(const)
        gep = self._emit(
            Opcode.GEP, index_operands, "i32", array=ref.name, line=ref.line
        )
        access = AffineAccess(
            array=ref.name, dims=tuple(dims), consts=tuple(consts), is_affine=is_affine
        )
        gep.access = access
        return access, ValueRef(gep.instr_id)

    def _analyse_affine(self, expr: ast.Expr) -> tuple[dict[str, int], int] | None:
        """Return ({loop_var: coeff}, const) if ``expr`` is affine in loop vars."""
        loop_vars = {loop.var for loop in self._loop_stack}
        if isinstance(expr, ast.IntLiteral):
            return {}, expr.value
        if isinstance(expr, ast.VarRef):
            if expr.name in loop_vars:
                return {expr.name: 1}, 0
            return None
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            inner = self._analyse_affine(expr.operand)
            if inner is None:
                return None
            coeffs, const = inner
            return {var: -c for var, c in coeffs.items()}, -const
        if isinstance(expr, ast.BinaryOp):
            left = self._analyse_affine(expr.left)
            right = self._analyse_affine(expr.right)
            if expr.op == "+" and left and right:
                coeffs = dict(left[0])
                for var, coeff in right[0].items():
                    coeffs[var] = coeffs.get(var, 0) + coeff
                return coeffs, left[1] + right[1]
            if expr.op == "-" and left and right:
                coeffs = dict(left[0])
                for var, coeff in right[0].items():
                    coeffs[var] = coeffs.get(var, 0) - coeff
                return coeffs, left[1] - right[1]
            if expr.op == "*" and left and right:
                if not left[0]:
                    scale = left[1]
                    return {v: c * scale for v, c in right[0].items()}, right[1] * scale
                if not right[0]:
                    scale = right[1]
                    return {v: c * scale for v, c in left[0].items()}, left[1] * scale
                return None
        return None

    def _lower_unary(self, expr: ast.UnaryOp) -> tuple[Operand, str]:
        value, dtype = self._lower_expr(expr.operand)
        if expr.op == "-":
            if isinstance(value, ConstOperand):
                return ConstOperand(-value.value, dtype), dtype
            opcode = Opcode.FSUB if dtype == "f32" else Opcode.SUB
            instr = self._emit(
                opcode, [ConstOperand(0, dtype), value], dtype, line=expr.line
            )
            return ValueRef(instr.instr_id), dtype
        if expr.op == "!":
            instr = self._emit(
                Opcode.XOR, [value, ConstOperand(1, "i1")], "i1", line=expr.line
            )
            return ValueRef(instr.instr_id), "i1"
        raise LoweringError(f"unsupported unary operator {expr.op!r}")

    def _lower_binary(self, expr: ast.BinaryOp) -> tuple[Operand, str]:
        left, left_dtype = self._lower_expr(expr.left)
        right, right_dtype = self._lower_expr(expr.right)
        dtype = "f32" if "f32" in (left_dtype, right_dtype) else "i32"
        opcode = binop_opcode(expr.op, dtype)
        result_dtype = "i1" if opcode in (Opcode.ICMP, Opcode.FCMP) else dtype
        # constant folding keeps index arithmetic out of the graph, the same
        # way LLVM folds constants before PrograML sees them.
        if isinstance(left, ConstOperand) and isinstance(right, ConstOperand):
            folded = self._fold(expr.op, left.value, right.value)
            if folded is not None:
                return ConstOperand(folded, dtype), dtype
        instr = self._emit(opcode, [left, right], result_dtype, line=expr.line)
        return ValueRef(instr.instr_id), result_dtype

    @staticmethod
    def _fold(op: str, left: float, right: float) -> float | None:
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right if right else None
            if op == "%":
                return left % right if right else None
        except (ZeroDivisionError, TypeError):  # pragma: no cover - defensive
            return None
        return None

    def _lower_ternary(self, expr: ast.TernaryOp) -> tuple[Operand, str]:
        cond, _ = self._lower_expr(expr.cond)
        then_value, then_dtype = self._lower_expr(expr.then_expr)
        else_value, else_dtype = self._lower_expr(expr.else_expr)
        dtype = "f32" if "f32" in (then_dtype, else_dtype) else "i32"
        instr = self._emit(
            Opcode.SELECT, [cond, then_value, else_value], dtype, line=expr.line
        )
        return ValueRef(instr.instr_id), dtype

    def _lower_call(self, expr: ast.CallExpr) -> tuple[Operand, str]:
        operands = []
        for arg in expr.args:
            value, _ = self._lower_expr(arg)
            operands.append(value)
        dtype = "f32" if expr.name in _FLOAT_INTRINSICS else "i32"
        instr = self._emit(
            Opcode.CALL, operands, dtype, callee=expr.name, line=expr.line
        )
        return ValueRef(instr.instr_id), dtype

    # ------------------------------------------------------------------ #
    # data-flow helpers
    # ------------------------------------------------------------------ #
    def _backward_cone(self, instr_id: int) -> set[int]:
        """All instruction ids reachable backwards through data-flow edges."""
        cone: set[int] = set()
        stack = [instr_id]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            instr = self._instr_index.get(current)
            if instr is None:
                continue
            for operand in instr.value_operands:
                stack.append(operand.instr_id)
        return cone

    def _dataflow_chain(self, from_id: int, to_id: int) -> list[int]:
        """Instructions on data-flow paths from ``to_id`` up to ``from_id``.

        Returns an empty list if ``from_id`` does not depend on ``to_id``.
        The returned chain excludes ``to_id`` itself but includes ``from_id``.
        """
        memo: dict[int, bool] = {}

        def reaches(instr_id: int) -> bool:
            if instr_id == to_id:
                return True
            if instr_id in memo:
                return memo[instr_id]
            memo[instr_id] = False
            instr = self._instr_index.get(instr_id)
            if instr is None:
                return False
            result = any(reaches(op.instr_id) for op in instr.value_operands)
            memo[instr_id] = result
            return result

        if not reaches(from_id):
            return []
        chain = [
            instr_id for instr_id in self._backward_cone(from_id)
            if instr_id != to_id and reaches(instr_id)
        ]
        return sorted(chain)

    @staticmethod
    def _const_int(expr: ast.Expr | None) -> int:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(
            expr.operand, ast.IntLiteral
        ):
            return -expr.operand.value
        if isinstance(expr, ast.BinaryOp):
            left = IRBuilder._const_int(expr.left)
            right = IRBuilder._const_int(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right
        raise LoweringError(
            "loop bounds must be compile-time integer constants "
            f"(found {type(expr).__name__})"
        )


def lower_function(func_def: ast.FunctionDef) -> IRFunction:
    """Lower one parsed function definition to IR."""
    return IRBuilder(func_def).build()


def lower_source(source: str, name: str | None = None) -> IRFunction:
    """Parse HLS-C source and lower the top (or named) function to IR."""
    from repro.frontend.parser import parse_function

    return lower_function(parse_function(source, name))


__all__ = ["IRBuilder", "LoweringError", "lower_function", "lower_source"]
