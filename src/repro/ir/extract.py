"""Extraction of standalone loop kernels.

The paper builds the GNNp / GNNnp datasets from *sub-loops extracted from the
application source code*: each inner-hierarchy loop is treated as a small
kernel of its own, pushed through the complete flow to obtain its QoR labels.
This module produces that standalone kernel from a loop of a larger function.
"""

from __future__ import annotations

from repro.ir.structure import IRFunction, Loop, Region


def extract_loop_kernel(function: IRFunction, loop: Loop, name: str | None = None) -> IRFunction:
    """Create an :class:`IRFunction` whose body is just ``loop``.

    Arrays touched by the loop become array arguments; scalar parameters of
    the original function stay scalar parameters; values produced outside the
    loop (for example outer-loop induction variables) are treated as runtime
    scalar inputs of the extracted kernel.
    """
    kernel = IRFunction(name=name or f"{function.name}__{loop.label}")
    body_instrs = list(loop.body.walk_instructions())
    inner_ids = {instr.instr_id for instr in body_instrs}
    inner_ids |= {instr.instr_id for instr in loop.header_instrs}
    inner_ids |= {instr.instr_id for instr in loop.latch_instrs}

    touched_arrays = {instr.array for instr in body_instrs if instr.array}
    for array_name in sorted(touched_arrays):
        if array_name in function.arrays:
            kernel.arrays[array_name] = function.arrays[array_name]

    kernel.scalar_params = list(function.scalar_params)
    # values flowing in from outside the loop become scalar parameters
    external = sorted(
        {
            operand.instr_id
            for instr in body_instrs
            for operand in instr.value_operands
            if operand.instr_id not in inner_ids
        }
    )
    for instr_id in external:
        kernel.scalar_params.append((f"ext_{instr_id}", "i32"))

    kernel.body = Region(items=[loop])
    labels = {loop.label} | {sub.label for sub in loop.all_sub_loops()}
    kernel.recurrences = [
        rec for rec in function.recurrences if rec.loop_label in labels
    ]
    kernel.next_instr_id = function.next_instr_id
    return kernel


def loop_scalar_inputs(function: IRFunction, loop: Loop) -> list[int]:
    """Instruction ids of values defined outside ``loop`` but used inside."""
    body_instrs = list(loop.body.walk_instructions())
    inner_ids = {instr.instr_id for instr in body_instrs}
    inner_ids |= {instr.instr_id for instr in loop.header_instrs}
    inner_ids |= {instr.instr_id for instr in loop.latch_instrs}
    return sorted(
        {
            operand.instr_id
            for instr in body_instrs
            for operand in instr.value_operands
            if operand.instr_id not in inner_ids
        }
    )


__all__ = ["extract_loop_kernel", "loop_scalar_inputs"]
