"""Instruction-level intermediate representation.

The IR is a small LLVM-inspired SSA form: every :class:`Instruction` produces
at most one value, and operands reference other instructions, constants or
function parameters.  The opcode vocabulary deliberately matches the node
types the paper's CDFG uses (``add``, ``mul``, ``load``, ``store``, ``icmp``,
``br``, ``phi``, ``select``/mux, ...), because the opcode is the primary node
feature (``optype``) fed to the GNNs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Opcode(Enum):
    """Operation types recognised by the IR, CDFG and HLS operator library."""

    # integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "sdiv"
    REM = "srem"
    # floating point arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # logic / comparison / control
    ICMP = "icmp"
    FCMP = "fcmp"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    SELECT = "select"
    PHI = "phi"
    BR = "br"
    RET = "ret"
    # memory
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    ALLOCA = "alloca"
    # misc
    CAST = "cast"
    CALL = "call"

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_float(self) -> bool:
        return self in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FCMP)

    @property
    def is_arithmetic(self) -> bool:
        return self in (
            Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
            Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
        )

    @property
    def is_control(self) -> bool:
        return self in (Opcode.BR, Opcode.RET, Opcode.PHI)


# --------------------------------------------------------------------------- #
# operands
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Operand:
    """Base class for instruction operands."""


@dataclass(frozen=True)
class ValueRef(Operand):
    """Reference to the value produced by another instruction."""

    instr_id: int


@dataclass(frozen=True)
class ConstOperand(Operand):
    """A compile-time constant."""

    value: float
    dtype: str = "i32"


@dataclass(frozen=True)
class ParamOperand(Operand):
    """A scalar function parameter (runtime value, not an array)."""

    name: str
    dtype: str = "i32"


@dataclass(frozen=True)
class ArrayOperand(Operand):
    """An array base (function argument or local array)."""

    name: str


# --------------------------------------------------------------------------- #
# affine memory accesses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AffineAccess:
    """An affine array access ``sum(coeff_i * loopvar_i) + const`` per dim.

    ``dims`` holds one mapping per array dimension: ``{loop_var: coefficient}``.
    ``consts`` holds the constant offset of each dimension.  ``is_affine`` is
    False when the index could not be analysed (dynamic/indirect access), in
    which case the memory-port connection rule of the paper ("connect to all
    ports") applies.
    """

    array: str
    dims: tuple[tuple[tuple[str, int], ...], ...] = ()
    consts: tuple[int, ...] = ()
    is_affine: bool = True

    def dim_map(self, dim: int) -> dict[str, int]:
        """The ``{loop_var: coeff}`` mapping for dimension ``dim`` (0-based)."""
        if dim >= len(self.dims):
            return {}
        return dict(self.dims[dim])

    def dim_const(self, dim: int) -> int:
        if dim >= len(self.consts):
            return 0
        return self.consts[dim]

    @property
    def ndims(self) -> int:
        return max(len(self.dims), len(self.consts))


# --------------------------------------------------------------------------- #
# instructions
# --------------------------------------------------------------------------- #
@dataclass
class Instruction:
    """A single IR instruction.

    ``instr_id`` is unique within the function.  ``array`` and ``access`` are
    populated for memory instructions (``load``/``store``/``gep``).  ``callee``
    holds the intrinsic name for ``call`` instructions (``sqrtf``, ``expf``,
    ...), which the operator library maps to delay/resource entries.
    """

    instr_id: int
    opcode: Opcode
    dtype: str = "i32"
    operands: list[Operand] = field(default_factory=list)
    name: str = ""
    array: str = ""
    access: AffineAccess | None = None
    callee: str = ""
    line: int = 0

    @property
    def value_operands(self) -> list[ValueRef]:
        """Operands that reference other instructions (data-flow edges)."""
        return [op for op in self.operands if isinstance(op, ValueRef)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        extra = f" @{self.array}" if self.array else ""
        return f"%{self.instr_id} = {self.opcode.value}{extra} ({self.dtype})"


_INT_BINOP_OPCODES = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV,
    "%": Opcode.REM, "&&": Opcode.AND, "||": Opcode.OR,
}
_FLOAT_BINOP_OPCODES = {
    "+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL, "/": Opcode.FDIV,
}
_COMPARISON_OPS = {"<", "<=", ">", ">=", "==", "!="}


def binop_opcode(op: str, dtype: str) -> Opcode:
    """Map a source-level binary operator + operand type to an IR opcode."""
    if op in _COMPARISON_OPS:
        return Opcode.FCMP if dtype.startswith("f") else Opcode.ICMP
    if dtype.startswith("f") and op in _FLOAT_BINOP_OPCODES:
        return _FLOAT_BINOP_OPCODES[op]
    if op in _INT_BINOP_OPCODES:
        return _INT_BINOP_OPCODES[op]
    raise ValueError(f"unsupported binary operator {op!r} for dtype {dtype!r}")


__all__ = [
    "Opcode", "Operand", "ValueRef", "ConstOperand", "ParamOperand",
    "ArrayOperand", "AffineAccess", "Instruction", "binop_opcode",
]
