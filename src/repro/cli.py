"""Command-line interface.

Four subcommands cover the library's main workflows:

``repro-qor train``
    Generate ground-truth labels for a set of kernels (running the flow
    simulator over a sampled design space), train the hierarchical model and
    save it to an ``.npz`` file.

``repro-qor predict``
    Load a trained model and predict post-route QoR for a kernel under a
    pragma configuration given as ``loop=directive`` / ``array=spec`` options
    (or estimate it with the flow simulator via ``--flow``).

``repro-qor dse``
    Run model-guided design-space exploration on one kernel and report the
    Pareto front and ADRS against the exhaustive flow.  ``--workers N``
    shards the space across worker processes (each bootstrapped from the
    saved model) and merges the per-shard Pareto fronts deterministically;
    ``--shard-strategy`` picks how configurations are grouped.

``repro-qor serve``
    Keep one trained predictor resident and serve QoR predictions to many
    concurrent clients over newline-delimited JSON TCP.  Requests arriving
    within a short window are coalesced into shared batched inference
    passes (see :mod:`repro.serve`); SIGINT/SIGTERM drain gracefully.

Run ``python -m repro.cli --help`` for the full option list.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
    load_model,
    save_model,
)
from repro.dse import FunnelExplorer, ModelGuidedExplorer, exhaustive_ground_truth
from repro.dse.sharding import SHARD_STRATEGIES
from repro.dse.space import sample_design_space
from repro.frontend import ArrayDirective, LoopDirective, PartitionType, PragmaConfig
from repro.hls import run_full_flow
from repro.ir import lower_source
from repro.kernels import KERNEL_SOURCES, load_kernel


def _load_source_text(args: argparse.Namespace) -> str:
    """Resolve the HLS-C text for --kernel (registry) or --source (file)."""
    if getattr(args, "source", None):
        with open(args.source) as handle:
            return handle.read()
    if args.kernel not in KERNEL_SOURCES:
        raise SystemExit(
            f"unknown kernel {args.kernel!r}; available: {sorted(KERNEL_SOURCES)}"
        )
    return KERNEL_SOURCES[args.kernel]


def _load_function(args: argparse.Namespace):
    """Resolve --kernel (registry name) or --source (path to HLS-C file)."""
    if not getattr(args, "source", None) and args.kernel in KERNEL_SOURCES:
        return load_kernel(args.kernel)  # lru-cached lowering
    return lower_source(_load_source_text(args))


def parse_config(loop_specs: list[str], array_specs: list[str]) -> PragmaConfig:
    """Build a :class:`PragmaConfig` from CLI option strings.

    Loop options look like ``L0_0=pipeline``, ``L0=unroll:4``,
    ``L0=pipeline+unroll:2`` or ``L0=flatten``; array options look like
    ``A=cyclic:4:2`` (type : factor : dim).
    """
    loops: dict[str, LoopDirective] = {}
    for spec in loop_specs or []:
        label, _, directives = spec.partition("=")
        pipeline = flatten = False
        unroll = 1
        ii = 0
        for part in directives.split("+"):
            name, _, value = part.partition(":")
            name = name.strip().lower()
            if name == "pipeline":
                pipeline = True
                if value:
                    ii = int(value)
            elif name == "unroll":
                unroll = int(value) if value else 0
            elif name == "flatten":
                flatten = True
            elif name:
                raise SystemExit(f"unknown loop directive {name!r} in {spec!r}")
        loops[label.strip()] = LoopDirective(
            pipeline=pipeline, ii=ii, unroll_factor=unroll, flatten=flatten
        )
    arrays: dict[str, ArrayDirective] = {}
    for spec in array_specs or []:
        name, _, directives = spec.partition("=")
        parts = directives.split(":")
        partition_type = PartitionType(parts[0].strip().lower())
        factor = int(parts[1]) if len(parts) > 1 else 2
        dim = int(parts[2]) if len(parts) > 2 else 1
        arrays[name.strip()] = ArrayDirective(
            partition_type=partition_type, factor=factor, dim=dim
        )
    return PragmaConfig.from_dicts(loops, arrays)


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def cmd_train(args: argparse.Namespace) -> int:
    """``repro-qor train``: label a sampled space, train, save the model."""
    rng = np.random.default_rng(args.seed)
    kernels = {name: load_kernel(name) for name in args.kernels}
    configs = {
        name: sample_design_space(function, args.configs, rng=rng)
        for name, function in kernels.items()
    }
    print(f"generating labels for {sum(len(c) for c in configs.values())} designs...")
    instances = build_design_instances(kernels, configs)
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(
            conv_type=args.gnn, hidden=args.hidden,
            training=TrainingConfig(epochs=args.epochs, batch_size=args.batch_size),
        )
    )
    report = model.fit(instances, rng=rng)
    print("dataset sizes:", report.dataset_sizes)
    for name, scores in report.test_mape().items():
        print(name, {k: round(v, 1) for k, v in scores.items()})
    path = save_model(model, args.output)
    print(f"model saved to {path}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """``repro-qor predict``: QoR of one design point (model or flow)."""
    function = _load_function(args)
    config = parse_config(args.loop, args.array)
    result: dict[str, float]
    if args.flow or not args.model:
        qor = run_full_flow(function, config)
        result = qor.as_dict()
        source = "flow simulator"
    else:
        model = load_model(args.model)
        result = model.predict(function, config)
        source = f"model {args.model}"
    print(f"kernel={function.name}  config={config.describe()}  ({source})")
    print(json.dumps({k: round(v, 1) for k, v in result.items()}, indent=2))
    return 0


def _sharded_dse(args: argparse.Namespace, function, space) -> list:
    """Run the multi-worker sharded exploration; returns the true-QoR front.

    Mirrors the single-process model-guided branch of :func:`cmd_dse`: the
    predicted-Pareto selections come from :class:`ShardedExplorer`, and the
    reported front/ADRS use the ground-truth QoR of the selected designs.
    """
    from repro.dse import DesignSpace, ShardedExplorer
    from repro.dse.pareto import adrs

    design_space = DesignSpace.from_lowered(
        function, _load_source_text(args), space.configs
    )
    explorer = ShardedExplorer(
        args.model, num_workers=args.workers,
        shard_strategy=args.shard_strategy, warm_caches=args.warm_cache,
        work_stealing=args.work_stealing, precision=args.precision,
        dedup=not args.no_dedup,
        checkpoint=args.checkpoint, resume=args.resume,
        checkpoint_interval=args.checkpoint_interval,
        write_back=args.write_back,
    )
    result = explorer.explore(design_space)
    approx = space.true_front_of([point.key for point in result.front])
    exact = space.exact_front()
    # unlike the single-process "model time" (prediction only), the sharded
    # figure is end-to-end: spawn + per-worker model load + predict + merge
    mode = "work-stealing" if result.work_stealing else "fixed shards"
    dedup_note = (
        f", {result.num_classes} classes ({result.dedup_ratio:.2f}x dedup)"
        if result.dedup else ", dedup off"
    )
    print(f"model-guided ADRS: {adrs(exact, approx) * 100:.2f}%  "
          f"sharded over {result.num_workers} workers "
          f"({result.shard_strategy}, {mode}, {result.mp_context}{dedup_note})  "
          f"end-to-end {result.model_seconds:.2f}s "
          f"({result.configs_per_second:,.0f} effective configs/s)")
    for shard in result.shards:
        status = "failed" if shard.failed else "ok"
        recovered = (
            f", {shard.recovered} recovered in-process" if shard.recovered else ""
        )
        print(f"  shard {shard.shard_id}: {shard.completed}/{shard.num_configs} "
              f"configs ({status}{recovered})")
    print("fleet cache stats:", json.dumps(result.cache_stats, sort_keys=True))
    if result.checkpoint_path:
        resumed = (
            f"resumed {result.resumed_configs} configs "
            f"({result.rescored_configs} re-scored), " if args.resume else ""
        )
        print(f"checkpoint: {resumed}progress persisted to "
              f"{result.checkpoint_path}")
    if args.warm_cache and not result.write_back:
        print("note: worker warm caches are adopted read-only; add "
              "--write-back to bank what the fleet builds into the model file")
    if result.write_back:
        print("write-back:", json.dumps(result.write_back_stats, sort_keys=True))
    return approx


def cmd_dse(args: argparse.Namespace) -> int:
    """``repro-qor dse``: explore a kernel's space, report front + ADRS.

    With ``--workers N`` (N > 1) the sweep runs on the sharded multi-worker
    engine (:mod:`repro.dse.sharding`); otherwise the in-process batched
    (or ``--sequential``) explorer is used.  ``--funnel`` (or an explicit
    ``--funnel-keep K``) routes the sweep through the surrogate-first
    :class:`~repro.dse.explorer.FunnelExplorer`; ``--precision float32``
    runs whichever engine was picked in the cheap inference tier.
    """
    funnel = args.funnel or args.funnel_keep is not None
    if args.warm_cache and not args.model:
        raise SystemExit("--warm-cache requires --model (the caches are "
                         "persisted inside the model file)")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1 and not args.model:
        raise SystemExit("--workers requires --model (worker processes "
                         "bootstrap their predictors from the saved model)")
    if args.workers > 1 and args.sequential:
        raise SystemExit("--workers and --sequential are mutually exclusive")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint (the file the "
                         "interrupted sweep persisted its progress to)")
    if args.checkpoint and args.workers <= 1:
        raise SystemExit("--checkpoint requires --workers > 1 (checkpointing "
                         "is the sharded coordinator's crash protection)")
    if args.write_back and args.workers <= 1:
        raise SystemExit("--write-back requires --workers > 1 (the "
                         "single-process engine already saves caches back "
                         "via --warm-cache)")
    if funnel and not args.model:
        raise SystemExit("--funnel requires --model (the surrogate is "
                         "distilled from the model's own predictions)")
    if funnel and (args.sequential or args.workers > 1):
        raise SystemExit("--funnel runs on the in-process batched engine; "
                         "it cannot combine with --sequential or --workers")
    function = _load_function(args)
    rng = np.random.default_rng(args.seed)
    configs = sample_design_space(function, args.configs, rng=rng)
    if not args.no_dedup:
        # effective-directive equivalence summary: how much of the sampled
        # space collapses once pragmas are rewritten into canonical form
        from repro.dse import DesignSpace

        deduped = DesignSpace.from_lowered(
            function, _load_source_text(args), configs
        ).dedup()
        print(f"design space: {len(configs)} configurations, "
              f"{deduped.num_classes} effective classes "
              f"({deduped.dedup_ratio:.2f}x dedup)")
    print(f"evaluating {len(configs)} configurations with the ground-truth flow...")
    space = exhaustive_ground_truth(function, configs)
    print(f"exhaustive (simulated) flow time: {space.simulated_tool_seconds/3600:.1f} h")
    if args.model and args.workers > 1:
        front = _sharded_dse(args, function, space)
    elif args.model:
        # --warm-cache: adopt the persisted construction cache / prediction
        # memo saved alongside the model, and write the (now warmer) caches
        # back after the sweep, so successive service runs start warm
        if args.warm_cache and args.sequential:
            print("note: --sequential scores configs through the stateless "
                  "per-config path, which does not consult the warm caches")
        model = load_model(
            args.model, warm_caches=args.warm_cache, precision=args.precision
        )
        if funnel:
            explorer = FunnelExplorer(
                model.predict_batch, keep=args.funnel_keep,
                cache_stats_fn=model.cache_stats,
            )
            result = explorer.explore(function, space)
            budget = "adaptive" if result.adaptive_keep else "fixed"
            print(f"funnel ADRS: {result.adrs_percent:.2f}%  "
                  f"model time {result.model_seconds:.2f}s "
                  f"({result.configs_per_second:,.0f} effective configs/s, "
                  f"{args.precision})")
            print(f"  full-model scored {result.full_model_configs}/"
                  f"{result.num_configs} configs ({result.configs_saved} "
                  f"saved; {budget} budget {result.keep}, "
                  f"{result.rounds} surrogate rounds, "
                  f"surrogate time {result.surrogate_seconds:.2f}s)")
        else:
            explorer = ModelGuidedExplorer(
                model.predict, name="hierarchical",
                predict_batch_fn=None if args.sequential else model.predict_batch,
                cache_stats_fn=model.cache_stats,
            )
            result = explorer.explore(function, space)
            mode = f"batched, {args.precision}" if result.batched else "sequential"
            print(f"model-guided ADRS: {result.adrs_percent:.2f}%  "
                  f"model time {result.model_seconds:.2f}s ({mode}, "
                  f"{result.configs_per_second:,.0f} configs/s)  "
                  f"speedup {result.speedup:,.0f}x")
        if args.warm_cache:
            stats = result.cache_stats
            print("cache stats:", json.dumps(stats, sort_keys=True))
            save_model(model, args.model, warm_caches=True)
            print(f"warm caches saved back to {args.model} "
                  f"({stats.get('memoized_predictions', 0)} memoized designs)")
        front = result.approx_front
    else:
        front = space.exact_front()
    print("Pareto front (latency, area):")
    for point in sorted(front, key=lambda p: p.objectives[0]):
        print(f"  {point.objectives[0]:12.0f}  {point.objectives[1]:12.0f}  {point.key}")
    return 0


async def _serve_main(args: argparse.Namespace) -> int:
    """Async body of ``repro-qor serve``: run until signalled, then drain."""
    import signal

    from repro.core.predictor import QoRPredictor
    from repro.serve import QoRServer

    predictor = QoRPredictor.load(
        args.model, warm_caches=args.warm_cache, precision=args.precision
    )
    from repro.serve.server import MAX_LINE_BYTES

    server = QoRServer(
        predictor,
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        max_line_bytes=(
            args.max_line_bytes if args.max_line_bytes else MAX_LINE_BYTES
        ),
    )
    await server.start()
    host, port = server.address
    # parseable readiness line: harnesses wait for it before connecting
    print(f"serving on {host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    try:
        await server.serve_until(stop)
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(signum)
    stats = server.batcher.stats
    print(
        f"drained: {server.requests} requests, {stats.batches} batches, "
        f"{stats.coalesced_batches} coalesced",
        flush=True,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro-qor serve``: the resident prediction daemon."""
    if args.batch_window_ms < 0:
        raise SystemExit(
            f"--batch-window-ms must be >= 0, got {args.batch_window_ms}"
        )
    if args.max_batch < 1:
        raise SystemExit(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_pending < 1:
        raise SystemExit(f"--max-pending must be >= 1, got {args.max_pending}")
    if args.idle_timeout < 0:
        raise SystemExit(
            f"--idle-timeout must be >= 0, got {args.idle_timeout}"
        )
    if args.max_line_bytes is not None and args.max_line_bytes < 1024:
        raise SystemExit(
            f"--max-line-bytes must be >= 1024, got {args.max_line_bytes}"
        )
    return asyncio.run(_serve_main(args))


# --------------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The ``repro-qor`` argument parser (train / predict / dse)."""
    parser = argparse.ArgumentParser(
        prog="repro-qor",
        description="Hierarchical source-to-post-route QoR prediction for HLS",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train and save a hierarchical model")
    train.add_argument("--kernels", nargs="+", default=["gemm", "atax", "gesummv"],
                       help="registry kernels to train on")
    train.add_argument("--configs", type=int, default=24,
                       help="design points sampled per kernel")
    train.add_argument("--epochs", type=int, default=40)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--hidden", type=int, default=32)
    train.add_argument("--gnn", default="graphsage",
                       choices=["gcn", "gat", "graphsage", "transformer", "pna"])
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", default="qor_model.npz")
    train.set_defaults(func=cmd_train)

    predict = subparsers.add_parser("predict", help="predict QoR for a design point")
    predict.add_argument("--kernel", default="gemm", help="registry kernel name")
    predict.add_argument("--source", help="path to an HLS-C source file")
    predict.add_argument("--model", help="path to a saved model (.npz)")
    predict.add_argument("--flow", action="store_true",
                         help="use the flow simulator instead of a model")
    predict.add_argument("--loop", action="append", default=[],
                         help="loop directive, e.g. L0_0=pipeline+unroll:2")
    predict.add_argument("--array", action="append", default=[],
                         help="array partition, e.g. A=cyclic:4:2")
    predict.set_defaults(func=cmd_predict)

    dse = subparsers.add_parser("dse", help="explore a kernel's design space")
    dse.add_argument("--kernel", default="bicg")
    dse.add_argument("--source", help="path to an HLS-C source file")
    dse.add_argument("--model", help="saved model to guide the exploration")
    dse.add_argument("--configs", type=int, default=100)
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--sequential", action="store_true",
                     help="score configurations one by one instead of using "
                          "the batched cross-config inference engine")
    dse.add_argument("--warm-cache", action="store_true",
                     help="start from the construction cache / prediction "
                          "memo persisted in the model file and save the "
                          "warmed caches back after the sweep (with "
                          "--workers the caches are adopted read-only)")
    dse.add_argument("--workers", type=int, default=1,
                     help="worker processes for the sharded explorer; with "
                          "N > 1 the space is partitioned, each shard is "
                          "scored by its own process bootstrapped from "
                          "--model, and the per-shard Pareto fronts are "
                          "merged deterministically")
    dse.add_argument("--shard-strategy", default="pragma-locality",
                     choices=list(SHARD_STRATEGIES),
                     help="how to partition the space across workers: "
                          "pragma-locality groups configurations sharing "
                          "graph-construction work, round-robin deals them "
                          "out blindly")
    dse.add_argument("--precision", default="float64",
                     choices=["float64", "float32"],
                     help="inference tier for the model-guided sweep: float64 "
                          "is the bit-exact reference, float32 casts the "
                          "weights once for a faster sweep (predictions agree "
                          "within a relaxed bound)")
    dse.add_argument("--funnel", action="store_true",
                     help="surrogate-first funnel: a cheap distilled surrogate "
                          "scores the whole space and only Pareto-plausible "
                          "candidates are scored by the full model")
    dse.add_argument("--funnel-keep", type=int, default=None, metavar="K",
                     help="fixed full-model budget for --funnel (default: "
                          "adaptive, max(96, half the space)); implies "
                          "--funnel")
    dse.add_argument("--no-dedup", action="store_true",
                     help="score every raw configuration instead of one "
                          "canonical representative per effective-directive "
                          "equivalence class; also hides the class-count "
                          "summary (dedup is on by default and never "
                          "changes the front)")
    dse.add_argument("--work-stealing", action="store_true",
                     help="pull shard chunks from one shared queue instead "
                          "of fixing each worker's assignment, so early-"
                          "finishing workers steal the remaining chunks "
                          "(front is identical — the Pareto merge is "
                          "partition-invariant)")
    dse.add_argument("--checkpoint", metavar="PATH",
                     help="persist sharded-sweep progress to this file "
                          "(atomic, digest-sealed) so a killed fleet can be "
                          "restarted with --resume; requires --workers > 1")
    dse.add_argument("--resume", action="store_true",
                     help="fold the checkpoint at --checkpoint back in and "
                          "score only what it does not cover; the resumed "
                          "front is bit-equal to an uninterrupted sweep's "
                          "(an unusable checkpoint is discarded with a "
                          "warning and the sweep restarts from zero)")
    dse.add_argument("--checkpoint-interval", type=int, default=64,
                     metavar="N",
                     help="newly scored configurations between periodic "
                          "checkpoint writes (default 64)")
    dse.add_argument("--write-back", action="store_true",
                     help="merge the warm-cache entries the workers newly "
                          "built back into the model file after the sweep, "
                          "so the next --warm-cache fleet over the same "
                          "space does zero cold graph builds; requires "
                          "--workers > 1")
    dse.set_defaults(func=cmd_dse)

    serve = subparsers.add_parser(
        "serve", help="serve QoR predictions from a resident model over TCP"
    )
    serve.add_argument("--model", required=True,
                       help="saved model (.npz) to keep resident")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port to listen on (0 picks a free port, "
                            "reported on the 'serving on HOST:PORT' line)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="cross-request coalescing window: how long the "
                            "first request of a batch waits for company "
                            "before the shared inference pass runs")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="flush a batch early once this many "
                            "configurations have accumulated")
    serve.add_argument("--max-pending", type=int, default=4096,
                       help="admission-control bound: total configurations "
                            "allowed in flight before new requests are "
                            "rejected with an 'overloaded' error")
    serve.add_argument("--warm-cache", action="store_true",
                       help="hydrate the construction cache / prediction "
                            "memo persisted in the model file, so the first "
                            "requests are served from warm state")
    serve.add_argument("--precision", default="float64",
                       choices=["float64", "float32"],
                       help="inference tier the resident model serves at")
    serve.add_argument("--idle-timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="close a connection after this many seconds of "
                            "silence with nothing in flight (0 disables; "
                            "connections waiting on their own requests are "
                            "never culled)")
    serve.add_argument("--max-line-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="reject request lines larger than this with a "
                            "structured bad-request error instead of "
                            "silently dropping the connection (default 8 MiB)")
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    A ``KeyboardInterrupt`` that escapes a subcommand exits with the
    conventional 130 (128 + SIGINT) instead of a traceback; ``serve``
    installs its own SIGINT handler and drains gracefully, so only an
    interrupt outside the drain path (e.g. during model load, or in the
    long-running ``train``/``dse`` commands) takes this route.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
