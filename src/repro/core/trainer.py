"""Generic training loop for multi-target graph regression models.

Used by every learned model in the project (the hierarchical ``GNNp`` /
``GNNnp`` / ``GNNg`` models as well as the flat GNN baselines): fits
per-target scalers, runs mini-batched Adam with gradient clipping, tracks
validation MAPE and keeps the best parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.flags import normalize_precision, precision, reference_encoding_active
from repro.nn.autograd import PRECISION_DTYPES
from repro.nn.data import (
    Batch,
    BatchCache,
    FeatureScaler,
    GraphSample,
    OptypeEncoder,
    TargetScaler,
    chunk_by_node_budget,
    iterate_minibatches,
    make_batch,
)
from repro.nn.losses import mape, mse_loss
from repro.nn.optim import Adam


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training run.

    ``regroup_each_epoch`` controls minibatch membership across epochs: by
    default the training set is partitioned into minibatches once (with the
    seeded shuffle) and only the *order* of the minibatches is reshuffled per
    epoch, which lets the trainer's :class:`~repro.nn.data.BatchCache` replay
    each minibatch's assembled disjoint union from epoch 2 onwards.  Setting
    it to ``True`` restores per-epoch regrouping (fresh membership every
    epoch); the batch cache then misses cleanly on the new groupings.

    Note that the default changes the *training trajectory* relative to
    per-epoch regrouping: both are seeded-shuffle protocols, but the
    grouping stream differs, so converged weights and per-cell MAPEs move
    (in both directions) within the guarded thresholds.  Inference is
    unaffected either way.
    """

    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 3e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    patience: int = 15
    seed: int = 0
    verbose: bool = False
    regroup_each_epoch: bool = False


@dataclass
class TrainingResult:
    """Summary of a completed training run."""

    best_epoch: int = 0
    train_losses: list[float] = field(default_factory=list)
    validation_mape: dict[str, float] = field(default_factory=dict)
    test_mape: dict[str, float] = field(default_factory=dict)
    #: wall time of each epoch (minibatch passes + validation monitoring)
    epoch_seconds: list[float] = field(default_factory=list)


class GraphRegressorTrainer:
    """Trains a model whose ``forward(batch)`` returns ``{target: Tensor}``."""

    def __init__(
        self,
        model,
        target_names: tuple[str, ...],
        config: TrainingConfig | None = None,
    ):
        self.model = model
        self.target_names = tuple(target_names)
        self.config = config or TrainingConfig()
        self.encoder: OptypeEncoder | None = None
        self.feature_scaler: FeatureScaler | None = None
        self.target_scalers: dict[str, TargetScaler] = {}
        #: per-sample encoded rows: (sample, rows, totals) triples on the
        #: reference path, (sample, numeric rows, totals, codes) on the
        #: vectorized path — each layout validates its own entries
        self._encoded_cache: dict[int, tuple] = {}
        self._batch_cache = BatchCache()
        #: active inference tier; training always runs float64
        self.precision = "float64"
        #: float64 reference weights, kept while a cheaper tier is active so
        #: switching back (and serialization) is lossless
        self._master_state: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # data preparation
    # ------------------------------------------------------------------ #
    def clear_caches(self) -> None:
        """Drop the encoded-feature and assembled-batch caches."""
        self._encoded_cache.clear()
        self._batch_cache.clear()

    def master_state(self) -> dict[str, np.ndarray]:
        """The float64 reference weights, regardless of the active tier."""
        if self._master_state is not None:
            return self._master_state
        return self.model.state_dict()

    def set_precision(self, value: str) -> None:
        """Switch the inference tier, casting the model weights in place.

        Entering ``float32`` snapshots the float64 weights first (the
        *master* copy), so switching back to ``float64`` — and serializing
        the trainer — is bit-exact.  A no-op when the tier is unchanged.
        """
        value = normalize_precision(value)
        if value == self.precision:
            return
        if value == "float64":
            if self._master_state is not None:
                self.model.load_state_dict(self._master_state)
                self._master_state = None
        else:
            self._master_state = self.master_state()
            self.model.load_state_dict(
                self._master_state, dtype=PRECISION_DTYPES[value]
            )
        self.precision = value

    def fit_preprocessing(self, samples: list[GraphSample]) -> None:
        """Fit the optype vocabulary, feature scaler and target scalers."""
        self.clear_caches()
        self.encoder = OptypeEncoder().fit([s.optypes for s in samples])
        self.feature_scaler = FeatureScaler().fit([s.features for s in samples])
        for name in self.target_names:
            values = np.array([s.targets.get(name, 0.0) for s in samples])
            self.target_scalers[name] = TargetScaler().fit(values)

    def input_dim(self, samples: list[GraphSample]) -> int:
        """Width of the encoded node-feature matrix."""
        if self.encoder is None:
            self.fit_preprocessing(samples)
        numeric = samples[0].features.shape[1] if samples else 0
        return self.encoder.dim + numeric

    def prepare_batch(
        self, samples: list[GraphSample], *, cache: bool = True
    ) -> Batch:
        """Assemble (or replay) the disjoint union of ``samples``.

        With ``cache`` (the default) the :class:`~repro.nn.data.BatchCache`
        is consulted first: an identical grouping of the exact same sample
        objects — a training minibatch replayed in a later epoch, or the
        validation set monitored every epoch — returns the already-assembled
        union without touching the encoder at all.  One-shot groupings that
        can never recur (e.g. node-budgeted inference chunks over fresh
        samples) pass ``cache=False`` so they don't churn the cache.
        """
        if self.encoder is None or self.feature_scaler is None:
            raise RuntimeError("call fit_preprocessing before prepare_batch")
        use_cache = cache and not reference_encoding_active()
        if use_cache:
            cached = self._batch_cache.get(samples)
            if cached is not None:
                return cached
        batch = make_batch(
            samples, self.encoder, self.feature_scaler, self.target_names,
            encoded_cache=self._encoded_cache,
        )
        if use_cache:
            self._batch_cache.put(samples, batch)
        return batch

    def _scaled_targets(self, batch: Batch) -> dict[str, np.ndarray]:
        return {
            name: self.target_scalers[name].transform(batch.targets[name]).reshape(-1, 1)
            for name in self.target_names
        }

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train(
        self,
        train_samples: list[GraphSample],
        validation_samples: list[GraphSample] | None = None,
        test_samples: list[GraphSample] | None = None,
    ) -> TrainingResult:
        if not train_samples:
            raise ValueError("cannot train on an empty dataset")
        # training always runs the float64 reference tier
        self.set_precision("float64")
        if self.encoder is None:
            self.fit_preprocessing(train_samples)
        config = self.config
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(
            self.model.parameters(), lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        result = TrainingResult()
        best_score = float("inf")
        best_state = self.model.state_dict()
        epochs_without_improvement = 0
        # minibatch membership: fixed after the first (seeded-shuffle)
        # partition unless regroup_each_epoch asks for fresh groupings —
        # stable groups are what makes the epoch-level batch cache replay
        # each union instead of reassembling it every epoch
        groups: list[list[GraphSample]] = []
        for epoch in range(config.epochs):
            epoch_start = time.perf_counter()
            if not groups or config.regroup_each_epoch:
                groups = list(iterate_minibatches(
                    train_samples, config.batch_size, rng=rng, shuffle=True
                ))
            elif epoch:
                rng.shuffle(groups)
            self.model.train()
            epoch_loss = 0.0
            num_batches = 0
            for chunk in groups:
                batch = self.prepare_batch(chunk)
                targets = self._scaled_targets(batch)
                optimizer.zero_grad()
                outputs = self.model(batch)
                loss = None
                for name in self.target_names:
                    term = mse_loss(outputs[name], targets[name])
                    loss = term if loss is None else loss + term
                loss.backward()
                optimizer.clip_gradients(config.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
            result.train_losses.append(epoch_loss / max(1, num_batches))
            # validation-driven early stopping
            monitor = validation_samples or train_samples
            scores = self.evaluate(monitor)
            mean_score = float(np.mean(list(scores.values())))
            result.epoch_seconds.append(time.perf_counter() - epoch_start)
            if config.verbose:  # pragma: no cover - informational
                print(
                    f"epoch {epoch:3d} loss {result.train_losses[-1]:.4f} "
                    f"val-MAPE {mean_score:.2f}%"
                )
            if mean_score < best_score - 1e-6:
                best_score = mean_score
                best_state = self.model.state_dict()
                result.best_epoch = epoch
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= config.patience:
                    break
        self.model.load_state_dict(best_state)
        result.validation_mape = self.evaluate(validation_samples or train_samples)
        if test_samples:
            result.test_mape = self.evaluate(test_samples)
        return result

    # ------------------------------------------------------------------ #
    # inference / evaluation
    # ------------------------------------------------------------------ #
    def predict(
        self,
        samples: list[GraphSample],
        *,
        max_batch_nodes: int | None = None,
        cache: bool = True,
    ) -> dict[str, np.ndarray]:
        """Predictions in original (unscaled) units for each target.

        All samples run through one disjoint-union forward pass;
        ``max_batch_nodes`` bounds the union size (samples are split into
        successive forward passes once the budget is exceeded), keeping
        whole-design-space batches memory-safe.  ``cache=False`` keeps
        one-shot groupings that can never recur out of the batch cache;
        budget-chunked calls never cache regardless (the batched DSE engine
        hands in fresh groupings every sweep).
        """
        if not samples:
            return {name: np.zeros(0) for name in self.target_names}
        self.model.eval()
        if max_batch_nodes is None:
            chunks = [samples]
        else:
            chunks = chunk_by_node_budget(samples, max_batch_nodes)
        collected: list[dict[str, np.ndarray]] = []
        # batches are encoded in the trainer's tier so a float32 model gets
        # float32 unions (float64 — the default — is bit-identical to before)
        with precision(self.precision):
            for chunk in chunks:
                batch = self.prepare_batch(
                    chunk, cache=cache and max_batch_nodes is None
                )
                outputs = self.model(batch)
                collected.append(
                    {
                        name: outputs[name].numpy().reshape(-1)
                        for name in self.target_names
                    }
                )
        return {
            name: self.target_scalers[name].inverse(
                np.concatenate([part[name] for part in collected])
            )
            for name in self.target_names
        }

    def evaluate(self, samples: list[GraphSample]) -> dict[str, float]:
        """Per-target MAPE (%) over ``samples``."""
        if not samples:
            return {name: 0.0 for name in self.target_names}
        predictions = self.predict(samples)
        scores = {}
        for name in self.target_names:
            truth = np.array([s.targets.get(name, 0.0) for s in samples])
            scores[name] = mape(predictions[name], truth)
        return scores


__all__ = ["TrainingConfig", "TrainingResult", "GraphRegressorTrainer"]
