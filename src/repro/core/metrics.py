"""QoR prediction quality metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.losses import mape, rmse


def qor_mape_table(
    predictions: dict[str, np.ndarray], truths: dict[str, np.ndarray]
) -> dict[str, float]:
    """Per-metric MAPE (%) — one row of Table III."""
    return {
        name: mape(predictions[name], truths[name])
        for name in predictions
        if name in truths
    }


def relative_error(prediction: float, truth: float, epsilon: float = 1e-9) -> float:
    """Absolute relative error of a single prediction (fraction, not %)."""
    return abs(prediction - truth) / max(abs(truth), epsilon)


def summarize_errors(errors: list[float]) -> dict[str, float]:
    """Mean / median / p90 / max of a list of relative errors (%)."""
    if not errors:
        return {"mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0}
    array = np.asarray(errors, dtype=np.float64) * 100.0
    return {
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "p90": float(np.percentile(array, 90)),
        "max": float(array.max()),
    }


__all__ = ["mape", "rmse", "qor_mape_table", "relative_error", "summarize_errors"]
