"""Source-level convenience API.

``QoRPredictor`` wraps :class:`~repro.core.hierarchical.HierarchicalQoRModel`
with the front-end so that users can go straight from HLS-C source text and a
pragma configuration to a post-route QoR estimate, which is the headline
usage mode of the paper ("source-to-post-route prediction").
"""

from __future__ import annotations

from pathlib import Path

from repro.core.dataset import DesignInstance, build_design_instances
from repro.core.hierarchical import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    HierarchicalTrainingReport,
)
from repro.core.lru import LRUDict
from repro.frontend.pragmas import PragmaConfig
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.builder import lower_source
from repro.ir.structure import IRFunction


class QoRPredictor:
    """End-to-end predictor: HLS-C source + pragmas -> post-route QoR."""

    #: default bound of the source-lowering memo.  Lowered IR trees are
    #: heavy (they anchor the graph cache's per-object memos too), so a
    #: resident service fed unboundedly many distinct sources must recycle
    #: them; all cross-request caches key by *content* fingerprint, so a
    #: re-lowered source hits the same warm state as the evicted one.
    LOWERED_SOURCE_CAPACITY = 256

    def __init__(
        self,
        config: HierarchicalModelConfig | None = None,
        *,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        lowered_cache_capacity: int | None = LOWERED_SOURCE_CAPACITY,
    ):
        self.library = library
        self.model = HierarchicalQoRModel(config, library=library)
        self._functions: dict[str, IRFunction] = {}
        # lowering memo: the model's per-object fast paths key by function
        # object, so repeated predictions from identical source text should
        # resolve to the same IRFunction; LRU-bounded because a long-lived
        # server would otherwise pin every source it ever saw
        self._lowered_sources: LRUDict[str, IRFunction] = LRUDict(
            lowered_cache_capacity
        )

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit_sources(
        self,
        sources: dict[str, str],
        configs_per_kernel: dict[str, list[PragmaConfig]],
    ) -> HierarchicalTrainingReport:
        """Train from raw source strings (runs the ground-truth flow)."""
        kernels = {name: lower_source(text) for name, text in sources.items()}
        self._functions.update(kernels)
        instances = build_design_instances(
            kernels, configs_per_kernel, library=self.library
        )
        return self.model.fit(instances)

    def fit_instances(self, instances: list[DesignInstance]) -> HierarchicalTrainingReport:
        """Train from pre-built design instances (labels already computed)."""
        for instance in instances:
            self._functions.setdefault(instance.kernel, instance.function)
        return self.model.fit(instances)

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def clear_inference_caches(self) -> None:
        """Drop the lowering memo and the model's inference caches."""
        self._lowered_sources.clear()
        self.model.clear_inference_caches()

    def _lowered(self, source: str) -> IRFunction:
        function = self._lowered_sources.get(source)
        if function is None:
            function = lower_source(source)
            self._lowered_sources[source] = function
        return function

    def predict_source(
        self, source: str, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        """Predict QoR for source text under a pragma configuration."""
        return self.model.predict(self._lowered(source), config)

    def predict(
        self, function: IRFunction, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        """Predict QoR for an already-lowered kernel."""
        return self.model.predict(function, config)

    def predict_batch(
        self,
        function: IRFunction,
        configs: list[PragmaConfig | None],
        *,
        precision: str | None = None,
    ) -> list[dict[str, float]]:
        """Predict QoR for a whole design space in batched forward passes.

        ``precision`` (``"float32"``/``"float64"``) switches the inference
        tier before the sweep; ``None`` keeps the model's active tier.
        """
        return self.model.predict_batch(function, configs, precision=precision)

    def canonical_signature(
        self, source: str, config: PragmaConfig | None
    ) -> str:
        """Canonical (effective-directive) signature of a design request.

        Two requests with this signature are guaranteed bit-identical
        predictions: the signature is the pragma key of the *canonicalized*
        configuration — the single key under which the construction cache,
        the prediction memo and the warm-cache blobs store the design.  The
        serve-layer micro-batcher uses it to score duplicate submissions
        (same source, HLS-equivalent pragmas) once per batch.
        """
        from repro.frontend.pragmas import PragmaConfig as _PragmaConfig
        from repro.hls.directives import canonicalize_config

        function = self._lowered(source)
        resolved = config if config is not None else _PragmaConfig()
        return canonicalize_config(function, resolved).key()

    def predict_source_batch(
        self,
        source: str,
        configs: list[PragmaConfig | None],
        *,
        precision: str | None = None,
    ) -> list[dict[str, float]]:
        """Batched prediction straight from HLS-C source text."""
        return self.model.predict_batch(
            self._lowered(source), configs, precision=precision
        )

    # ------------------------------------------------------------------ #
    # persistence (warm-start workflow)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path, *, warm_caches: bool = True) -> Path:
        """Persist the model — and, by default, its warm inference caches.

        Run the sweeps you expect to serve, then ``save``: a predictor
        restored with :meth:`load` answers those sweeps straight from the
        persisted prediction memo (no graph construction at all).
        """
        from repro.core.serialization import save_model

        return save_model(self.model, path, warm_caches=warm_caches)

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        warm_caches: bool = True,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        precision: str = "float64",
    ) -> "QoRPredictor":
        """Restore a predictor saved with :meth:`save` (warm by default).

        ``precision="float32"`` casts the restored weights once into the
        cheap inference tier (the archive itself always stores float64).
        """
        from repro.core.serialization import load_model

        predictor = cls(library=library)
        predictor.model = load_model(
            path, warm_caches=warm_caches, precision=precision
        )
        predictor.model.library = library
        return predictor

    def cache_stats(self) -> dict[str, int]:
        """Inference-cache counters of this predictor, across every layer.

        Returns the construction-cache hit/miss counters (``unit_hits``,
        ``unit_misses``, ``outer_hits``, ``outer_misses``, plus the
        ``persisted_*_loads`` hydrated from a warm-cache blob),
        ``memoized_predictions``, the prediction-memo size, and
        ``outer_templates``, the number of outer-graph sample templates the
        vectorized encoding pipeline has captured (each one lets every
        further configuration with that outer pragma delta skip graph
        copying and re-extraction entirely).  The encoding/message-passing
        caches are surfaced too: ``scatter_index_*`` (process-wide flat
        scatter indices, CSR operators and segment counts),
        ``edge_cache_*`` (process-wide self-loop/degree/norm memos),
        ``batch_cache_*`` (epoch-level assembled-union replay, summed over
        the model's trainers) and ``encoded_samples`` (per-sample encoded
        rows pinned by those trainers).  Model-level counters reset on
        :meth:`clear_inference_caches` and on retraining; the process-wide
        scatter/edge counters are cumulative for the process.  On top of the
        model's counters, the predictor adds its source-lowering memo:
        ``lowered_sources`` (entries held) and ``lowered_source_evictions``
        (sources recycled by the LRU bound — see
        :attr:`LOWERED_SOURCE_CAPACITY`).
        """
        stats = self.model.cache_stats()
        stats["lowered_sources"] = len(self._lowered_sources)
        stats["lowered_source_evictions"] = self._lowered_sources.evictions
        return stats

    @staticmethod
    def aggregate_cache_stats(per_worker: list[dict]) -> dict[str, int]:
        """Sum per-worker :meth:`cache_stats` dicts into one fleet view.

        The sharded DSE coordinator collects one counter dict per worker
        process (plus one for in-process recovery work); summing them gives
        the fleet-wide construction/memoization picture — e.g. how much
        graph construction the pragma-locality shard strategy avoided.
        Missing keys count as zero, so reports from different cache versions
        aggregate without error.
        """
        totals: dict[str, int] = {}
        for stats in per_worker:
            for name, value in stats.items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals


__all__ = ["QoRPredictor"]
