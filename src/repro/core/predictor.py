"""Source-level convenience API.

``QoRPredictor`` wraps :class:`~repro.core.hierarchical.HierarchicalQoRModel`
with the front-end so that users can go straight from HLS-C source text and a
pragma configuration to a post-route QoR estimate, which is the headline
usage mode of the paper ("source-to-post-route prediction").
"""

from __future__ import annotations

from repro.core.dataset import DesignInstance, build_design_instances
from repro.core.hierarchical import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    HierarchicalTrainingReport,
)
from repro.frontend.pragmas import PragmaConfig
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.builder import lower_source
from repro.ir.structure import IRFunction


class QoRPredictor:
    """End-to-end predictor: HLS-C source + pragmas -> post-route QoR."""

    def __init__(
        self,
        config: HierarchicalModelConfig | None = None,
        *,
        library: OperatorLibrary = DEFAULT_LIBRARY,
    ):
        self.library = library
        self.model = HierarchicalQoRModel(config, library=library)
        self._functions: dict[str, IRFunction] = {}

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit_sources(
        self,
        sources: dict[str, str],
        configs_per_kernel: dict[str, list[PragmaConfig]],
    ) -> HierarchicalTrainingReport:
        """Train from raw source strings (runs the ground-truth flow)."""
        kernels = {name: lower_source(text) for name, text in sources.items()}
        self._functions.update(kernels)
        instances = build_design_instances(
            kernels, configs_per_kernel, library=self.library
        )
        return self.model.fit(instances)

    def fit_instances(self, instances: list[DesignInstance]) -> HierarchicalTrainingReport:
        """Train from pre-built design instances (labels already computed)."""
        for instance in instances:
            self._functions.setdefault(instance.kernel, instance.function)
        return self.model.fit(instances)

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict_source(
        self, source: str, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        """Predict QoR for source text under a pragma configuration."""
        function = lower_source(source)
        return self.model.predict(function, config)

    def predict(
        self, function: IRFunction, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        """Predict QoR for an already-lowered kernel."""
        return self.model.predict(function, config)


__all__ = ["QoRPredictor"]
