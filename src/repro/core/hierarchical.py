"""Hierarchical training and prediction (Sections III-C and III-D).

``HierarchicalQoRModel`` bundles the three GNNs of the paper:

* ``GNNp`` — QoR of pipelined inner-hierarchy loops;
* ``GNNnp`` — QoR of non-pipelined inner-hierarchy loops;
* ``GNNg`` — QoR of the whole application, operating on the condensed outer
  graph whose super nodes carry the QoR *predicted* by the inner models.

Training is staged exactly as in the paper: the inner models are trained
first on extracted sub-loops, their weights are frozen, their predictions
annotate the super nodes, and only then is the global model trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import (
    DesignInstance,
    application_targets,
    decomposition_of,
    graph_to_sample,
    inner_unit_samples,
)
from repro.core.models import GlobalGNN, InnerLoopGNN
from repro.core.trainer import GraphRegressorTrainer, TrainingConfig, TrainingResult
from repro.frontend.pragmas import PragmaConfig
from repro.graph.features import annotate_super_node
from repro.graph.hierarchy import HierarchicalDecomposition, InnerLoopUnit, decompose
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.structure import IRFunction
from repro.nn.data import GraphSample, train_validation_test_split


@dataclass
class HierarchicalModelConfig:
    """Hyper-parameters of the whole hierarchical model suite."""

    conv_type: str = "graphsage"
    hidden: int = 32
    num_layers: int = 3
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0


@dataclass
class HierarchicalTrainingReport:
    """Per-stage training results and dataset sizes."""

    gnn_p: TrainingResult | None = None
    gnn_np: TrainingResult | None = None
    gnn_g: TrainingResult | None = None
    dataset_sizes: dict[str, int] = field(default_factory=dict)

    def test_mape(self) -> dict[str, dict[str, float]]:
        """Test MAPE per model and target (shape of Table III rows)."""
        report: dict[str, dict[str, float]] = {}
        if self.gnn_p is not None:
            report["GNNp"] = dict(self.gnn_p.test_mape or self.gnn_p.validation_mape)
        if self.gnn_np is not None:
            report["GNNnp"] = dict(self.gnn_np.test_mape or self.gnn_np.validation_mape)
        if self.gnn_g is not None:
            report["GNNg"] = dict(self.gnn_g.test_mape or self.gnn_g.validation_mape)
        return report


class HierarchicalQoRModel:
    """The paper's hierarchical source-to-post-route QoR predictor."""

    INNER_TARGETS = ("lut", "dsp", "ff", "iteration_latency", "latency")
    GLOBAL_TARGETS = ("lut", "dsp", "ff", "latency")

    def __init__(
        self,
        config: HierarchicalModelConfig | None = None,
        *,
        library: OperatorLibrary = DEFAULT_LIBRARY,
    ):
        self.config = config or HierarchicalModelConfig()
        self.library = library
        self.trainer_p: GraphRegressorTrainer | None = None
        self.trainer_np: GraphRegressorTrainer | None = None
        self.trainer_g: GraphRegressorTrainer | None = None

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        instances: list[DesignInstance],
        *,
        rng: np.random.Generator | None = None,
    ) -> HierarchicalTrainingReport:
        """Train GNNp, GNNnp and GNNg from design instances."""
        rng = rng or np.random.default_rng(self.config.seed)
        report = HierarchicalTrainingReport()

        pipelined, non_pipelined = inner_unit_samples(instances, library=self.library)
        report.dataset_sizes = {
            "GNNp": len(pipelined),
            "GNNnp": len(non_pipelined),
            "GNNg": len(instances),
        }
        if pipelined:
            self.trainer_p, report.gnn_p = self._train_inner(pipelined, rng)
        if non_pipelined:
            self.trainer_np, report.gnn_np = self._train_inner(non_pipelined, rng)

        # stage 2: annotate super nodes with (frozen) inner predictions
        application_samples = [
            self._application_sample(instance) for instance in instances
        ]
        self.trainer_g, report.gnn_g = self._train_global(application_samples, rng)
        return report

    def _train_inner(
        self, samples: list[GraphSample], rng: np.random.Generator
    ) -> tuple[GraphRegressorTrainer, TrainingResult]:
        train, validation, test = train_validation_test_split(samples, rng=rng)
        train = train or samples
        trainer = GraphRegressorTrainer(
            model=None, target_names=self.INNER_TARGETS, config=self.config.training
        )
        trainer.fit_preprocessing(train)
        model = InnerLoopGNN(
            in_features=trainer.input_dim(train),
            hidden=self.config.hidden,
            num_layers=self.config.num_layers,
            conv_type=self.config.conv_type,
            rng=np.random.default_rng(self.config.seed),
        )
        trainer.model = model
        result = trainer.train(train, validation or None, test or None)
        return trainer, result

    def _train_global(
        self, samples: list[GraphSample], rng: np.random.Generator
    ) -> tuple[GraphRegressorTrainer, TrainingResult]:
        train, validation, test = train_validation_test_split(samples, rng=rng)
        train = train or samples
        trainer = GraphRegressorTrainer(
            model=None, target_names=self.GLOBAL_TARGETS, config=self.config.training
        )
        trainer.fit_preprocessing(train)
        model = GlobalGNN(
            in_features=trainer.input_dim(train),
            hidden=self.config.hidden,
            num_layers=self.config.num_layers,
            conv_type=self.config.conv_type,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        trainer.model = model
        result = trainer.train(train, validation or None, test or None)
        return trainer, result

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict_inner_unit(self, unit: InnerLoopUnit) -> dict[str, float]:
        """QoR prediction for one inner-hierarchy loop."""
        trainer = self.trainer_p if unit.pipelined else self.trainer_np
        if trainer is None:
            trainer = self.trainer_np if unit.pipelined else self.trainer_p
        if trainer is None:
            raise RuntimeError("inner models have not been trained")
        sample = graph_to_sample(unit.subgraph)
        predictions = trainer.predict([sample])
        return {name: float(values[0]) for name, values in predictions.items()}

    def _annotated_outer_sample(
        self,
        decomposition: HierarchicalDecomposition,
        targets: dict[str, float] | None = None,
        metadata: dict[str, str] | None = None,
    ) -> GraphSample:
        for unit in decomposition.inner_units:
            prediction = self.predict_inner_unit(unit)
            for node_id in decomposition.super_node_ids(unit.label):
                annotate_super_node(
                    decomposition.outer_graph, node_id,
                    latency=prediction.get("latency", 0.0),
                    lut=prediction.get("lut", 0.0),
                    ff=prediction.get("ff", 0.0),
                    dsp=prediction.get("dsp", 0.0),
                    iteration_latency=prediction.get("iteration_latency", 0.0),
                )
        return graph_to_sample(decomposition.outer_graph, targets, metadata)

    def _application_sample(self, instance: DesignInstance) -> GraphSample:
        decomposition = decomposition_of(instance, library=self.library)
        return self._annotated_outer_sample(
            decomposition, application_targets(instance),
            metadata={"kernel": instance.kernel, "config": instance.config.describe()},
        )

    def predict(
        self, function: IRFunction, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        """Predict post-route QoR of a kernel under a configuration.

        Runs graph construction, inner-unit prediction, super-node annotation
        and the global model — no HLS or implementation flow is invoked.
        """
        if self.trainer_g is None:
            raise RuntimeError("the hierarchical model has not been trained")
        config = config or PragmaConfig()
        decomposition = decompose(function, config, library=self.library)
        sample = self._annotated_outer_sample(decomposition)
        predictions = self.trainer_g.predict([sample])
        return {name: float(values[0]) for name, values in predictions.items()}

    def evaluate(self, instances: list[DesignInstance]) -> dict[str, float]:
        """Whole-design MAPE of the hierarchical predictor over instances."""
        from repro.nn.losses import mape

        predictions: dict[str, list[float]] = {name: [] for name in self.GLOBAL_TARGETS}
        truths: dict[str, list[float]] = {name: [] for name in self.GLOBAL_TARGETS}
        for instance in instances:
            predicted = self.predict(instance.function, instance.config)
            truth = application_targets(instance)
            for name in self.GLOBAL_TARGETS:
                predictions[name].append(predicted[name])
                truths[name].append(truth[name])
        return {
            name: mape(np.array(predictions[name]), np.array(truths[name]))
            for name in self.GLOBAL_TARGETS
        }


__all__ = [
    "HierarchicalModelConfig", "HierarchicalTrainingReport", "HierarchicalQoRModel",
]
