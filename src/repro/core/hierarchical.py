"""Hierarchical training and prediction (Sections III-C and III-D).

``HierarchicalQoRModel`` bundles the three GNNs of the paper:

* ``GNNp`` — QoR of pipelined inner-hierarchy loops;
* ``GNNnp`` — QoR of non-pipelined inner-hierarchy loops;
* ``GNNg`` — QoR of the whole application, operating on the condensed outer
  graph whose super nodes carry the QoR *predicted* by the inner models.

Training is staged exactly as in the paper: the inner models are trained
first on extracted sub-loops, their weights are frozen, their predictions
annotate the super nodes, and only then is the global model trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import (
    DesignInstance,
    application_targets,
    decomposition_of,
    graph_to_sample,
    inner_unit_samples,
)
from repro.core.models import GlobalGNN, InnerLoopGNN
from repro.core.trainer import GraphRegressorTrainer, TrainingConfig, TrainingResult
from repro.frontend.pragmas import PragmaConfig
from repro.graph.cache import GraphConstructionCache
from repro.graph.cdfg import CDFG, NODE_FEATURE_NAMES, NodeKind
from repro.graph.features import annotate_super_node
from repro.graph.hierarchy import (
    HierarchicalDecomposition,
    InnerLoopUnit,
    decompose,
    decomposition_signature,
)
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.core.lru import LRUDict
from repro.ir.structure import IRFunction
from repro.flags import normalize_precision, reference_encoding_active
from repro.nn.data import GraphSample, train_validation_test_split

#: column of each Table II feature in a sample's numerical feature matrix
_FEATURE_COLUMN = {name: column for column, name in enumerate(NODE_FEATURE_NAMES)}


@dataclass
class _OuterSampleTemplate:
    """Pre-extracted :class:`GraphSample` ingredients of one outer-graph delta.

    ``predict_batch`` converts the condensed outer graph of every pending
    configuration into a sample; for configurations sharing an outer pragma
    delta only the super-node QoR annotations differ.  The template captures
    the conversion once — optype list, edge index and pristine feature matrix
    are shared read-only between samples (the encoder memoizes per shared
    optype list), and each configuration gets a fresh matrix copy with its
    inner predictions written straight into the annotated rows, skipping
    graph copy, node iteration and re-extraction entirely.
    """

    optypes: list[str]
    edge_index: np.ndarray
    base_features: np.ndarray
    loop_features: np.ndarray
    metadata: dict[str, str]
    #: interned optype codes + table of the outer graph (encoder fast path)
    graph_codes: np.ndarray
    graph_table: list[str]
    #: super-node row ids per inner-unit loop label
    super_rows: dict[str, np.ndarray]
    #: per super-node row, the ``invocations`` factor of the ``work`` feature
    #: (``features.get("invocations", 1.0)`` — note the 1.0 default, which
    #: differs from the feature matrix's 0.0 fill for absent features)
    work_invocations: dict[str, np.ndarray]


def _build_outer_template(graph: CDFG) -> _OuterSampleTemplate:
    """Capture the sample-conversion ingredients of a pristine outer graph.

    Reads the graph's node columns directly — kinds, loop labels and the
    columnar feature block — so building a template never materializes node
    objects, and ``base_features`` is handed over as the zero-copy view of
    the cached (pristine, never annotated) outer graph's feature block.
    """
    rows: dict[str, list[int]] = {}
    labels = graph.node_loop_labels
    for node_id, kind in enumerate(graph.node_kinds):
        if kind is NodeKind.SUPER_NODE:
            rows.setdefault(labels[node_id], []).append(node_id)
    super_rows = {
        label: np.asarray(ids, dtype=np.int64) for label, ids in rows.items()
    }
    base_features = graph.feature_matrix()
    invocations_column = base_features[:, _FEATURE_COLUMN["invocations"]]
    work_invocations = {}
    for label, ids in super_rows.items():
        invocations = invocations_column[ids].copy()
        # mirror the dict path's ``get("invocations", 1.0)`` default for
        # never-written rows (the columnar fill is 0.0)
        invocations[invocations == 0.0] = 1.0
        work_invocations[label] = invocations
    return _OuterSampleTemplate(
        optypes=graph.optype_list(),
        edge_index=graph.edge_index(),
        base_features=base_features,
        loop_features=graph.loop_features.as_vector(),
        metadata=dict(graph.metadata),
        graph_codes=graph.optype_code_array(),
        graph_table=graph.optype_table,
        super_rows=super_rows,
        work_invocations=work_invocations,
    )


@dataclass
class HierarchicalModelConfig:
    """Hyper-parameters of the whole hierarchical model suite."""

    conv_type: str = "graphsage"
    hidden: int = 32
    num_layers: int = 3
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0


@dataclass
class HierarchicalTrainingReport:
    """Per-stage training results and dataset sizes."""

    gnn_p: TrainingResult | None = None
    gnn_np: TrainingResult | None = None
    gnn_g: TrainingResult | None = None
    dataset_sizes: dict[str, int] = field(default_factory=dict)

    def test_mape(self) -> dict[str, dict[str, float]]:
        """Test MAPE per model and target (shape of Table III rows)."""
        report: dict[str, dict[str, float]] = {}
        if self.gnn_p is not None:
            report["GNNp"] = dict(self.gnn_p.test_mape or self.gnn_p.validation_mape)
        if self.gnn_np is not None:
            report["GNNnp"] = dict(self.gnn_np.test_mape or self.gnn_np.validation_mape)
        if self.gnn_g is not None:
            report["GNNg"] = dict(self.gnn_g.test_mape or self.gnn_g.validation_mape)
        return report


class HierarchicalQoRModel:
    """The paper's hierarchical source-to-post-route QoR predictor."""

    INNER_TARGETS = ("lut", "dsp", "ff", "iteration_latency", "latency")
    GLOBAL_TARGETS = ("lut", "dsp", "ff", "latency")

    #: node budget of one disjoint-union forward pass in :meth:`predict_batch`
    MAX_BATCH_NODES = 200_000

    #: default bound of the per-design prediction memo.  Generous — a memo
    #: entry is a handful of floats, so the default costs tens of MB at
    #: worst — but finite, so a resident service under a churning workload
    #: (unboundedly many distinct designs) recycles the memo instead of
    #: leaking it.  ``prediction_cache_capacity=None`` restores the
    #: unbounded behaviour.
    PREDICTION_CACHE_CAPACITY = 200_000

    def __init__(
        self,
        config: HierarchicalModelConfig | None = None,
        *,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        prediction_cache_capacity: int | None = PREDICTION_CACHE_CAPACITY,
    ):
        self.config = config or HierarchicalModelConfig()
        self.library = library
        self.trainer_p: GraphRegressorTrainer | None = None
        self.trainer_np: GraphRegressorTrainer | None = None
        self.trainer_g: GraphRegressorTrainer | None = None
        # batched-inference caches: pragma-delta-keyed graphs, the
        # GraphSample conversions of shared inner-unit subgraphs (plus each
        # unit's pipelined flag and the outer-graph sample templates, which
        # together let repeat deltas skip decomposition entirely), and the
        # QoR predictions of already-seen design deltas
        self._graph_cache = GraphConstructionCache()
        self._unit_sample_cache: dict[tuple[str, str], GraphSample] = {}
        self._unit_pipelined: dict[tuple[str, str], bool] = {}
        self._outer_template_cache: dict[tuple[str, str], _OuterSampleTemplate] = {}
        self._prediction_cache: LRUDict[tuple, dict[str, float]] = LRUDict(
            prediction_cache_capacity
        )
        # memo signatures adopted from a warm-cache blob; subtracted by
        # export_warm_caches(delta_only=True) so sharded workers ship only
        # what they computed themselves back to the coordinator
        self._imported_prediction_keys: set[tuple] = set()
        #: active inference tier across the three trainers (see
        #: :meth:`set_precision`; float64 is the bit-identical default)
        self.precision = "float64"

    def set_precision(self, value: str) -> None:
        """Switch all three models to the given inference tier.

        ``float32`` casts each trainer's weights once (the float64 master
        copy is retained, so switching back — and serialization — is
        bit-exact) and every subsequent :meth:`predict`/:meth:`predict_batch`
        encodes batches and runs kernels in that dtype.  The per-design
        prediction memo is dropped because its entries belong to the tier
        that produced them; the graph/template/unit-sample caches hold raw
        float64 features that are cast at batch-encoding time, so they
        survive the switch.
        """
        value = normalize_precision(value)
        if value == self.precision:
            return
        for trainer in (self.trainer_p, self.trainer_np, self.trainer_g):
            if trainer is not None:
                trainer.set_precision(value)
        self._prediction_cache.clear()
        self._imported_prediction_keys.clear()
        self.precision = value

    def clear_inference_caches(self) -> None:
        """Drop cached graphs/samples/predictions (weights are unaffected).

        Also clears the trainers' encoded-feature caches, which pin every
        sample ever predicted — without this, long-lived services would
        retain the encoded matrix of each distinct design forever.
        """
        self._graph_cache.clear()
        self._unit_sample_cache.clear()
        self._unit_pipelined.clear()
        self._outer_template_cache.clear()
        self._prediction_cache.clear()
        self._imported_prediction_keys.clear()
        for trainer in (self.trainer_p, self.trainer_np, self.trainer_g):
            if trainer is not None:
                trainer.clear_caches()

    def cache_stats(self) -> dict[str, int]:
        """Counters of every inference cache layer, in one flat dict.

        Construction-cache hits/misses and the prediction-memo/template
        sizes as before, plus the encoding- and message-passing-layer
        caches the vectorized cold path rides on: the process-wide
        ``SCATTER_INDEX_CACHE`` (flat scatter indices, CSR operators,
        segment counts) and ``EDGE_CACHE`` (self-loops, degrees, norm
        columns), and — summed across this model's trainers — the
        epoch-level :class:`~repro.nn.data.BatchCache` counters and the
        number of per-sample encoded rows pinned in the encoded caches.
        """
        from repro.nn.autograd import SCATTER_INDEX_CACHE
        from repro.nn.message_passing import EDGE_CACHE

        stats = dict(self._graph_cache.stats.as_dict())
        stats["memoized_predictions"] = len(self._prediction_cache)
        stats["prediction_cache_evictions"] = self._prediction_cache.evictions
        stats["outer_templates"] = len(self._outer_template_cache)
        stats.update(SCATTER_INDEX_CACHE.stats())
        stats.update(EDGE_CACHE.stats())
        batch_totals: dict[str, int] = {}
        encoded_samples = 0
        for trainer in (self.trainer_p, self.trainer_np, self.trainer_g):
            if trainer is None:
                continue
            for name, value in trainer._batch_cache.stats().items():
                batch_totals[name] = batch_totals.get(name, 0) + value
            encoded_samples += len(trainer._encoded_cache)
        stats.update(batch_totals)
        stats["encoded_samples"] = encoded_samples
        return stats

    # ------------------------------------------------------------------ #
    # warm-cache persistence (see core.serialization)
    # ------------------------------------------------------------------ #
    def export_warm_caches(self, *, delta_only: bool = False) -> dict:
        """JSON-compatible snapshot of the construction cache and the
        per-design prediction memo.

        All keys are content fingerprints and directive-slice strings, so
        the snapshot is portable across processes; ``save_model`` stores it
        alongside the weights and ``load_model`` feeds it back through
        :meth:`import_warm_caches`, letting a restarted service serve its
        first sweep from the memo without building a single graph.
        ``delta_only`` subtracts everything adopted through
        :meth:`import_warm_caches` — the bounded write-back payload a
        sharded worker ships to the coordinator, which merges only what
        the worker newly warmed.
        """
        predictions = [
            [fingerprint, outer_key, [list(unit) for unit in units], dict(metrics)]
            for (fingerprint, (outer_key, units)), metrics
            in self._prediction_cache.items()
            if not (
                delta_only
                and (fingerprint, (outer_key, units))
                in self._imported_prediction_keys
            )
        ]
        return {
            "construction": self._graph_cache.export_warm_state(
                delta_only=delta_only
            ),
            "predictions": predictions,
        }

    def import_warm_caches(self, payload: dict) -> None:
        """Adopt a snapshot produced by :meth:`export_warm_caches`."""
        self._graph_cache.import_warm_state(payload.get("construction", {}))
        for fingerprint, outer_key, units, metrics in payload.get("predictions", ()):
            signature = (
                fingerprint,
                (outer_key, tuple((label, key) for label, key in units)),
            )
            self._prediction_cache[signature] = {
                name: float(value) for name, value in metrics.items()
            }
            self._imported_prediction_keys.add(signature)

    def warm_cache_sizes(self) -> dict[str, int]:
        """Entry counts of the persistable warm caches.

        ``units``/``outer`` are the construction cache's live plus
        still-unhydrated persisted graphs, ``predictions`` the memo size;
        the write-back merge reports its effect as before/after deltas of
        these counts.
        """
        sizes = dict(self._graph_cache.warm_state_sizes())
        sizes["predictions"] = len(self._prediction_cache)
        return sizes

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        instances: list[DesignInstance],
        *,
        rng: np.random.Generator | None = None,
    ) -> HierarchicalTrainingReport:
        """Train GNNp, GNNnp and GNNg from design instances."""
        rng = rng or np.random.default_rng(self.config.seed)
        # retraining invalidates memoized predictions (graph caches would
        # survive, but a full reset keeps the invariants trivial); the fresh
        # trainers come out of training in the float64 reference tier
        self.clear_inference_caches()
        self.precision = "float64"
        report = HierarchicalTrainingReport()

        pipelined, non_pipelined = inner_unit_samples(instances, library=self.library)
        report.dataset_sizes = {
            "GNNp": len(pipelined),
            "GNNnp": len(non_pipelined),
            "GNNg": len(instances),
        }
        if pipelined:
            self.trainer_p, report.gnn_p = self._train_inner(pipelined, rng)
        if non_pipelined:
            self.trainer_np, report.gnn_np = self._train_inner(non_pipelined, rng)

        # stage 2: annotate super nodes with (frozen) inner predictions
        application_samples = [
            self._application_sample(instance) for instance in instances
        ]
        self.trainer_g, report.gnn_g = self._train_global(application_samples, rng)
        return report

    def _train_inner(
        self, samples: list[GraphSample], rng: np.random.Generator
    ) -> tuple[GraphRegressorTrainer, TrainingResult]:
        train, validation, test = train_validation_test_split(samples, rng=rng)
        train = train or samples
        trainer = GraphRegressorTrainer(
            model=None, target_names=self.INNER_TARGETS, config=self.config.training
        )
        trainer.fit_preprocessing(train)
        model = InnerLoopGNN(
            in_features=trainer.input_dim(train),
            hidden=self.config.hidden,
            num_layers=self.config.num_layers,
            conv_type=self.config.conv_type,
            rng=np.random.default_rng(self.config.seed),
        )
        trainer.model = model
        result = trainer.train(train, validation or None, test or None)
        return trainer, result

    def _train_global(
        self, samples: list[GraphSample], rng: np.random.Generator
    ) -> tuple[GraphRegressorTrainer, TrainingResult]:
        train, validation, test = train_validation_test_split(samples, rng=rng)
        train = train or samples
        trainer = GraphRegressorTrainer(
            model=None, target_names=self.GLOBAL_TARGETS, config=self.config.training
        )
        trainer.fit_preprocessing(train)
        model = GlobalGNN(
            in_features=trainer.input_dim(train),
            hidden=self.config.hidden,
            num_layers=self.config.num_layers,
            conv_type=self.config.conv_type,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        trainer.model = model
        result = trainer.train(train, validation or None, test or None)
        return trainer, result

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict_inner_unit(self, unit: InnerLoopUnit) -> dict[str, float]:
        """QoR prediction for one inner-hierarchy loop."""
        trainer = self.trainer_p if unit.pipelined else self.trainer_np
        if trainer is None:
            trainer = self.trainer_np if unit.pipelined else self.trainer_p
        if trainer is None:
            raise RuntimeError("inner models have not been trained")
        sample = graph_to_sample(unit.subgraph)
        predictions = trainer.predict([sample], cache=False)
        return {name: float(values[0]) for name, values in predictions.items()}

    def _annotated_outer_sample(
        self,
        decomposition: HierarchicalDecomposition,
        targets: dict[str, float] | None = None,
        metadata: dict[str, str] | None = None,
    ) -> GraphSample:
        for unit in decomposition.inner_units:
            prediction = self.predict_inner_unit(unit)
            for node_id in decomposition.super_node_ids(unit.label):
                annotate_super_node(
                    decomposition.outer_graph, node_id,
                    latency=prediction.get("latency", 0.0),
                    lut=prediction.get("lut", 0.0),
                    ff=prediction.get("ff", 0.0),
                    dsp=prediction.get("dsp", 0.0),
                    iteration_latency=prediction.get("iteration_latency", 0.0),
                )
        return graph_to_sample(decomposition.outer_graph, targets, metadata)

    def _application_sample(self, instance: DesignInstance) -> GraphSample:
        decomposition = decomposition_of(instance, library=self.library)
        return self._annotated_outer_sample(
            decomposition, application_targets(instance),
            metadata={"kernel": instance.kernel, "config": instance.config.describe()},
        )

    def predict(
        self, function: IRFunction, config: PragmaConfig | None = None
    ) -> dict[str, float]:
        """Predict post-route QoR of a kernel under a configuration.

        Runs graph construction, inner-unit prediction, super-node annotation
        and the global model — no HLS or implementation flow is invoked.
        """
        if self.trainer_g is None:
            raise RuntimeError("the hierarchical model has not been trained")
        config = config or PragmaConfig()
        decomposition = decompose(function, config, library=self.library)
        sample = self._annotated_outer_sample(decomposition)
        predictions = self.trainer_g.predict([sample], cache=False)
        return {name: float(values[0]) for name, values in predictions.items()}

    # ------------------------------------------------------------------ #
    # batched inference (the DSE hot path)
    # ------------------------------------------------------------------ #
    def _inner_trainer_for(self, pipelined: bool) -> GraphRegressorTrainer:
        trainer = self.trainer_p if pipelined else self.trainer_np
        if trainer is None:
            trainer = self.trainer_np if pipelined else self.trainer_p
        if trainer is None:
            raise RuntimeError("inner models have not been trained")
        return trainer

    def _unit_key(self, function: IRFunction, unit: InnerLoopUnit) -> tuple[str, str]:
        """Identity of an inner unit's pragma delta (decompose-with-cache
        always assigns a non-empty ``cache_key``).  Keyed by the function's
        content fingerprint so memoized state is portable across processes."""
        return (self._graph_cache.fingerprint(function), unit.cache_key)

    def _unit_sample(self, function: IRFunction, unit: InnerLoopUnit) -> GraphSample:
        """GraphSample of one inner unit, memoized by its pragma-delta key."""
        key = self._unit_key(function, unit)
        sample = self._unit_sample_cache.get(key)
        if sample is None:
            sample = graph_to_sample(unit.subgraph)
            self._unit_sample_cache[key] = sample
        return sample

    def _outer_sample_from_template(
        self,
        template: _OuterSampleTemplate,
        unit_keys: tuple[tuple[str, str], ...],
        fingerprint: str,
        config: PragmaConfig,
        inner_predictions: dict[tuple[str, str], dict[str, float]],
    ) -> GraphSample:
        """One configuration's outer sample, annotated from its template.

        Writes each inner unit's predicted QoR into the super-node rows of a
        fresh copy of the template's pristine feature matrix — value-for-value
        identical to annotating the graph with
        :func:`~repro.graph.features.annotate_super_node` and re-extracting,
        without touching a single :class:`~repro.graph.cdfg.CDFGNode`.
        """
        matrix = template.base_features.copy()
        for label, unit_key in unit_keys:
            rows = template.super_rows.get(label)
            if rows is None or not rows.size:
                continue
            prediction = inner_predictions[(fingerprint, unit_key)]
            latency = float(prediction.get("latency", 0.0))
            matrix[rows, _FEATURE_COLUMN["cycles"]] = latency
            matrix[rows, _FEATURE_COLUMN["delay"]] = float(
                prediction.get("iteration_latency", 0.0)
            )
            matrix[rows, _FEATURE_COLUMN["lut"]] = float(prediction.get("lut", 0.0))
            matrix[rows, _FEATURE_COLUMN["dsp"]] = float(prediction.get("dsp", 0.0))
            matrix[rows, _FEATURE_COLUMN["ff"]] = float(prediction.get("ff", 0.0))
            matrix[rows, _FEATURE_COLUMN["work"]] = (
                latency * template.work_invocations[label]
            )
        metadata = dict(template.metadata)
        metadata["config"] = config.describe()
        return GraphSample(
            optypes=template.optypes,
            features=matrix,
            edge_index=template.edge_index,
            loop_features=template.loop_features,
            metadata=metadata,
            graph_codes=template.graph_codes,
            graph_table=template.graph_table,
        )

    def predict_batch(
        self,
        function: IRFunction,
        configs: list[PragmaConfig | None],
        *,
        precision: str | None = None,
    ) -> list[dict[str, float]]:
        """Predict post-route QoR for a whole design space at once.

        Numerically equivalent to calling :meth:`predict` per configuration
        but orders of magnitude cheaper: graphs are constructed once per
        pragma delta (see :class:`~repro.graph.cache.GraphConstructionCache`),
        every inner-loop unit of every configuration runs through one
        disjoint-union forward pass per inner model (GNNp / GNNnp), the
        predictions are scattered onto the super nodes of the condensed
        outer graphs, and one batched GNNg pass scores all distinct outer
        graphs.  ``precision`` (``"float32"``/``"float64"``) switches the
        inference tier first (see :meth:`set_precision`); ``None`` keeps the
        active tier.
        """
        if self.trainer_g is None:
            raise RuntimeError("the hierarchical model has not been trained")
        if precision is not None:
            self.set_precision(precision)
        resolved = [config or PragmaConfig() for config in configs]
        if not resolved:
            return []

        # 0) pragma-delta signature per configuration (no graphs built yet):
        #    configurations with equal signatures are the same design, so one
        #    representative is decomposed/predicted and memoized results are
        #    served without any construction at all.  The function enters the
        #    key via its content fingerprint, which is what lets a persisted
        #    memo (load_model with warm caches) serve post-restart sweeps.
        fingerprint = self._graph_cache.fingerprint(function)
        signatures = [
            (
                fingerprint,
                decomposition_signature(
                    function, config, self._graph_cache, library=self.library
                ),
            )
            for config in resolved
        ]
        # ``served`` pins every metrics dict this call hands out: the memo is
        # LRU-bounded, so a batch larger than the remaining capacity could
        # evict its own early entries before the final scatter reads them
        served: dict[tuple, dict[str, float]] = {}
        seen: set[tuple] = set()
        pending: list[tuple[tuple, PragmaConfig]] = []
        for signature, config in zip(signatures, resolved):
            if signature in served or signature in seen:
                continue
            hit = self._prediction_cache.get(signature)
            if hit is not None:
                served[signature] = hit
                continue
            seen.add(signature)
            pending.append((signature, config))
        if not pending:
            return [dict(served[s]) for s in signatures]

        # 1) resolve every pending design to its inner-unit keys, an outer
        #    sample template and (only when the delta has never been seen) a
        #    fresh decomposition.  A design whose outer template and unit
        #    samples are all cached is served without building or copying a
        #    single graph; the retained reference pipeline (see
        #    :func:`repro.nn.autograd.reference_encoding`) always decomposes
        #    and annotates graphs node by node.
        use_templates = not reference_encoding_active()
        pending_units: list[tuple[tuple[str, str], ...]] = []
        templates: list[_OuterSampleTemplate | None] = []
        decompositions: list[HierarchicalDecomposition | None] = []
        for signature, config in pending:
            outer_key, signature_units = signature[1]
            template_key = (fingerprint, outer_key)
            template = (
                self._outer_template_cache.get(template_key)
                if use_templates else None
            )
            units_known = all(
                (fingerprint, unit_key) in self._unit_sample_cache
                and (fingerprint, unit_key) in self._unit_pipelined
                for _, unit_key in signature_units
            )
            decomposition = None
            if template is None or not units_known:
                # the fast path never annotates the outer graph, so the
                # pristine cached instance can be shared without a copy
                decomposition = decompose(
                    function, config, library=self.library,
                    cache=self._graph_cache, outer_copy=not use_templates,
                )
                for unit in decomposition.inner_units:
                    key = self._unit_key(function, unit)
                    self._unit_pipelined[key] = unit.pipelined
                    self._unit_sample(function, unit)
                if use_templates and template is None:
                    template = _build_outer_template(decomposition.outer_graph)
                    self._outer_template_cache[template_key] = template
            if decomposition is not None:
                unit_keys = tuple(
                    (unit.label, unit.cache_key)
                    for unit in decomposition.inner_units
                )
            else:
                unit_keys = tuple(signature_units)
            pending_units.append(unit_keys)
            templates.append(template)
            decompositions.append(decomposition)

        # 2) unique inner-loop units across the pending designs, grouped by
        #    the trainer that scores them (GNNp / GNNnp with cross-fallback),
        #    then one batched forward per inner model
        groups: dict[int, tuple[GraphRegressorTrainer, list, list]] = {}
        grouped_keys: set[tuple[str, str]] = set()
        for unit_keys in pending_units:
            for _, unit_key in unit_keys:
                key = (fingerprint, unit_key)
                if key in grouped_keys:
                    continue
                grouped_keys.add(key)
                trainer = self._inner_trainer_for(self._unit_pipelined[key])
                _, keys, samples = groups.setdefault(id(trainer), (trainer, [], []))
                keys.append(key)
                samples.append(self._unit_sample_cache[key])
        inner_predictions: dict[tuple[str, str], dict[str, float]] = {}
        for trainer, keys, samples in groups.values():
            outputs = trainer.predict(samples, max_batch_nodes=self.MAX_BATCH_NODES)
            for index, key in enumerate(keys):
                inner_predictions[key] = {
                    name: float(values[index]) for name, values in outputs.items()
                }

        # 3) write the inner predictions onto each design's super nodes —
        #    straight into a copy of the template's feature matrix on the
        #    fast path, or through per-node graph annotation on the
        #    reference path — and collect the outer samples
        outer_samples: list[GraphSample] = []
        for index, (signature, config) in enumerate(pending):
            template = templates[index]
            if template is not None:
                outer_samples.append(self._outer_sample_from_template(
                    template, pending_units[index], fingerprint, config,
                    inner_predictions,
                ))
                continue
            decomposition = decompositions[index]
            for unit in decomposition.inner_units:
                prediction = inner_predictions[self._unit_key(function, unit)]
                for node_id in decomposition.super_node_ids(unit.label):
                    annotate_super_node(
                        decomposition.outer_graph, node_id,
                        latency=prediction.get("latency", 0.0),
                        lut=prediction.get("lut", 0.0),
                        ff=prediction.get("ff", 0.0),
                        dsp=prediction.get("dsp", 0.0),
                        iteration_latency=prediction.get("iteration_latency", 0.0),
                    )
            outer_samples.append(graph_to_sample(decomposition.outer_graph))

        # 4) one batched GNNg pass over the condensed graphs; memoize per
        #    design delta and scatter back onto the configuration order
        outputs = self.trainer_g.predict(
            outer_samples, max_batch_nodes=self.MAX_BATCH_NODES
        )
        for index, (signature, _) in enumerate(pending):
            metrics = {
                name: float(values[index]) for name, values in outputs.items()
            }
            self._prediction_cache[signature] = metrics
            served[signature] = metrics
        # hand out copies: callers may mutate their result dicts freely
        # without corrupting the memo
        return [dict(served[s]) for s in signatures]

    def evaluate(self, instances: list[DesignInstance]) -> dict[str, float]:
        """Whole-design MAPE of the hierarchical predictor over instances."""
        from repro.nn.losses import mape

        predictions: dict[str, list[float]] = {name: [] for name in self.GLOBAL_TARGETS}
        truths: dict[str, list[float]] = {name: [] for name in self.GLOBAL_TARGETS}
        # batch per kernel: instances of the same function share one
        # disjoint-union pass (and the construction cache)
        by_function: dict[int, list[DesignInstance]] = {}
        for instance in instances:
            by_function.setdefault(id(instance.function), []).append(instance)
        for group in by_function.values():
            predicted_list = self.predict_batch(
                group[0].function, [instance.config for instance in group]
            )
            for instance, predicted in zip(group, predicted_list):
                truth = application_targets(instance)
                for name in self.GLOBAL_TARGETS:
                    predictions[name].append(predicted[name])
                    truths[name].append(truth[name])
        return {
            name: mape(np.array(predictions[name]), np.array(truths[name]))
            for name in self.GLOBAL_TARGETS
        }


__all__ = [
    "HierarchicalModelConfig", "HierarchicalTrainingReport", "HierarchicalQoRModel",
]
