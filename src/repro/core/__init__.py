"""The paper's core contribution: hierarchical source-to-post-route QoR
prediction with GNNs."""

from repro.core.dataset import (
    DatasetBundle,
    DesignInstance,
    application_targets,
    build_dataset_bundle,
    build_design_instances,
    decomposition_of,
    default_configurations,
    flat_sample,
    graph_to_sample,
    inner_unit_samples,
)
from repro.core.hierarchical import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    HierarchicalTrainingReport,
)
from repro.core.metrics import (
    qor_mape_table,
    relative_error,
    summarize_errors,
)
from repro.core.models import (
    GNNEncoder,
    GlobalGNN,
    InnerLoopGNN,
    ITERATION_LATENCY_TARGET,
    LATENCY_TARGET,
    RESOURCE_TARGETS,
)
from repro.core.predictor import QoRPredictor
from repro.core.serialization import load_model, peek_manifest, save_model
from repro.core.trainer import GraphRegressorTrainer, TrainingConfig, TrainingResult

__all__ = [
    "DatasetBundle", "DesignInstance", "application_targets",
    "build_dataset_bundle", "build_design_instances", "decomposition_of",
    "default_configurations", "flat_sample", "graph_to_sample",
    "inner_unit_samples",
    "HierarchicalModelConfig", "HierarchicalQoRModel", "HierarchicalTrainingReport",
    "qor_mape_table", "relative_error", "summarize_errors",
    "GNNEncoder", "GlobalGNN", "InnerLoopGNN",
    "ITERATION_LATENCY_TARGET", "LATENCY_TARGET", "RESOURCE_TARGETS",
    "QoRPredictor",
    "load_model", "peek_manifest", "save_model",
    "GraphRegressorTrainer", "TrainingConfig", "TrainingResult",
]
