"""A bounded LRU mapping for long-lived inference memos.

Several memoization layers of the predictor — the source-lowering memo and
the per-design prediction memo most prominently — were plain dicts that grew
without bound.  In a one-shot CLI sweep that is invisible; in a resident
prediction service (``repro.serve``) a churning workload (many distinct
kernels or design points) leaks memory until the process dies.

:class:`LRUDict` is the drop-in replacement: a dict with a capacity, where
inserting past capacity evicts the least-recently-*used* entry (reads count
as uses).  It exposes an ``evictions`` counter so ``cache_stats()`` can
surface how much a bounded memo is actually churning — a service whose
eviction counters climb steadily needs a bigger capacity (or a smaller
working set), and the counter is what makes that visible.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import Generic, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUDict(Generic[K, V]):
    """A dict bounded to ``capacity`` entries with least-recently-used eviction.

    Semantics match a plain dict for the operations the inference memos use
    (``in``, ``[]``, ``get``, ``items``, ``len``, ``clear``), with two
    differences: successful lookups refresh an entry's recency, and inserting
    a new key at capacity silently evicts the stalest entry (incrementing
    :attr:`evictions`).  ``capacity=None`` disables the bound entirely,
    which keeps the class usable where unbounded growth is intended.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        #: entries dropped to respect ``capacity`` since the last :meth:`clear`
        self.evictions = 0

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __getitem__(self, key: K) -> V:
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.capacity is not None:
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get(self, key: K, default: V | None = None) -> V | None:
        """``dict.get`` with LRU refresh on a hit."""
        if key in self._data:
            return self[key]
        return default

    def items(self) -> list[tuple[K, V]]:
        """Snapshot of ``(key, value)`` pairs, stalest first (no refresh)."""
        return list(self._data.items())

    def keys(self) -> list[K]:
        """Snapshot of the keys, stalest first (no refresh)."""
        return list(self._data.keys())

    def clear(self) -> None:
        """Drop every entry and reset the eviction counter."""
        self._data.clear()
        self.evictions = 0


__all__ = ["LRUDict"]
