"""GNN model architectures (Section III-D, Fig. 4 of the paper).

Each QoR model follows the same four-stage architecture:

1. **feature encoder** — one-hot optype concatenated with the numerical
   Table II features, projected by a linear layer.  On the vectorized
   encoding path :func:`repro.nn.data.make_batch` hands over per-node optype
   *codes* instead of the one-hot block and the projection runs as an
   embedding gather from the encoder's own weight rows
   (:func:`repro.nn.autograd.embedding_linear`) — the same product without
   the one-hot matrix ever existing;
2. **propagation layers** — three message-passing layers of a selectable
   type (GCN / GAT / GraphSAGE / TransformerConv / PNA);
3. **pooling** — concatenated sum- and max-pooling over node embeddings;
4. **MLP heads** — resource heads (LUT, DSP, FF) read the graph embedding
   directly; latency is handled differently at the two hierarchy levels:
   the inner models (``GNNp``/``GNNnp``) first predict the *iteration
   latency* and a second MLP combines it with the loop-level features
   (II, TC, ...) to produce loop latency, while the global model (``GNNg``)
   predicts overall latency directly.
"""

from __future__ import annotations

import numpy as np

from repro.flags import reference_encoding_active
from repro.nn.autograd import Tensor, concat, embedding_linear, relu_add
from repro.nn.data import Batch
from repro.nn.layers import MLP, Linear, Module
from repro.nn.message_passing import make_conv
from repro.nn.pooling import sum_max_pool

#: QoR metrics predicted for every design / loop
RESOURCE_TARGETS = ("lut", "dsp", "ff")
LATENCY_TARGET = "latency"
ITERATION_LATENCY_TARGET = "iteration_latency"

#: width of the per-graph aggregate feature vector (Table II numeric features
#: plus the derived "work" feature)
FEATURE_TOTAL_DIM = 9


def _readout_input(embedding: Tensor, batch: Batch) -> Tensor:
    """Concatenate the pooled embedding with the per-graph feature totals."""
    dtype = embedding.data.dtype
    totals = batch.feature_totals
    if totals.size == 0 or totals.shape[1] == 0:
        totals = np.zeros((batch.num_graphs, FEATURE_TOTAL_DIM), dtype=dtype)
    if totals.shape[1] != FEATURE_TOTAL_DIM:
        padded = np.zeros((totals.shape[0], FEATURE_TOTAL_DIM), dtype=dtype)
        width = min(FEATURE_TOTAL_DIM, totals.shape[1])
        padded[:, :width] = totals[:, :width]
        totals = padded
    elif totals.dtype != dtype:
        # a float32 embedding must not be upcast by float64 totals in concat
        totals = totals.astype(dtype)
    return concat([embedding, Tensor(totals)], axis=1)


class GNNEncoder(Module):
    """Encoder + propagation + pooling: produces the graph embedding."""

    def __init__(
        self,
        in_features: int,
        hidden: int = 32,
        num_layers: int = 3,
        conv_type: str = "graphsage",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv_type = conv_type
        self.encoder = Linear(in_features, hidden, rng=rng)
        self.convs = [
            make_conv(conv_type, hidden, hidden, rng=rng) for _ in range(num_layers)
        ]

    def forward(self, batch: Batch) -> Tensor:
        if batch.optype_codes is not None:
            # codes layout: the first projection doubles as the optype
            # embedding table — gather its rows by code instead of
            # multiplying the (elided) one-hot block
            x = embedding_linear(
                batch.optype_codes, batch.x, self.encoder.weight,
                self.encoder.bias, batch.onehot_dim,
            ).relu()
        else:
            x = self.encoder(Tensor(batch.x)).relu()
        if reference_encoding_active():
            for conv in self.convs:
                x = conv(x, batch.edge_index).relu() + x  # residual connection
        else:
            for conv in self.convs:
                # fused relu + residual: same values, one temporary fewer
                x = relu_add(conv(x, batch.edge_index), x)
        pooled = sum_max_pool(x, batch.batch, batch.num_graphs)
        # signed log compression keeps the graph-size signal carried by the
        # sum-pool component while keeping the embedding well conditioned for
        # graphs ranging from a handful to thousands of nodes.
        sign = Tensor(np.sign(pooled.data))
        return (pooled.abs() + 1.0).log() * sign

    @property
    def embedding_dim(self) -> int:
        return 2 * self.encoder.out_features


class InnerLoopGNN(Module):
    """``GNNp`` / ``GNNnp``: QoR of one inner-hierarchy loop.

    Outputs (in scaled target space): ``lut``, ``dsp``, ``ff``,
    ``iteration_latency`` and ``latency``; the latency head consumes the
    predicted iteration latency together with the loop-level features.
    """

    def __init__(
        self,
        in_features: int,
        loop_feature_dim: int = 5,
        hidden: int = 32,
        num_layers: int = 3,
        conv_type: str = "graphsage",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.encoder = GNNEncoder(in_features, hidden, num_layers, conv_type, rng=rng)
        readout = self.encoder.embedding_dim + FEATURE_TOTAL_DIM
        self.resource_heads = {
            name: MLP([readout, hidden, 1], rng=rng) for name in RESOURCE_TARGETS
        }
        self.iteration_latency_head = MLP([readout, hidden, 1], rng=rng)
        self.latency_head = MLP([1 + loop_feature_dim, hidden, 1], rng=rng)

    def forward(self, batch: Batch) -> dict[str, Tensor]:
        embedding = _readout_input(self.encoder(batch), batch)
        outputs: dict[str, Tensor] = {
            name: head(embedding) for name, head in self.resource_heads.items()
        }
        iteration_latency = self.iteration_latency_head(embedding)
        outputs[ITERATION_LATENCY_TARGET] = iteration_latency
        loop_features = Tensor(
            np.log1p(np.maximum(batch.loop_features, 0.0)).astype(
                iteration_latency.data.dtype, copy=False
            )
        )
        outputs[LATENCY_TARGET] = self.latency_head(
            concat([iteration_latency, loop_features], axis=1)
        )
        return outputs

    @property
    def target_names(self) -> tuple[str, ...]:
        return RESOURCE_TARGETS + (ITERATION_LATENCY_TARGET, LATENCY_TARGET)


class GlobalGNN(Module):
    """``GNNg``: QoR of the whole application from the condensed outer graph."""

    def __init__(
        self,
        in_features: int,
        hidden: int = 32,
        num_layers: int = 3,
        conv_type: str = "graphsage",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.encoder = GNNEncoder(in_features, hidden, num_layers, conv_type, rng=rng)
        readout = self.encoder.embedding_dim + FEATURE_TOTAL_DIM
        self.heads = {
            name: MLP([readout, hidden, 1], rng=rng)
            for name in RESOURCE_TARGETS + (LATENCY_TARGET,)
        }

    def forward(self, batch: Batch) -> dict[str, Tensor]:
        embedding = _readout_input(self.encoder(batch), batch)
        return {name: head(embedding) for name, head in self.heads.items()}

    @property
    def target_names(self) -> tuple[str, ...]:
        return RESOURCE_TARGETS + (LATENCY_TARGET,)


__all__ = [
    "RESOURCE_TARGETS", "LATENCY_TARGET", "ITERATION_LATENCY_TARGET",
    "GNNEncoder", "InnerLoopGNN", "GlobalGNN",
]
