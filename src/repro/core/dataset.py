"""Dataset generation (Fig. 1, "dataset generation" stage).

A *design instance* couples one kernel, one pragma configuration and the
ground-truth QoR obtained from the complete C-to-bitstream flow simulator.
From design instances this module derives the three datasets of the paper:

* **inner-loop datasets** for ``GNNp`` (pipelined) and ``GNNnp``
  (non-pipelined): every inner-hierarchy loop is extracted as a standalone
  kernel, pushed through the flow, and paired with its pragma-aware subgraph;
* **application-level designs** for ``GNNg``: the condensed outer graph of
  the whole kernel (super-node features are filled in during hierarchical
  training, once the inner models exist) paired with whole-design QoR;
* **flat samples** used by the whole-graph baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frontend.pragmas import PragmaConfig
from repro.graph.cdfg import CDFG
from repro.graph.construction import build_flat_graph
from repro.graph.hierarchy import HierarchicalDecomposition, InnerLoopUnit, decompose
from repro.hls.flow import run_full_flow
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.reports import QoRResult
from repro.ir.extract import extract_loop_kernel
from repro.ir.structure import IRFunction
from repro.nn.data import GraphSample


# --------------------------------------------------------------------------- #
# design instances
# --------------------------------------------------------------------------- #
@dataclass
class DesignInstance:
    """One kernel + configuration + ground-truth QoR."""

    kernel: str
    function: IRFunction
    config: PragmaConfig
    qor: QoRResult

    @property
    def config_key(self) -> str:
        return self.config.key()


@dataclass
class InnerUnitRecord:
    """An inner-hierarchy loop occurrence inside a design instance."""

    instance: DesignInstance
    unit: InnerLoopUnit
    sample: GraphSample


@dataclass
class DatasetBundle:
    """The full training material derived from a set of design instances."""

    instances: list[DesignInstance] = field(default_factory=list)
    pipelined: list[GraphSample] = field(default_factory=list)
    non_pipelined: list[GraphSample] = field(default_factory=list)

    def summary(self) -> dict[str, int]:
        return {
            "designs": len(self.instances),
            "pipelined_loops": len(self.pipelined),
            "non_pipelined_loops": len(self.non_pipelined),
        }


def build_design_instances(
    kernels: dict[str, IRFunction],
    configs_per_kernel: dict[str, list[PragmaConfig]],
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> list[DesignInstance]:
    """Run the ground-truth flow for every (kernel, configuration) pair."""
    instances: list[DesignInstance] = []
    for kernel_name, function in kernels.items():
        for config in configs_per_kernel.get(kernel_name, [PragmaConfig()]):
            qor = run_full_flow(function, config, library=library)
            instances.append(
                DesignInstance(
                    kernel=kernel_name, function=function, config=config, qor=qor
                )
            )
    return instances


# --------------------------------------------------------------------------- #
# graph <-> sample conversion
# --------------------------------------------------------------------------- #
def graph_to_sample(
    graph: CDFG,
    targets: dict[str, float] | None = None,
    metadata: dict[str, str] | None = None,
) -> GraphSample:
    """Convert an annotated CDFG into a :class:`GraphSample`.

    On the columnar path this is a zero-copy handoff: the sample's feature
    matrix and edge index are live views of the graph's columns, and the
    interned optype codes ride along so encoders can skip per-node string
    resolution entirely.
    """
    return GraphSample(
        optypes=graph.optype_list(),
        features=graph.feature_matrix(),
        edge_index=graph.edge_index(),
        targets=dict(targets or {}),
        loop_features=graph.loop_features.as_vector(),
        metadata={**graph.metadata, **(metadata or {})},
        graph_codes=graph.optype_code_array(),
        graph_table=graph.optype_table,
    )


def _unit_dedup_key(instance: DesignInstance, unit: InnerLoopUnit) -> str:
    """Key identifying one inner-loop design point across configurations.

    Two configurations of the enclosing kernel that apply identical
    directives to a given inner loop (and to the arrays it touches) produce
    the same extracted design, so only one copy enters the dataset —
    mirroring the "valid designs" counting of the paper.
    """
    labels = [unit.loop.label] + [sub.label for sub in unit.loop.all_sub_loops()]
    loop_parts = [f"{label}:{instance.config.loop(label).describe()}" for label in labels]
    arrays = sorted(
        {instr.array for instr in unit.loop.body.walk_instructions() if instr.array}
    )
    array_parts = [f"{name}:{instance.config.array(name).describe()}" for name in arrays]
    return f"{instance.kernel}|{'|'.join(loop_parts + array_parts)}"


def inner_unit_samples(
    instances: list[DesignInstance],
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    deduplicate: bool = True,
) -> tuple[list[GraphSample], list[GraphSample]]:
    """Build the ``GNNp`` and ``GNNnp`` datasets from design instances.

    Every inner-hierarchy loop is extracted as a standalone kernel and run
    through the complete flow to obtain its own labels (post-route resources,
    loop latency and iteration latency).
    """
    pipelined: list[GraphSample] = []
    non_pipelined: list[GraphSample] = []
    seen: set[str] = set()
    for instance in instances:
        decomposition = decompose(instance.function, instance.config, library=library)
        for unit in decomposition.inner_units:
            key = _unit_dedup_key(instance, unit)
            if deduplicate and key in seen:
                continue
            seen.add(key)
            extracted = extract_loop_kernel(instance.function, unit.loop)
            qor = run_full_flow(extracted, instance.config, library=library)
            loop_report = None
            if qor.hls_report is not None:
                loop_report = qor.hls_report.loops.get(unit.loop.label)
            iteration_latency = (
                loop_report.iteration_latency if loop_report is not None else 1
            )
            targets = {
                "latency": float(qor.latency),
                "iteration_latency": float(iteration_latency),
                "lut": float(qor.lut),
                "dsp": float(qor.dsp),
                "ff": float(qor.ff),
            }
            sample = graph_to_sample(
                unit.subgraph, targets,
                metadata={
                    "kernel": instance.kernel,
                    "loop": unit.loop.label,
                    "category": unit.category.name,
                    "config": instance.config.describe(),
                },
            )
            if unit.pipelined:
                pipelined.append(sample)
            else:
                non_pipelined.append(sample)
    return pipelined, non_pipelined


def application_targets(instance: DesignInstance) -> dict[str, float]:
    """Whole-design QoR labels of one instance."""
    return {
        "latency": float(instance.qor.latency),
        "lut": float(instance.qor.lut),
        "dsp": float(instance.qor.dsp),
        "ff": float(instance.qor.ff),
    }


def flat_sample(
    instance: DesignInstance,
    *,
    pragma_aware: bool = True,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> GraphSample:
    """Whole-graph sample (no hierarchy) used by the flat baselines."""
    graph = build_flat_graph(
        instance.function,
        instance.config if pragma_aware else PragmaConfig(),
        pragma_aware=pragma_aware,
        library=library,
    )
    return graph_to_sample(
        graph, application_targets(instance),
        metadata={"kernel": instance.kernel, "config": instance.config.describe()},
    )


def decomposition_of(
    instance: DesignInstance, *, library: OperatorLibrary = DEFAULT_LIBRARY
) -> HierarchicalDecomposition:
    """The hierarchical decomposition of one design instance."""
    return decompose(instance.function, instance.config, library=library)


def build_dataset_bundle(
    kernels: dict[str, IRFunction],
    configs_per_kernel: dict[str, list[PragmaConfig]],
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> DatasetBundle:
    """End-to-end dataset generation for a set of kernels and configurations."""
    instances = build_design_instances(kernels, configs_per_kernel, library=library)
    pipelined, non_pipelined = inner_unit_samples(instances, library=library)
    return DatasetBundle(
        instances=instances, pipelined=pipelined, non_pipelined=non_pipelined
    )


def default_configurations(
    function: IRFunction,
    *,
    limit: int = 64,
    rng: np.random.Generator | None = None,
    include_baseline: bool = True,
) -> list[PragmaConfig]:
    """A sampled set of design points for dataset generation.

    Uses the DSE design-space enumeration (imported lazily to avoid a
    package-level import cycle) and sub-samples it to ``limit`` points.
    """
    from repro.dse.space import enumerate_design_space

    configs = enumerate_design_space(function)
    rng = rng or np.random.default_rng(0)
    if len(configs) > limit:
        indices = rng.choice(len(configs), size=limit, replace=False)
        configs = [configs[i] for i in sorted(indices)]
    if include_baseline and all(c.describe() != "baseline" for c in configs):
        configs = [PragmaConfig()] + configs
    return configs


__all__ = [
    "DesignInstance", "InnerUnitRecord", "DatasetBundle",
    "build_design_instances", "graph_to_sample", "inner_unit_samples",
    "application_targets", "flat_sample", "decomposition_of",
    "build_dataset_bundle", "default_configurations",
]
