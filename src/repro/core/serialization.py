"""Persistence for trained QoR models.

The paper publishes trained models alongside the code; this module provides
the equivalent for the reproduction: a trained
:class:`~repro.core.hierarchical.HierarchicalQoRModel` (three GNNs plus their
pre-processing state) round-trips through a single ``.npz`` archive, so DSE
runs and examples can reuse models without re-training.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.hierarchical import HierarchicalModelConfig, HierarchicalQoRModel
from repro.core.models import GlobalGNN, InnerLoopGNN
from repro.core.trainer import GraphRegressorTrainer, TrainingConfig
from repro.nn.data import FeatureScaler, OptypeEncoder, TargetScaler

_MODEL_KINDS = {"p": "inner", "np": "inner", "g": "global"}


def _pack_trainer(prefix: str, trainer: GraphRegressorTrainer, blob: dict) -> dict:
    """Serialize one trainer (model weights + preprocessing) into ``blob``.

    Returns the JSON-compatible metadata describing the trainer.
    """
    state = trainer.model.state_dict()
    for key, value in state.items():
        blob[f"{prefix}.{key}"] = value
    blob[f"{prefix}.feature_mean"] = trainer.feature_scaler.mean_
    blob[f"{prefix}.feature_std"] = trainer.feature_scaler.std_
    metadata = {
        "targets": list(trainer.target_names),
        "vocabulary": trainer.encoder.vocabulary,
        "input_dim": trainer.model.encoder.encoder.in_features,
        "hidden": trainer.model.encoder.encoder.out_features,
        "num_layers": len(trainer.model.encoder.convs),
        "conv_type": trainer.model.encoder.conv_type,
        "target_scalers": {
            name: [scaler.mean_, scaler.std_]
            for name, scaler in trainer.target_scalers.items()
        },
        "num_parameters": len(state),
    }
    return metadata


def _unpack_trainer(
    prefix: str, metadata: dict, blob: np.lib.npyio.NpzFile, kind: str
) -> GraphRegressorTrainer:
    trainer = GraphRegressorTrainer(
        model=None, target_names=tuple(metadata["targets"]),
        config=TrainingConfig(),
    )
    trainer.encoder = OptypeEncoder(vocabulary=metadata["vocabulary"])
    trainer.feature_scaler = FeatureScaler()
    trainer.feature_scaler.mean_ = blob[f"{prefix}.feature_mean"]
    trainer.feature_scaler.std_ = blob[f"{prefix}.feature_std"]
    for name, (mean, std) in metadata["target_scalers"].items():
        scaler = TargetScaler()
        scaler.mean_, scaler.std_ = float(mean), float(std)
        trainer.target_scalers[name] = scaler
    model_class = InnerLoopGNN if kind == "inner" else GlobalGNN
    model = model_class(
        in_features=int(metadata["input_dim"]),
        hidden=int(metadata["hidden"]),
        num_layers=int(metadata["num_layers"]),
        conv_type=metadata["conv_type"],
    )
    state = {
        f"param_{index}": blob[f"{prefix}.param_{index}"]
        for index in range(int(metadata["num_parameters"]))
    }
    model.load_state_dict(state)
    trainer.model = model
    return trainer


def save_model(model: HierarchicalQoRModel, path: str | Path) -> Path:
    """Save a trained hierarchical model to ``path`` (``.npz``)."""
    path = Path(path)
    blob: dict[str, np.ndarray] = {}
    manifest: dict[str, dict] = {
        "config": {
            "conv_type": model.config.conv_type,
            "hidden": model.config.hidden,
            "num_layers": model.config.num_layers,
        },
    }
    for name, trainer in (
        ("p", model.trainer_p), ("np", model.trainer_np), ("g", model.trainer_g)
    ):
        if trainer is not None:
            manifest[name] = _pack_trainer(name, trainer, blob)
    blob["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **blob)
    return path


def load_model(path: str | Path) -> HierarchicalQoRModel:
    """Load a hierarchical model saved with :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved model at {path}")
    blob = np.load(path, allow_pickle=False)
    manifest = json.loads(bytes(blob["__manifest__"]).decode("utf-8"))
    config = HierarchicalModelConfig(
        conv_type=manifest["config"]["conv_type"],
        hidden=int(manifest["config"]["hidden"]),
        num_layers=int(manifest["config"]["num_layers"]),
    )
    model = HierarchicalQoRModel(config)
    if "p" in manifest:
        model.trainer_p = _unpack_trainer("p", manifest["p"], blob, "inner")
    if "np" in manifest:
        model.trainer_np = _unpack_trainer("np", manifest["np"], blob, "inner")
    if "g" in manifest:
        model.trainer_g = _unpack_trainer("g", manifest["g"], blob, "global")
    return model


__all__ = ["save_model", "load_model"]
