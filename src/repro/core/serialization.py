"""Persistence for trained QoR models.

The paper publishes trained models alongside the code; this module provides
the equivalent for the reproduction: a trained
:class:`~repro.core.hierarchical.HierarchicalQoRModel` (three GNNs plus their
pre-processing state) round-trips through a single ``.npz`` archive, so DSE
runs and examples can reuse models without re-training.

The archive also carries the model's **warm inference caches** — the
pragma-delta graph-construction cache and the per-design prediction memo —
so a reloaded prediction service starts warm: its first sweep over a design
space it has seen before runs entirely from the memo, without constructing a
single graph.  The cache blob is versioned and bound to a digest of the
weight arrays it was produced with; a stale or mismatched blob is discarded
on load (prediction caches are only valid for the exact weights that filled
them).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.core.hierarchical import HierarchicalModelConfig, HierarchicalQoRModel
from repro.core.models import GlobalGNN, InnerLoopGNN
from repro.core.trainer import GraphRegressorTrainer, TrainingConfig
from repro.nn.data import FeatureScaler, OptypeEncoder, TargetScaler

_MODEL_KINDS = {"p": "inner", "np": "inner", "g": "global"}

#: format version of the persisted warm-cache payload; bump on layout change.
#: v2: columnar CDFG payloads — interned optype tables + one feature-row
#: matrix per graph instead of per-node feature dicts (PR 5).  v3: cache
#: keys and memoized prediction signatures are computed over the
#: *effective* (canonicalized) directives — v2 blobs keyed by raw
#: directives would be silently unreachable (or worse, collide), so they
#: are discarded on load and rebuilt by the next sweep.
WARM_CACHE_VERSION = 3

_WARM_CACHE_KEY = "__warm_caches__"
_MANIFEST_KEY = "__manifest__"


def _weights_digest(blob: dict) -> str:
    """Digest of every weight/preprocessing array in a model blob.

    Computed over sorted keys so it is identical at save and load time; the
    warm-cache payload embeds it, tying cached predictions to the exact
    weights that produced them.
    """
    digest = hashlib.sha256()
    for key in sorted(blob):
        if key.startswith("__"):
            continue
        array = np.asarray(blob[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()[:16]


def _pack_trainer(prefix: str, trainer: GraphRegressorTrainer, blob: dict) -> dict:
    """Serialize one trainer (model weights + preprocessing) into ``blob``.

    Returns the JSON-compatible metadata describing the trainer.
    """
    # always persist the float64 master weights: the on-disk format (and the
    # warm-cache digest) is precision-tier independent
    state = trainer.master_state()
    for key, value in state.items():
        blob[f"{prefix}.{key}"] = value
    blob[f"{prefix}.feature_mean"] = trainer.feature_scaler.mean_
    blob[f"{prefix}.feature_std"] = trainer.feature_scaler.std_
    metadata = {
        "targets": list(trainer.target_names),
        "vocabulary": trainer.encoder.vocabulary,
        "input_dim": trainer.model.encoder.encoder.in_features,
        "hidden": trainer.model.encoder.encoder.out_features,
        "num_layers": len(trainer.model.encoder.convs),
        "conv_type": trainer.model.encoder.conv_type,
        "target_scalers": {
            name: [scaler.mean_, scaler.std_]
            for name, scaler in trainer.target_scalers.items()
        },
        "num_parameters": len(state),
    }
    return metadata


def _unpack_trainer(
    prefix: str, metadata: dict, blob: np.lib.npyio.NpzFile, kind: str
) -> GraphRegressorTrainer:
    """Rebuild one trainer (weights + preprocessing) from a model blob."""
    trainer = GraphRegressorTrainer(
        model=None, target_names=tuple(metadata["targets"]),
        config=TrainingConfig(),
    )
    trainer.encoder = OptypeEncoder(vocabulary=metadata["vocabulary"])
    trainer.feature_scaler = FeatureScaler()
    trainer.feature_scaler.mean_ = blob[f"{prefix}.feature_mean"]
    trainer.feature_scaler.std_ = blob[f"{prefix}.feature_std"]
    for name, (mean, std) in metadata["target_scalers"].items():
        scaler = TargetScaler()
        scaler.mean_, scaler.std_ = float(mean), float(std)
        trainer.target_scalers[name] = scaler
    model_class = InnerLoopGNN if kind == "inner" else GlobalGNN
    model = model_class(
        in_features=int(metadata["input_dim"]),
        hidden=int(metadata["hidden"]),
        num_layers=int(metadata["num_layers"]),
        conv_type=metadata["conv_type"],
    )
    state = {
        f"param_{index}": blob[f"{prefix}.param_{index}"]
        for index in range(int(metadata["num_parameters"]))
    }
    model.load_state_dict(state)
    trainer.model = model
    return trainer


def save_model(
    model: HierarchicalQoRModel, path: str | Path, *, warm_caches: bool = True
) -> Path:
    """Save a trained hierarchical model to ``path`` (``.npz``).

    With ``warm_caches`` (the default) the archive also carries whatever the
    model's inference caches currently hold — run a sweep before saving and
    the reloaded service answers that sweep from the memo (see the module
    docstring for the invalidation rules).
    """
    path = Path(path)
    blob: dict[str, np.ndarray] = {}
    manifest: dict[str, dict] = {
        "config": {
            "conv_type": model.config.conv_type,
            "hidden": model.config.hidden,
            "num_layers": model.config.num_layers,
        },
    }
    for name, trainer in (
        ("p", model.trainer_p), ("np", model.trainer_np), ("g", model.trainer_g)
    ):
        if trainer is not None:
            manifest[name] = _pack_trainer(name, trainer, blob)
    blob[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    if warm_caches:
        payload = {
            "version": WARM_CACHE_VERSION,
            "weights_digest": _weights_digest(blob),
            **model.export_warm_caches(),
        }
        blob[_WARM_CACHE_KEY] = np.frombuffer(
            json.dumps(payload).encode("utf-8"), dtype=np.uint8
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    # write-then-rename: the warm-cache workflow rewrites the model file
    # after every sweep, and an interrupted in-place write would destroy the
    # only copy of the trained weights
    staging = path.with_name(path.name + ".tmp.npz")  # savez appends .npz
    try:
        np.savez_compressed(staging, **blob)
        os.replace(staging, path)
    finally:
        if staging.exists():
            staging.unlink()
    return path


def model_weights_digest(path: str | Path) -> str:
    """The weights digest of a saved model archive.

    Recomputes :func:`_weights_digest` over the archive's arrays — the same
    digest ``save_model`` embeds in warm-cache payloads — so external
    artifacts (DSE sweep checkpoints most prominently) can bind themselves
    to the exact weights they were produced with and be discarded when the
    model file changes underneath them.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved model at {path}")
    with np.load(path, allow_pickle=False) as archive:
        blob = {key: archive[key] for key in archive.files}
    return _weights_digest(blob)


def peek_manifest(path: str | Path) -> dict:
    """Read only the manifest of a saved model archive.

    Decompresses a single (small) archive member, so it is cheap enough for
    eager validation: the sharded DSE coordinator calls this before spawning
    any worker, turning "model file missing / corrupt / untrained" into an
    immediate error instead of one crash per worker.  Raises
    :class:`FileNotFoundError` for a missing file and :class:`ValueError`
    for an archive without a manifest.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved model at {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _MANIFEST_KEY not in archive.files:
            raise ValueError(f"{path} is not a saved model (no manifest)")
        return json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))


def load_model(
    path: str | Path, *, warm_caches: bool = True, precision: str = "float64"
) -> HierarchicalQoRModel:
    """Load a hierarchical model saved with :func:`save_model`.

    With ``warm_caches`` (the default) any persisted construction cache and
    prediction memo in the archive are re-attached to the model — unless the
    blob's format version or weights digest does not match, in which case it
    is silently discarded (a stale cache must never influence predictions).

    ``precision="float32"`` switches the restored model into the cheap
    inference tier after unpacking (weights are cast once; the archive and
    its digest always describe the float64 master copy).  The tier switch
    happens *before* the warm caches attach, so a float64-produced
    prediction memo keeps serving — its entries are exact where float32
    recomputation would only be within the relaxed equivalence bound.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved model at {path}")
    with np.load(path, allow_pickle=False) as archive:
        # materialize once: NpzFile decompresses on every access, and both
        # the digest check and the trainer unpacking read every array
        blob = {key: archive[key] for key in archive.files}
    manifest = json.loads(bytes(blob[_MANIFEST_KEY]).decode("utf-8"))
    config = HierarchicalModelConfig(
        conv_type=manifest["config"]["conv_type"],
        hidden=int(manifest["config"]["hidden"]),
        num_layers=int(manifest["config"]["num_layers"]),
    )
    model = HierarchicalQoRModel(config)
    if "p" in manifest:
        model.trainer_p = _unpack_trainer("p", manifest["p"], blob, "inner")
    if "np" in manifest:
        model.trainer_np = _unpack_trainer("np", manifest["np"], blob, "inner")
    if "g" in manifest:
        model.trainer_g = _unpack_trainer("g", manifest["g"], blob, "global")
    model.set_precision(precision)
    if warm_caches and _WARM_CACHE_KEY in blob:
        payload = json.loads(bytes(blob[_WARM_CACHE_KEY]).decode("utf-8"))
        if (
            payload.get("version") == WARM_CACHE_VERSION
            and payload.get("weights_digest") == _weights_digest(blob)
        ):
            model.import_warm_caches(payload)
    return model


__all__ = [
    "save_model", "load_model", "peek_manifest", "model_weights_digest",
    "WARM_CACHE_VERSION",
]
