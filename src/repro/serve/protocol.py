"""Wire protocol of the QoR prediction service.

The daemon (:mod:`repro.serve.server`) speaks newline-delimited JSON over a
plain TCP stream: every request is one JSON object on one line, every
response is one JSON object on one line.  This module is the shared
vocabulary — request/response helpers, the structured error codes, and the
JSON representation of a :class:`~repro.frontend.pragmas.PragmaConfig` —
used by the server, the blocking client and the tests, so the three can
never drift apart.

A ``predict`` request looks like::

    {"type": "predict", "id": 7, "kernel": "gemm",
     "configs": [{"loops": {"L0_0": {"pipeline": true, "unroll": 2}},
                  "arrays": {"A": {"type": "cyclic", "factor": 4, "dim": 2}}}]}

``source`` (raw HLS-C text) may replace ``kernel``; configurations may also
be given in the CLI's spec-string form
(``{"loops": ["L0_0=pipeline+unroll:2"], "arrays": ["A=cyclic:4:2"]}``).
The response echoes ``id`` and carries one metrics dict per configuration::

    {"id": 7, "ok": true, "results": [{"latency": ..., "lut": ..., ...}]}

Failures are structured: ``{"id": 7, "ok": false, "error": "<code>",
"message": "..."}`` with ``error`` one of :data:`ERROR_CODES` — clients
dispatch on the code (``overloaded`` means back off and retry, ``draining``
means the daemon is shutting down) and show the message to humans.
"""

from __future__ import annotations

import json

from repro.frontend.pragmas import (
    ArrayDirective,
    LoopDirective,
    PartitionType,
    PragmaConfig,
)

#: structured error codes a response's ``error`` field may carry
ERROR_CODES: tuple[str, ...] = (
    "bad-request",     # malformed JSON / unknown type / invalid config payload
    "unknown-kernel",  # ``kernel`` names nothing in the registry
    "overloaded",      # admission control rejected the request; retry later
    "draining",        # the daemon is shutting down; no new work accepted
    "internal",        # the prediction itself failed; message has the cause
)


class ProtocolError(ValueError):
    """A request payload that cannot be interpreted (maps to ``bad-request``)."""


def encode_message(message: dict) -> bytes:
    """Serialize one protocol message to its wire form (JSON + newline)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes | str) -> dict:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` on anything that is not a single JSON
    object — the server maps that to a ``bad-request`` response instead of
    dropping the connection.
    """
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def error_response(request_id, code: str, message: str) -> dict:
    """A structured failure response (``code`` must be in ERROR_CODES)."""
    assert code in ERROR_CODES, code
    return {"id": request_id, "ok": False, "error": code, "message": message}


# --------------------------------------------------------------------------- #
# PragmaConfig <-> JSON
# --------------------------------------------------------------------------- #
def config_to_payload(config: PragmaConfig) -> dict:
    """The canonical JSON form of one design point (see module docstring)."""
    loops = {
        label: {
            "pipeline": directive.pipeline,
            "ii": directive.ii,
            "unroll": directive.unroll_factor,
            "flatten": directive.flatten,
        }
        for label, directive in config.loops
    }
    arrays = {
        name: {
            "type": directive.partition_type.value,
            "factor": directive.factor,
            "dim": directive.dim,
        }
        for name, directive in config.arrays
    }
    return {"loops": loops, "arrays": arrays}


def _loop_from_spec(spec: dict) -> LoopDirective:
    if not isinstance(spec, dict):
        raise ProtocolError(f"loop directive must be an object, got {spec!r}")
    try:
        return LoopDirective(
            pipeline=bool(spec.get("pipeline", False)),
            ii=int(spec.get("ii", 0)),
            unroll_factor=int(spec.get("unroll", spec.get("unroll_factor", 1))),
            flatten=bool(spec.get("flatten", False)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid loop directive {spec!r}: {exc}") from exc


def _array_from_spec(spec: dict) -> ArrayDirective:
    if not isinstance(spec, dict):
        raise ProtocolError(f"array directive must be an object, got {spec!r}")
    try:
        return ArrayDirective(
            partition_type=PartitionType(str(spec.get("type", "cyclic")).lower()),
            factor=int(spec.get("factor", 1)),
            dim=int(spec.get("dim", 1)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid array directive {spec!r}: {exc}") from exc


def config_from_payload(payload) -> PragmaConfig:
    """Parse one configuration payload into a :class:`PragmaConfig`.

    Accepts the canonical dict form produced by :func:`config_to_payload`,
    the CLI's spec-string form (``loops``/``arrays`` as lists of strings
    like ``"L0=pipeline+unroll:2"`` / ``"A=cyclic:4:2"``), ``None`` / ``{}``
    for the baseline configuration, and raises :class:`ProtocolError` for
    everything else.
    """
    if payload is None:
        return PragmaConfig()
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"configuration must be a JSON object, got {type(payload).__name__}"
        )
    loops_payload = payload.get("loops")
    arrays_payload = payload.get("arrays")
    if isinstance(loops_payload, list) or isinstance(arrays_payload, list):
        # CLI spec-string form; reuse the CLI parser so the two notations
        # can never diverge (lazy import: repro.cli imports repro.serve).
        # A missing/empty half ({} or None alongside a spec list) means
        # "no directives of that kind", matching the canonical form.
        loop_specs = loops_payload if loops_payload else []
        array_specs = arrays_payload if arrays_payload else []
        from repro.cli import parse_config

        if not isinstance(loop_specs, list) or not all(
            isinstance(item, str) for item in loop_specs
        ):
            raise ProtocolError(f"invalid loop spec list {loops_payload!r}")
        if not isinstance(array_specs, list) or not all(
            isinstance(item, str) for item in array_specs
        ):
            raise ProtocolError(f"invalid array spec list {arrays_payload!r}")
        try:
            return parse_config(loop_specs, array_specs)
        except SystemExit as exc:
            raise ProtocolError(f"invalid directive spec: {exc}") from exc
    loops_payload = loops_payload or {}
    arrays_payload = arrays_payload or {}
    if not isinstance(loops_payload, dict) or not isinstance(arrays_payload, dict):
        raise ProtocolError("loops/arrays must both be objects (or both lists)")
    loops = {
        str(label): _loop_from_spec(spec)
        for label, spec in loops_payload.items()
    }
    arrays = {
        str(name): _array_from_spec(spec)
        for name, spec in arrays_payload.items()
    }
    return PragmaConfig.from_dicts(loops, arrays)


__all__ = [
    "ERROR_CODES", "ProtocolError", "encode_message", "decode_message",
    "error_response", "config_to_payload", "config_from_payload",
]
