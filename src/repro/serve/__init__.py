"""QoR prediction as a service.

One resident :class:`~repro.core.predictor.QoRPredictor` behind a
newline-delimited-JSON TCP daemon, with a cross-request micro-batcher that
merges concurrent clients' configurations into shared ``predict_batch``
passes.  See :mod:`repro.serve.server` for the architecture and
``repro-qor serve`` for the CLI entry point.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.client import QoRClient, ServeError
from repro.serve.protocol import (
    ERROR_CODES,
    ProtocolError,
    config_from_payload,
    config_to_payload,
    decode_message,
    encode_message,
    error_response,
)
from repro.serve.server import QoRServer

__all__ = [
    "BatcherStats", "MicroBatcher", "QoRClient", "ServeError", "QoRServer",
    "ERROR_CODES", "ProtocolError", "config_from_payload",
    "config_to_payload", "decode_message", "encode_message",
    "error_response",
]
