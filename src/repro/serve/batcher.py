"""The cross-request micro-batcher at the heart of the serving daemon.

The batched inference engine (:meth:`HierarchicalQoRModel.predict_batch`)
amortizes graph construction and GNN matmuls across a whole design space,
but a network service receives that space *scattered across clients*: many
connections, each asking about a handful of configurations.  Scoring each
request alone would forfeit exactly the batching the engine was built for.

:class:`MicroBatcher` recovers it.  Requests that arrive within a short
coalescing window (default ~2 ms, flushed early once ``max_batch``
configurations have accumulated) are merged: all configurations for the
same kernel source become **one** disjoint-union ``predict_batch`` pass,
and the results are demultiplexed back onto each request's future.  The
window is the classic micro-batching trade — a fixed, bounded latency floor
purchased for multiplicative throughput under concurrency.

Model calls run on a dedicated single-thread executor, which is what makes
a resident predictor safe to share between clients at all: the model's
memo dictionaries are not thread-safe, so the batcher **serializes** every
``predict_batch`` (and every ``cache_stats``) on that one inference thread
while the asyncio front end keeps accepting and parsing traffic.

With a ``signature_fn`` (the server wires
:meth:`QoRPredictor.canonical_signature`), each flushed pass also
**deduplicates across requests**: configurations whose effective
(canonicalized) directives coincide are scored once and the shared result
is fanned back out to every submitter — the serve-side face of the design
-space dedup algebra in :mod:`repro.dse.space`.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field


@dataclass
class _Pending:
    """One admitted request waiting for a flush."""

    source: str
    configs: list
    future: asyncio.Future


@dataclass
class BatcherStats:
    """Counters describing how well cross-request coalescing is working."""

    #: requests admitted into the batcher
    requests: int = 0
    #: configurations admitted (sum of request sizes)
    configs: int = 0
    #: ``predict_batch`` passes issued
    batches: int = 0
    #: passes that merged more than one request (the coalescing win)
    coalesced_batches: int = 0
    #: largest single pass, in configurations
    max_batch_configs: int = 0
    #: configurations answered from another config's score in the same pass
    #: (identical canonical signature); only counted with a ``signature_fn``
    duplicate_configs: int = 0
    #: configurations per pass -> number of passes of that size
    batch_size_histogram: dict[int, int] = field(default_factory=dict)

    def record_batch(self, num_requests: int, num_configs: int) -> None:
        """Account one flushed ``predict_batch`` pass."""
        self.batches += 1
        if num_requests > 1:
            self.coalesced_batches += 1
        self.max_batch_configs = max(self.max_batch_configs, num_configs)
        self.batch_size_histogram[num_configs] = (
            self.batch_size_histogram.get(num_configs, 0) + 1
        )

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (histogram keys become strings)."""
        return {
            "requests": self.requests,
            "configs": self.configs,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "max_batch_configs": self.max_batch_configs,
            "duplicate_configs": self.duplicate_configs,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            },
        }


class MicroBatcher:
    """Coalesce concurrent prediction requests into shared batched passes.

    ``predict_fn(source, configs) -> list[dict]`` is the blocking scorer
    (typically ``QoRPredictor.predict_source_batch``); it only ever runs on
    the batcher's single inference thread.  ``window_seconds`` is how long
    the first request of a batch waits for company; ``max_batch`` flushes a
    batch early once that many configurations have accumulated, bounding
    both latency and the size of one disjoint-union pass.

    ``signature_fn(source, config) -> str``, when given, deduplicates each
    pass: configurations sharing a signature are scored once and the result
    is copied back to every duplicate (counted in
    ``stats.duplicate_configs``).  It runs on the inference thread too —
    the canonical implementation lowers source text through the predictor's
    (non-thread-safe) memo.
    """

    def __init__(
        self,
        predict_fn,
        *,
        window_seconds: float = 0.002,
        max_batch: int = 512,
        executor: ThreadPoolExecutor | None = None,
        signature_fn=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._predict_fn = predict_fn
        self._signature_fn = signature_fn
        self.window_seconds = max(0.0, window_seconds)
        self.max_batch = max_batch
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="qor-inference"
        )
        self._owns_executor = executor is None
        self._queue: asyncio.Queue[_Pending | None] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._stopping = False
        self.stats = BatcherStats()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the batch loop on the running event loop (idempotent)."""
        if self._task is None or self._task.done():
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="qor-micro-batcher"
            )

    async def stop(self) -> None:
        """Flush everything already admitted, then stop the batch loop.

        Part of the daemon's graceful drain: requests admitted before the
        stop are still scored and answered; the loop exits once the queue
        is empty and the final flush has completed.
        """
        if self._task is None:
            return
        self._stopping = True
        await self._queue.put(None)  # wake the loop if it is idle
        await self._task
        self._task = None
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    async def run_serialized(self, fn, *args):
        """Run ``fn(*args)`` on the inference thread and await the result.

        The escape hatch for non-batch work that still must not race the
        model — ``cache_stats`` snapshots, precision switches.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(self, source: str, configs: list) -> list[dict]:
        """Queue one request and await its demultiplexed results.

        Raises whatever the underlying ``predict_fn`` raised for the batch
        the request rode in (the server maps that to an ``internal`` error
        response).  Admission control is the *caller's* job — the batcher
        itself never rejects.
        """
        if self._task is None or self._task.done():
            raise RuntimeError("MicroBatcher is not running (call start())")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        entry = _Pending(source=source, configs=list(configs), future=future)
        self.stats.requests += 1
        self.stats.configs += len(entry.configs)
        await self._queue.put(entry)
        return await future

    # ------------------------------------------------------------------ #
    # batch loop
    # ------------------------------------------------------------------ #
    async def _collect(self) -> list[_Pending]:
        """Gather one batch: first entry, then company within the window."""
        first = await self._queue.get()
        if first is None:
            return []
        batch = [first]
        size = len(first.configs)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.window_seconds
        while size < self.max_batch:
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                entry = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                break
            if entry is None:  # stop sentinel mid-window: flush what we have
                break
            batch.append(entry)
            size += len(entry.configs)
        return batch

    async def _run(self) -> None:
        """The batch loop: collect -> flush until stopped and drained."""
        while True:
            if self._stopping and self._queue.empty():
                break
            batch = await self._collect()
            if batch:
                await self._flush(batch)

    def _score_deduped(self, source: str, configs: list) -> tuple[list, int]:
        """Score one pass with signature dedup (inference thread only).

        Computes the canonical signature of every configuration, scores one
        representative per signature, and copies its result to each
        duplicate.  Returns ``(results, num_duplicates)`` with ``results``
        aligned to ``configs`` (fresh dicts per slot, so per-request
        consumers can never alias each other's payloads).
        """
        signatures = [self._signature_fn(source, config) for config in configs]
        unique_index: dict[str, int] = {}
        unique_configs: list = []
        for signature, config in zip(signatures, configs):
            if signature not in unique_index:
                unique_index[signature] = len(unique_configs)
                unique_configs.append(config)
        scored = self._predict_fn(source, unique_configs)
        results = [dict(scored[unique_index[s]]) for s in signatures]
        return results, len(configs) - len(unique_configs)

    async def _flush(self, batch: list[_Pending]) -> None:
        """Score one coalesced batch and demultiplex results per request.

        Entries are grouped by kernel source; each group becomes one
        disjoint-union ``predict_batch`` pass on the inference thread (with
        ``signature_fn``, one pass over the *unique canonical signatures*
        of the group).  Requests whose clients vanished (cancelled futures)
        are still scored — their work was already merged — but their
        results are simply dropped.
        """
        groups: dict[str, list[_Pending]] = {}
        for entry in batch:
            groups.setdefault(entry.source, []).append(entry)
        loop = asyncio.get_running_loop()
        for source, entries in groups.items():
            configs = [
                config for entry in entries for config in entry.configs
            ]
            self.stats.record_batch(len(entries), len(configs))
            try:
                if self._signature_fn is not None:
                    results, duplicates = await loop.run_in_executor(
                        self._executor, self._score_deduped, source, configs
                    )
                    self.stats.duplicate_configs += duplicates
                else:
                    results = await loop.run_in_executor(
                        self._executor, self._predict_fn, source, configs
                    )
            except Exception as exc:  # noqa: BLE001 - forwarded per request
                for entry in entries:
                    if not entry.future.done():
                        entry.future.set_exception(exc)
                continue
            offset = 0
            for entry in entries:
                share = results[offset:offset + len(entry.configs)]
                offset += len(entry.configs)
                if not entry.future.done():
                    entry.future.set_result(share)


__all__ = ["MicroBatcher", "BatcherStats"]
