"""The QoR prediction daemon: one resident predictor, many clients.

Everything upstream of this module assumed one process per sweep: load the
model, score a design space, exit — paying model load, source lowering and
cache warm-up on every invocation.  :class:`QoRServer` amortizes all of it
by keeping a single :class:`~repro.core.predictor.QoRPredictor` (and its
warm caches) resident and serving requests over newline-delimited JSON TCP
(see :mod:`repro.serve.protocol` for the wire format).

The architecture is an asyncio front end over a single inference thread:

* **asyncio front end** — accepts connections, parses/validates requests
  and writes responses concurrently; it never touches the model.
* **micro-batcher** (:mod:`repro.serve.batcher`) — coalesces concurrent
  requests into shared ``predict_batch`` passes and, crucially,
  *serializes* every model call on one dedicated thread: the predictor's
  memo dictionaries are plain dicts and are not thread-safe.
* **admission control** — a bounded count of pending configurations
  (``max_pending``); past it, new work is rejected immediately with a
  structured ``overloaded`` error rather than queued into unbounded memory.
* **graceful drain** — on SIGINT/SIGTERM (wired by the CLI) the server
  stops admitting (``draining`` errors), finishes every in-flight request,
  flushes the batcher and closes its sockets, then lets the process exit 0.
* **connection hygiene** — a connection silent for ``idle_timeout`` seconds
  with nothing in flight is closed (abandoned sockets must not accumulate
  in a long-lived daemon; a connection *waiting on its own request* is
  never culled), and a request line over ``max_line_bytes`` is answered
  with a structured ``bad-request`` before the connection is dropped
  instead of being torn down silently.
"""

from __future__ import annotations

import asyncio
import logging

from repro.core.predictor import QoRPredictor
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    ProtocolError,
    config_from_payload,
    decode_message,
    encode_message,
    error_response,
)

logger = logging.getLogger(__name__)

#: generous readline limit — a request line carries at most a kernel source
#: plus a few hundred config payloads, well under a megabyte in practice
MAX_LINE_BYTES = 8 * 1024 * 1024


class QoRServer:
    """Serve QoR predictions from one resident predictor over TCP."""

    def __init__(
        self,
        predictor: QoRPredictor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_ms: float = 2.0,
        max_batch: int = 512,
        max_pending: int = 4096,
        idle_timeout: float | None = 300.0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ):
        self.predictor = predictor
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.idle_timeout = idle_timeout
        self.max_line_bytes = max_line_bytes
        # signature_fn makes the batcher dedup-aware: HLS-equivalent pragma
        # configurations submitted by different clients in one window are
        # scored once under their shared canonical signature
        self.batcher = MicroBatcher(
            predictor.predict_source_batch,
            window_seconds=batch_window_ms / 1000.0,
            max_batch=max_batch,
            signature_fn=predictor.canonical_signature,
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._pending_configs = 0
        self._inflight: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        # server-level counters (the batcher keeps its own)
        self.requests = 0
        self.rejected_overload = 0
        self.rejected_draining = 0
        self.bad_requests = 0
        self.internal_errors = 0
        self.idle_disconnects = 0
        self.oversize_lines = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and start the batch loop."""
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=self.max_line_bytes,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative when port 0 was requested."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, refuse new work, close.

        Safe to call more than once; later calls await the same teardown.
        New requests arriving mid-drain get a structured ``draining`` error
        while everything admitted beforehand is scored and answered.
        """
        self._draining = True
        if self._server is not None:
            # stop accepting *new connections*; existing ones stay open so
            # their in-flight responses can be written
            self._server.close()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        await self.batcher.stop()
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._connections.clear()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then drain (the CLI's main loop)."""
        await stop.wait()
        await self.drain()

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    async def stats_payload(self) -> dict:
        """Server counters + batcher stats + the predictor's cache_stats.

        The cache snapshot runs on the inference thread so it cannot race a
        ``predict_batch`` that is mutating the memos.
        """
        cache_stats = await self.batcher.run_serialized(
            self.predictor.cache_stats
        )
        return {
            "server": {
                "requests": self.requests,
                "rejected_overload": self.rejected_overload,
                "rejected_draining": self.rejected_draining,
                "bad_requests": self.bad_requests,
                "internal_errors": self.internal_errors,
                "idle_disconnects": self.idle_disconnects,
                "oversize_lines": self.oversize_lines,
                "idle_timeout": self.idle_timeout,
                "queue_depth_configs": self._pending_configs,
                "max_pending_configs": self.max_pending,
                "draining": self._draining,
                "connections": len(self._connections),
            },
            "batcher": self.batcher.stats.as_dict(),
            "caches": {key: int(value) for key, value in cache_stats.items()},
        }

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection read loop: one task per request line.

        The loop enforces the two per-connection bounds: ``idle_timeout``
        seconds of silence close the connection *unless it has requests in
        flight* (a client blocked on a slow batch is waiting on us, not
        idle), and a line over ``max_line_bytes`` is answered with a
        structured ``bad-request`` before closing (the stream cannot be
        resynchronized past a discarded partial line).
        """
        self._connections.add(writer)
        write_lock = asyncio.Lock()  # responses interleave per connection
        conn_inflight: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    if self.idle_timeout is None:
                        line = await reader.readline()
                    else:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=self.idle_timeout
                        )
                except asyncio.TimeoutError:
                    if any(not task.done() for task in conn_inflight):
                        continue  # quiet but waiting on its own requests
                    self.idle_disconnects += 1
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # StreamReader raises ValueError for an over-limit line
                    # (the partial line is discarded, so close afterwards)
                    self.oversize_lines += 1
                    self.bad_requests += 1
                    await self._send(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            "bad-request",
                            f"request line exceeds {self.max_line_bytes} "
                            "bytes",
                        ),
                    )
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._handle_request(line, writer, write_lock)
                )
                self._inflight.add(task)
                conn_inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                task.add_done_callback(conn_inflight.discard)
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: dict,
    ) -> None:
        """Write one response under the connection's write lock."""
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(encode_message(message))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client vanished; nothing useful to do

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Decode one request line and dispatch it by type."""
        self.requests += 1
        request_id = None
        try:
            message = decode_message(line)
        except ProtocolError as exc:
            self.bad_requests += 1
            await self._send(
                writer, write_lock, error_response(None, "bad-request", str(exc))
            )
            return
        request_id = message.get("id")
        kind = message.get("type", "predict")
        if kind == "ping":
            await self._send(
                writer, write_lock, {"id": request_id, "ok": True, "pong": True}
            )
            return
        if kind == "stats":
            payload = await self.stats_payload()
            payload.update({"id": request_id, "ok": True})
            await self._send(writer, write_lock, payload)
            return
        if kind != "predict":
            self.bad_requests += 1
            await self._send(
                writer,
                write_lock,
                error_response(
                    request_id, "bad-request", f"unknown request type {kind!r}"
                ),
            )
            return
        await self._handle_predict(message, request_id, writer, write_lock)

    def _resolve_source(self, message: dict) -> str:
        """The kernel source text a predict request refers to."""
        source = message.get("source")
        kernel = message.get("kernel")
        if source is not None and kernel is not None:
            raise ProtocolError("give either 'source' or 'kernel', not both")
        if source is not None:
            if not isinstance(source, str) or not source.strip():
                raise ProtocolError("'source' must be a non-empty string")
            return source
        if kernel is None:
            raise ProtocolError("predict request needs 'source' or 'kernel'")
        if not isinstance(kernel, str):
            raise ProtocolError("'kernel' must be a string")
        from repro.kernels import kernel_source

        return kernel_source(kernel)  # KeyError -> unknown-kernel below

    async def _handle_predict(
        self,
        message: dict,
        request_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Validate, admit and score one predict request."""
        try:
            source = self._resolve_source(message)
            raw_configs = message.get("configs")
            if raw_configs is None:
                raw_configs = [message.get("config")]
            if not isinstance(raw_configs, list):
                raise ProtocolError("'configs' must be a list")
            if not raw_configs:
                raise ProtocolError("'configs' must not be empty")
            configs = [config_from_payload(item) for item in raw_configs]
        except KeyError as exc:
            self.bad_requests += 1
            await self._send(
                writer,
                write_lock,
                error_response(request_id, "unknown-kernel", str(exc)),
            )
            return
        except ProtocolError as exc:
            self.bad_requests += 1
            await self._send(
                writer,
                write_lock,
                error_response(request_id, "bad-request", str(exc)),
            )
            return

        # admission control: drain beats overload, and both are decided
        # *before* the work touches the batcher
        if self._draining:
            self.rejected_draining += 1
            await self._send(
                writer,
                write_lock,
                error_response(
                    request_id, "draining", "server is shutting down"
                ),
            )
            return
        if self._pending_configs + len(configs) > self.max_pending:
            self.rejected_overload += 1
            await self._send(
                writer,
                write_lock,
                error_response(
                    request_id,
                    "overloaded",
                    f"pending queue full "
                    f"({self._pending_configs}/{self.max_pending} configs); "
                    "retry later",
                ),
            )
            return

        self._pending_configs += len(configs)
        try:
            results = await self.batcher.submit(source, configs)
        except Exception as exc:  # noqa: BLE001 - reported as internal error
            self.internal_errors += 1
            logger.exception("prediction failed for request %r", request_id)
            await self._send(
                writer,
                write_lock,
                error_response(
                    request_id, "internal", f"{type(exc).__name__}: {exc}"
                ),
            )
            return
        finally:
            self._pending_configs -= len(configs)
        await self._send(
            writer,
            write_lock,
            {"id": request_id, "ok": True, "results": results},
        )


__all__ = ["QoRServer", "MAX_LINE_BYTES"]
