"""A small blocking client for the QoR prediction daemon.

:class:`QoRClient` is the reference consumer of the wire protocol
(:mod:`repro.serve.protocol`): plain sockets, one request per call, no
asyncio required on the caller's side.  The load-generator benchmark and
the serving tests drive the daemon through it, and it doubles as the
example for anyone integrating from another process::

    with QoRClient("127.0.0.1", 9178) as client:
        metrics = client.predict_kernel("gemm", [config])[0]

Structured server failures surface as :class:`ServeError` with the
protocol error code on ``.code`` (``"overloaded"`` means back off and
retry; ``"draining"`` means the daemon is shutting down).
"""

from __future__ import annotations

import socket

from repro.frontend.pragmas import PragmaConfig
from repro.serve.protocol import (
    config_to_payload,
    decode_message,
    encode_message,
)


class ServeError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = message


class QoRClient:
    """Blocking newline-delimited-JSON client for :class:`QoRServer`."""

    def __init__(self, host: str, port: int, *, timeout: float | None = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QoRClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, message: dict) -> dict:
        """Send one raw request and block for its response.

        Fills in ``id`` when absent.  Raises :class:`ServeError` for a
        structured failure and :class:`ConnectionError` if the daemon went
        away mid-request.
        """
        if "id" not in message:
            self._next_id += 1
            message = {**message, "id": self._next_id}
        self._sock.sendall(encode_message(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_message(line)
        if not response.get("ok", False):
            raise ServeError(
                response.get("error", "internal"),
                response.get("message", "unknown server error"),
            )
        return response

    # ------------------------------------------------------------------ #
    # the protocol verbs
    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.request({"type": "ping"}).get("pong"))

    def stats(self) -> dict:
        """Server counters, batcher stats and predictor cache stats."""
        response = self.request({"type": "stats"})
        return {
            key: value
            for key, value in response.items()
            if key not in ("id", "ok")
        }

    def predict_kernel(
        self, kernel: str, configs: list[PragmaConfig | None]
    ) -> list[dict[str, float]]:
        """Score configurations of a registry kernel, one metrics dict each."""
        response = self.request({
            "type": "predict",
            "kernel": kernel,
            "configs": [self._config_payload(config) for config in configs],
        })
        return response["results"]

    def predict_source(
        self, source: str, configs: list[PragmaConfig | None]
    ) -> list[dict[str, float]]:
        """Score configurations of raw HLS-C source text."""
        response = self.request({
            "type": "predict",
            "source": source,
            "configs": [self._config_payload(config) for config in configs],
        })
        return response["results"]

    @staticmethod
    def _config_payload(config) -> dict | None:
        """Wire form of one configuration argument."""
        if config is None:
            return None
        if isinstance(config, PragmaConfig):
            return config_to_payload(config)
        return config  # already a wire payload (dict/spec-string form)


__all__ = ["QoRClient", "ServeError"]
