"""A small blocking client for the QoR prediction daemon.

:class:`QoRClient` is the reference consumer of the wire protocol
(:mod:`repro.serve.protocol`): plain sockets, one request per call, no
asyncio required on the caller's side.  The load-generator benchmark and
the serving tests drive the daemon through it, and it doubles as the
example for anyone integrating from another process::

    with QoRClient("127.0.0.1", 9178) as client:
        metrics = client.predict_kernel("gemm", [config])[0]

**Retry policy.**  The daemon's admission control answers with structured
``overloaded`` / ``draining`` errors, and a restarting daemon refuses
connections for a moment — all transient, so the client absorbs them
instead of surfacing every blip to the sweep driving it.  Connecting
retries with exponential backoff plus jitter (:func:`backoff_delay`, up to
``connect_attempts``); a request retries on a dropped connection
(reconnect and resend — every protocol verb is idempotent: predictions are
pure functions of the design, ping/stats are reads) and on the retryable
error codes, bounded by ``request_attempts`` and a per-request wall-clock
``request_deadline``.  What still fails after that surfaces as before —
:class:`ServeError` with the protocol code on ``.code`` (plus how many
tries it took on ``.attempts``) or :class:`ConnectionError` — so callers
only ever see errors that genuinely need a human.
"""

from __future__ import annotations

import random
import socket
import time

from repro.frontend.pragmas import PragmaConfig
from repro.serve.protocol import (
    config_to_payload,
    decode_message,
    encode_message,
)

#: structured error codes worth retrying: both mean "the server is alive
#: but momentarily unwilling" — overload clears as the batcher drains, and
#: a draining server is typically being rotated for a fresh one
RETRYABLE_CODES = ("overloaded", "draining")

#: indirection over :func:`time.sleep` so tests can count/skip real delays
_sleep = time.sleep


def backoff_delay(
    attempt: int,
    *,
    base: float,
    cap: float,
    rng: random.Random,
) -> float:
    """Exponential backoff with full jitter for retry ``attempt`` (1-based).

    The deterministic schedule ``base * 2**(attempt-1)`` is capped at
    ``cap`` and scaled by a uniform factor in ``[0.5, 1.0]`` — jitter keeps
    a fleet of clients that failed together from retrying in lockstep
    against a recovering server.
    """
    return min(cap, base * (2.0 ** (attempt - 1))) * rng.uniform(0.5, 1.0)


class ServeError(RuntimeError):
    """A structured error response from the daemon.

    ``attempts`` counts how many tries the client spent before giving up
    (1 for a non-retryable code answered on the first try).
    """

    def __init__(self, code: str, message: str, *, attempts: int = 1):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = message
        self.attempts = attempts


class QoRClient:
    """Blocking newline-delimited-JSON client for :class:`QoRServer`.

    Parameters beyond host/port tune the retry policy (see the module
    docstring): ``timeout`` is the per-socket-operation timeout,
    ``connect_attempts`` bounds connection retries, ``request_attempts``
    bounds per-request retries (connection drops and retryable error codes
    alike), ``retry_base_delay``/``retry_max_delay`` shape the backoff and
    ``request_deadline`` caps one request's total wall clock across all its
    retries (``None`` = attempts-bounded only).  ``rng`` injects a seeded
    jitter source for deterministic tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 60.0,
        connect_attempts: int = 5,
        request_attempts: int = 4,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 2.0,
        request_deadline: float | None = 60.0,
        rng: random.Random | None = None,
    ):
        if connect_attempts < 1:
            raise ValueError("connect_attempts must be >= 1")
        if request_attempts < 1:
            raise ValueError("request_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_attempts = connect_attempts
        self.request_attempts = request_attempts
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.request_deadline = request_deadline
        self._rng = rng if rng is not None else random.Random()
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0
        self._connect()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        """(Re)establish the connection, with backoff between attempts."""
        self._teardown()
        last: Exception | None = None
        for attempt in range(1, self.connect_attempts + 1):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._file = self._sock.makefile("rb")
                return
            except OSError as exc:
                last = exc
                self._teardown()
                if attempt < self.connect_attempts:
                    _sleep(backoff_delay(
                        attempt,
                        base=self.retry_base_delay,
                        cap=self.retry_max_delay,
                        rng=self._rng,
                    ))
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.connect_attempts} attempts: {last}"
        )

    def _teardown(self) -> None:
        """Drop the current connection, swallowing close errors."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._teardown()

    def __enter__(self) -> "QoRClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _attempt(self, message: dict) -> dict:
        """One send/receive round trip on the current connection."""
        if self._sock is None:
            self._connect()
        try:
            self._sock.sendall(encode_message(message))
            line = self._file.readline()
        except OSError as exc:
            raise ConnectionError(
                f"connection failed mid-request: {exc}"
            ) from exc
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_message(line)
        if not response.get("ok", False):
            raise ServeError(
                response.get("error", "internal"),
                response.get("message", "unknown server error"),
            )
        return response

    def request(self, message: dict) -> dict:
        """Send one raw request and block for its response, with retries.

        Fills in ``id`` when absent.  Dropped connections and retryable
        error codes (:data:`RETRYABLE_CODES`) are retried with backoff up
        to ``request_attempts`` tries within ``request_deadline`` seconds;
        resending is safe because every verb is idempotent.  Raises
        :class:`ServeError` (``.attempts`` filled in) for a structured
        failure that exhausted its retries — immediately for non-retryable
        codes — and :class:`ConnectionError` if the daemon stayed
        unreachable.
        """
        if "id" not in message:
            self._next_id += 1
            message = {**message, "id": self._next_id}
        deadline = (
            None if self.request_deadline is None
            else time.monotonic() + self.request_deadline
        )
        attempts = 0
        last: Exception | None = None
        while True:
            attempts += 1
            reconnect = False
            try:
                return self._attempt(message)
            except ConnectionError as exc:
                last = exc
                reconnect = True
            except ServeError as exc:
                exc.attempts = attempts
                if exc.code not in RETRYABLE_CODES:
                    raise
                last = exc
                # a draining server is going away; the replacement (if any)
                # answers on a fresh connection
                reconnect = exc.code == "draining"
            out_of_time = deadline is not None and time.monotonic() >= deadline
            if attempts >= self.request_attempts or out_of_time:
                if isinstance(last, ServeError):
                    raise last
                raise ConnectionError(
                    f"request failed after {attempts} attempts: {last}"
                ) from last
            _sleep(backoff_delay(
                attempts,
                base=self.retry_base_delay,
                cap=self.retry_max_delay,
                rng=self._rng,
            ))
            if reconnect:
                try:
                    self._connect()
                except ConnectionError as exc:
                    last = exc
                    # fall through: the bounded loop decides next iteration

    # ------------------------------------------------------------------ #
    # the protocol verbs
    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.request({"type": "ping"}).get("pong"))

    def stats(self) -> dict:
        """Server counters, batcher stats and predictor cache stats."""
        response = self.request({"type": "stats"})
        return {
            key: value
            for key, value in response.items()
            if key not in ("id", "ok")
        }

    def predict_kernel(
        self, kernel: str, configs: list[PragmaConfig | None]
    ) -> list[dict[str, float]]:
        """Score configurations of a registry kernel, one metrics dict each."""
        response = self.request({
            "type": "predict",
            "kernel": kernel,
            "configs": [self._config_payload(config) for config in configs],
        })
        return response["results"]

    def predict_source(
        self, source: str, configs: list[PragmaConfig | None]
    ) -> list[dict[str, float]]:
        """Score configurations of raw HLS-C source text."""
        response = self.request({
            "type": "predict",
            "source": source,
            "configs": [self._config_payload(config) for config in configs],
        })
        return response["results"]

    @staticmethod
    def _config_payload(config) -> dict | None:
        """Wire form of one configuration argument."""
        if config is None:
            return None
        if isinstance(config, PragmaConfig):
            return config_to_payload(config)
        return config  # already a wire payload (dict/spec-string form)


__all__ = ["QoRClient", "ServeError", "RETRYABLE_CODES", "backoff_delay"]
