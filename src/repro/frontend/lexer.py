"""Tokenizer for the HLS-C subset.

The front-end accepts a restricted C dialect sufficient to express the
loop-nest kernels used in the paper (Polybench / MachSuite style code):
``int``/``float`` scalars and constant-dimension arrays, ``for`` loops with
constant bounds, ``if``/``else``, arithmetic expressions and ``#pragma HLS``
directives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator

from repro.frontend.errors import LexerError


class TokenKind(Enum):
    """All token categories produced by :class:`Lexer`."""

    IDENT = auto()
    INT_LITERAL = auto()
    FLOAT_LITERAL = auto()
    KEYWORD = auto()
    PRAGMA = auto()       # a whole '#pragma ...' line, payload in ``text``
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    SEMICOLON = auto()
    COMMA = auto()
    # operators
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    ASSIGN = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    STAR_ASSIGN = auto()
    SLASH_ASSIGN = auto()
    PLUS_PLUS = auto()
    MINUS_MINUS = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    EQ = auto()
    NE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()
    QUESTION = auto()
    COLON = auto()
    EOF = auto()


KEYWORDS = frozenset(
    {"void", "int", "float", "double", "for", "if", "else", "return", "const"}
)

_SINGLE_CHAR_TOKENS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "%": TokenKind.PERCENT,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Converts HLS-C source text into a stream of :class:`Token` objects."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Return the full list of tokens, terminated by an ``EOF`` token."""
        return list(self._iter_tokens())

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self.line, self.column)
                return
            char = self.source[self.pos]
            if char == "#":
                yield self._lex_pragma()
            elif char.isalpha() or char == "_":
                yield self._lex_identifier()
            elif char.isdigit() or (char == "." and self._peek(1).isdigit()):
                yield self._lex_number()
            else:
                yield self._lex_operator()

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self.source[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_pragma(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] != "\n":
            self._advance()
        text = self.source[start:self.pos].strip()
        return Token(TokenKind.PRAGMA, text, line, column)

    def _lex_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        is_float = False
        while self.pos < len(self.source) and (
            self.source[self.pos].isdigit()
            or self.source[self.pos] in ".eE"
            or (self.source[self.pos] in "+-" and self.source[self.pos - 1] in "eE")
        ):
            if self.source[self.pos] in ".eE":
                is_float = True
            self._advance()
        # allow float suffix 'f'
        if self.pos < len(self.source) and self.source[self.pos] in "fF":
            is_float = True
            self._advance()
            text = self.source[start:self.pos - 1]
        else:
            text = self.source[start:self.pos]
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, line, column)

    def _lex_operator(self) -> Token:
        line, column = self.line, self.column
        char = self.source[self.pos]
        two = char + self._peek(1)
        two_char_tokens = {
            "+=": TokenKind.PLUS_ASSIGN,
            "-=": TokenKind.MINUS_ASSIGN,
            "*=": TokenKind.STAR_ASSIGN,
            "/=": TokenKind.SLASH_ASSIGN,
            "++": TokenKind.PLUS_PLUS,
            "--": TokenKind.MINUS_MINUS,
            "<=": TokenKind.LE,
            ">=": TokenKind.GE,
            "==": TokenKind.EQ,
            "!=": TokenKind.NE,
            "&&": TokenKind.AND,
            "||": TokenKind.OR,
        }
        if two in two_char_tokens:
            self._advance(2)
            return Token(two_char_tokens[two], two, line, column)
        single_char_operators = {
            "+": TokenKind.PLUS,
            "-": TokenKind.MINUS,
            "*": TokenKind.STAR,
            "/": TokenKind.SLASH,
            "=": TokenKind.ASSIGN,
            "<": TokenKind.LT,
            ">": TokenKind.GT,
            "!": TokenKind.NOT,
        }
        if char in single_char_operators:
            self._advance()
            return Token(single_char_operators[char], char, line, column)
        if char in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(_SINGLE_CHAR_TOKENS[char], char, line, column)
        raise LexerError(f"Unexpected character {char!r}", line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
