"""Recursive-descent parser for the HLS-C subset.

Produces a :class:`~repro.frontend.ast_nodes.TranslationUnit`.  Loops are
labelled with their lexical nesting path (``L0``, ``L0_0``, ...) so that HLS
pragma configurations can be addressed to specific loops both from source
pragmas and programmatically during design-space exploration.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ParserError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.pragmas import Pragma, parse_pragma

_TYPE_NAMES = {"void", "int", "float", "double"}


class Parser:
    """Parses a token stream into an AST."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0
        self._loop_counters: list[int] = []

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek_kind(self, offset: int = 0) -> TokenKind:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index].kind

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.current
        if token.kind is not kind or (text is not None and token.text != text):
            expected = text or kind.name
            raise ParserError(
                f"expected {expected}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _match(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self.current
        if token.kind is kind and (text is None or token.text == text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #
    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.current.kind is not TokenKind.EOF:
            # allow stray pragmas before functions (e.g. file-level directives)
            if self.current.kind is TokenKind.PRAGMA:
                self._advance()
                continue
            unit.functions.append(self._parse_function())
        return unit

    def _parse_function(self) -> ast.FunctionDef:
        return_type = self._expect(TokenKind.KEYWORD).text
        if return_type not in _TYPE_NAMES:
            raise ParserError(f"unknown return type {return_type!r}")
        name_token = self._expect(TokenKind.IDENT)
        func = ast.FunctionDef(
            name=name_token.text, return_type=return_type, line=name_token.line
        )
        self._expect(TokenKind.LPAREN)
        if not self._match(TokenKind.RPAREN):
            while True:
                func.params.append(self._parse_param())
                if self._match(TokenKind.RPAREN):
                    break
                self._expect(TokenKind.COMMA)
        self._loop_counters = [0]
        func.body = self._parse_block(collect_pragmas_into=func.pragmas)
        return func

    def _parse_param(self) -> ast.Param:
        self._match(TokenKind.KEYWORD, "const")
        type_token = self._expect(TokenKind.KEYWORD)
        if type_token.text not in _TYPE_NAMES or type_token.text == "void":
            raise ParserError(
                f"unsupported parameter type {type_token.text!r}",
                type_token.line, type_token.column,
            )
        # accept (and ignore) pointer syntax: treated as a 1-D array of
        # unknown size; callers should prefer explicit dimensions.
        is_pointer = self._match(TokenKind.STAR)
        name = self._expect(TokenKind.IDENT).text
        dims: list[int] = []
        while self._match(TokenKind.LBRACKET):
            dim_token = self._expect(TokenKind.INT_LITERAL)
            dims.append(int(dim_token.text))
            self._expect(TokenKind.RBRACKET)
        if is_pointer and not dims:
            dims = [1024]
        return ast.Param(type_name=type_token.text, name=name, dims=dims)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _parse_block(self, collect_pragmas_into: list[Pragma] | None = None) -> ast.Block:
        open_token = self._expect(TokenKind.LBRACE)
        block = ast.Block(line=open_token.line)
        pending_pragmas: list[Pragma] = []
        while not self._match(TokenKind.RBRACE):
            if self.current.kind is TokenKind.EOF:
                raise ParserError("unexpected end of file inside block")
            if self.current.kind is TokenKind.PRAGMA:
                pragma_token = self._advance()
                pragma = parse_pragma(pragma_token.text)
                if pragma is not None:
                    pending_pragmas.append(pragma)
                continue
            stmt = self._parse_statement()
            if pending_pragmas:
                stmt.pragmas.extend(pending_pragmas)
                if collect_pragmas_into is not None:
                    collect_pragmas_into.extend(pending_pragmas)
                pending_pragmas = []
            block.statements.append(stmt)
        if pending_pragmas and collect_pragmas_into is not None:
            # trailing pragmas attach to the enclosing function (array
            # partitioning is frequently written at function scope).
            collect_pragmas_into.extend(pending_pragmas)
        elif pending_pragmas and block.statements:
            block.statements[-1].pragmas.extend(pending_pragmas)
        return block

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind is TokenKind.KEYWORD:
            if token.text == "for":
                return self._parse_for()
            if token.text == "if":
                return self._parse_if()
            if token.text == "return":
                return self._parse_return()
            if token.text in _TYPE_NAMES:
                return self._parse_declaration()
            if token.text == "const":
                return self._parse_declaration()
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        return self._parse_assignment()

    def _parse_declaration(self) -> ast.Stmt:
        self._match(TokenKind.KEYWORD, "const")
        type_token = self._expect(TokenKind.KEYWORD)
        first = self._parse_declarator(type_token.text)
        declarations = [first]
        while self._match(TokenKind.COMMA):
            declarations.append(self._parse_declarator(type_token.text))
        self._expect(TokenKind.SEMICOLON)
        if len(declarations) == 1:
            return declarations[0]
        block = ast.Block(line=type_token.line, statements=declarations)
        return block

    def _parse_declarator(self, type_name: str) -> ast.Declaration:
        name_token = self._expect(TokenKind.IDENT)
        decl = ast.Declaration(
            line=name_token.line, type_name=type_name, name=name_token.text
        )
        while self._match(TokenKind.LBRACKET):
            dim = self._expect(TokenKind.INT_LITERAL)
            decl.dims.append(int(dim.text))
            self._expect(TokenKind.RBRACKET)
        if self._match(TokenKind.ASSIGN):
            decl.init = self._parse_expression()
        return decl

    def _parse_for(self) -> ast.ForLoop:
        for_token = self._expect(TokenKind.KEYWORD, "for")
        label = self._next_loop_label()
        self._expect(TokenKind.LPAREN)
        # init: either "int i = 0" or "i = 0"
        if self.current.kind is TokenKind.KEYWORD and self.current.text in _TYPE_NAMES:
            self._advance()
        var_name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.ASSIGN)
        start = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        # condition: var <op> bound
        cond_var = self._expect(TokenKind.IDENT).text
        if cond_var != var_name:
            raise ParserError(
                f"for-loop condition must test {var_name!r}, found {cond_var!r}",
                for_token.line, for_token.column,
            )
        cmp_token = self._advance()
        if cmp_token.kind not in (TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE):
            raise ParserError(
                f"unsupported loop comparison {cmp_token.text!r}",
                cmp_token.line, cmp_token.column,
            )
        bound = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        # increment: i++, ++i, i += k, i = i + k
        step = self._parse_loop_step(var_name)
        self._expect(TokenKind.RPAREN)
        self._loop_counters.append(0)
        if self.current.kind is TokenKind.LBRACE:
            body = self._parse_block()
        else:
            body = ast.Block(statements=[self._parse_statement()])
        self._loop_counters.pop()
        return ast.ForLoop(
            line=for_token.line,
            var=var_name,
            start=start,
            bound=bound,
            step=step,
            cmp_op=cmp_token.text,
            body=body,
            label=label,
        )

    def _parse_loop_step(self, var_name: str) -> int:
        token = self.current
        if token.kind is TokenKind.PLUS_PLUS:
            self._advance()
            self._expect(TokenKind.IDENT, var_name)
            return 1
        if token.kind is TokenKind.MINUS_MINUS:
            self._advance()
            self._expect(TokenKind.IDENT, var_name)
            return -1
        self._expect(TokenKind.IDENT, var_name)
        token = self.current
        if token.kind is TokenKind.PLUS_PLUS:
            self._advance()
            return 1
        if token.kind is TokenKind.MINUS_MINUS:
            self._advance()
            return -1
        if token.kind is TokenKind.PLUS_ASSIGN:
            self._advance()
            step_token = self._expect(TokenKind.INT_LITERAL)
            return int(step_token.text)
        if token.kind is TokenKind.MINUS_ASSIGN:
            self._advance()
            step_token = self._expect(TokenKind.INT_LITERAL)
            return -int(step_token.text)
        if token.kind is TokenKind.ASSIGN:
            self._advance()
            self._expect(TokenKind.IDENT, var_name)
            sign_token = self._advance()
            sign = 1 if sign_token.kind is TokenKind.PLUS else -1
            step_token = self._expect(TokenKind.INT_LITERAL)
            return sign * int(step_token.text)
        raise ParserError(
            f"unsupported loop increment near {token.text!r}", token.line, token.column
        )

    def _next_loop_label(self) -> str:
        index = self._loop_counters[-1]
        self._loop_counters[-1] += 1
        depth_path = [str(count - 1) for count in self._loop_counters[:-1]]
        parts = depth_path + [str(index)]
        return "L" + "_".join(parts)

    def _parse_if(self) -> ast.IfStmt:
        if_token = self._expect(TokenKind.KEYWORD, "if")
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        if self.current.kind is TokenKind.LBRACE:
            then_body = self._parse_block()
        else:
            then_body = ast.Block(statements=[self._parse_statement()])
        else_body = None
        if self._match(TokenKind.KEYWORD, "else"):
            if self.current.kind is TokenKind.LBRACE:
                else_body = self._parse_block()
            elif self.current.kind is TokenKind.KEYWORD and self.current.text == "if":
                else_body = ast.Block(statements=[self._parse_if()])
            else:
                else_body = ast.Block(statements=[self._parse_statement()])
        return ast.IfStmt(
            line=if_token.line, cond=cond, then_body=then_body, else_body=else_body
        )

    def _parse_return(self) -> ast.ReturnStmt:
        token = self._expect(TokenKind.KEYWORD, "return")
        value = None
        if self.current.kind is not TokenKind.SEMICOLON:
            value = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        return ast.ReturnStmt(line=token.line, value=value)

    def _parse_assignment(self) -> ast.Assignment:
        target = self._parse_primary()
        if not isinstance(target, (ast.VarRef, ast.ArrayRef)):
            raise ParserError("assignment target must be a variable or array element")
        op_token = self._advance()
        op_map = {
            TokenKind.ASSIGN: "=",
            TokenKind.PLUS_ASSIGN: "+=",
            TokenKind.MINUS_ASSIGN: "-=",
            TokenKind.STAR_ASSIGN: "*=",
            TokenKind.SLASH_ASSIGN: "/=",
        }
        if op_token.kind is TokenKind.PLUS_PLUS or op_token.kind is TokenKind.MINUS_MINUS:
            self._expect(TokenKind.SEMICOLON)
            op = "+=" if op_token.kind is TokenKind.PLUS_PLUS else "-="
            return ast.Assignment(
                line=op_token.line, target=target, op=op,
                value=ast.IntLiteral(line=op_token.line, value=1),
            )
        if op_token.kind not in op_map:
            raise ParserError(
                f"expected assignment operator, found {op_token.text!r}",
                op_token.line, op_token.column,
            )
        value = self._parse_expression()
        self._expect(TokenKind.SEMICOLON)
        return ast.Assignment(
            line=op_token.line, target=target, op=op_map[op_token.kind], value=value
        )

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_logical_or()
        if self._match(TokenKind.QUESTION):
            then_expr = self._parse_expression()
            self._expect(TokenKind.COLON)
            else_expr = self._parse_expression()
            return ast.TernaryOp(
                line=cond.line, cond=cond, then_expr=then_expr, else_expr=else_expr
            )
        return cond

    def _parse_logical_or(self) -> ast.Expr:
        left = self._parse_logical_and()
        while self.current.kind is TokenKind.OR:
            self._advance()
            right = self._parse_logical_and()
            left = ast.BinaryOp(line=left.line, op="||", left=left, right=right)
        return left

    def _parse_logical_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.current.kind is TokenKind.AND:
            self._advance()
            right = self._parse_comparison()
            left = ast.BinaryOp(line=left.line, op="&&", left=left, right=right)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        comparison_ops = {
            TokenKind.LT: "<", TokenKind.LE: "<=", TokenKind.GT: ">",
            TokenKind.GE: ">=", TokenKind.EQ: "==", TokenKind.NE: "!=",
        }
        while self.current.kind in comparison_ops:
            op = comparison_ops[self._advance().kind]
            right = self._parse_additive()
            left = ast.BinaryOp(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = ast.BinaryOp(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.current.kind in (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT):
            op = self._advance().text
            right = self._parse_unary()
            left = ast.BinaryOp(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, op="-", operand=operand)
        if token.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, op="!", operand=operand)
        if token.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(line=token.line, value=int(token.text))
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return ast.FloatLiteral(line=token.line, value=float(token.text))
        if token.kind is TokenKind.LPAREN:
            self._advance()
            # cast expression: (float) x  /  (int) x
            if (
                self.current.kind is TokenKind.KEYWORD
                and self.current.text in _TYPE_NAMES
                and self._peek_kind(1) is TokenKind.RPAREN
            ):
                self._advance()
                self._expect(TokenKind.RPAREN)
                return self._parse_unary()
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self.current.kind is TokenKind.LPAREN:
                return self._parse_call(token)
            if self.current.kind is TokenKind.LBRACKET:
                indices = []
                while self._match(TokenKind.LBRACKET):
                    indices.append(self._parse_expression())
                    self._expect(TokenKind.RBRACKET)
                return ast.ArrayRef(line=token.line, name=token.text, indices=indices)
            return ast.VarRef(line=token.line, name=token.text)
        raise ParserError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )

    def _parse_call(self, name_token: Token) -> ast.CallExpr:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if not self._match(TokenKind.RPAREN):
            while True:
                args.append(self._parse_expression())
                if self._match(TokenKind.RPAREN):
                    break
                self._expect(TokenKind.COMMA)
        return ast.CallExpr(line=name_token.line, name=name_token.text, args=args)


def parse_source(source: str) -> ast.TranslationUnit:
    """Parse HLS-C source text into a :class:`TranslationUnit`."""
    return Parser(tokenize(source)).parse()


def parse_function(source: str, name: str | None = None) -> ast.FunctionDef:
    """Parse source text and return one function (the top function by default)."""
    unit = parse_source(source)
    if name is None:
        return unit.top
    return unit.function(name)
