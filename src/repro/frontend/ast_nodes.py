"""Abstract syntax tree node definitions for the HLS-C subset.

The AST is deliberately small: the kernels targeted by the paper (Polybench,
MachSuite, CHStone-style loop nests) only need scalar/array declarations,
``for`` loops with constant bounds, ``if``/``else`` and arithmetic
expressions.  Every node keeps its source line so later passes can report
precise diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr:
    """Base class for expressions."""

    line: int = 0


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    """Reference to a scalar variable."""

    name: str = ""


@dataclass
class ArrayRef(Expr):
    """Reference to an array element: ``name[idx0][idx1]...``."""

    name: str = ""
    indices: list[Expr] = field(default_factory=list)


@dataclass
class UnaryOp(Expr):
    """Unary operation, e.g. ``-x`` or ``!x``."""

    op: str = "-"
    operand: Expr | None = None


@dataclass
class BinaryOp(Expr):
    """Binary operation, e.g. ``a * b`` or ``i < N``."""

    op: str = "+"
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class TernaryOp(Expr):
    """Conditional expression ``cond ? a : b``."""

    cond: Expr | None = None
    then_expr: Expr | None = None
    else_expr: Expr | None = None


@dataclass
class CallExpr(Expr):
    """Call to a math intrinsic such as ``sqrtf(x)`` or ``fabs(x)``."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt:
    """Base class for statements."""

    line: int = 0
    pragmas: list["Pragma"] = field(default_factory=list)


@dataclass
class Declaration(Stmt):
    """Scalar or local-array declaration, e.g. ``int acc = 0;``."""

    type_name: str = "int"
    name: str = ""
    dims: list[int] = field(default_factory=list)
    init: Expr | None = None


@dataclass
class Assignment(Stmt):
    """Assignment to a scalar or array element (including ``+=`` forms)."""

    target: Expr | None = None
    op: str = "="
    value: Expr | None = None


@dataclass
class Block(Stmt):
    """A ``{ ... }`` compound statement."""

    statements: list[Stmt] = field(default_factory=list)


@dataclass
class ForLoop(Stmt):
    """A ``for`` loop with an affine induction variable.

    ``label`` is assigned during parsing from the lexical position of the
    loop inside its function (e.g. ``L0``, ``L0_0``) and is used to address
    pragma configurations at specific loops.
    """

    var: str = ""
    start: Expr | None = None
    bound: Expr | None = None
    step: int = 1
    cmp_op: str = "<"
    body: Block | None = None
    label: str = ""


@dataclass
class IfStmt(Stmt):
    """An ``if``/``else`` statement."""

    cond: Expr | None = None
    then_body: Block | None = None
    else_body: Block | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


# --------------------------------------------------------------------------- #
# declarations / top level
# --------------------------------------------------------------------------- #
@dataclass
class Param:
    """A function parameter; arrays carry their constant dimensions."""

    type_name: str = "int"
    name: str = ""
    dims: list[int] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class FunctionDef:
    """A top-level function definition."""

    name: str = ""
    return_type: str = "void"
    params: list[Param] = field(default_factory=list)
    body: Block | None = None
    pragmas: list["Pragma"] = field(default_factory=list)
    line: int = 0


@dataclass
class TranslationUnit:
    """A parsed source file: one or more function definitions."""

    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Return the function named ``name`` (raises ``KeyError`` if absent)."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    @property
    def top(self) -> FunctionDef:
        """The last function in the file, treated as the HLS top function."""
        if not self.functions:
            raise ValueError("translation unit contains no functions")
        return self.functions[-1]


# Imported late to avoid a circular import at type-checking time.
from repro.frontend.pragmas import Pragma  # noqa: E402  (re-export for dataclasses)

__all__ = [
    "Expr", "IntLiteral", "FloatLiteral", "VarRef", "ArrayRef", "UnaryOp",
    "BinaryOp", "TernaryOp", "CallExpr",
    "Stmt", "Declaration", "Assignment", "Block", "ForLoop", "IfStmt",
    "ReturnStmt", "Param", "FunctionDef", "TranslationUnit", "Pragma",
]
