"""Exceptions raised by the HLS-C front-end."""

from __future__ import annotations


class FrontendError(Exception):
    """Base class for all front-end errors."""


class LexerError(FrontendError):
    """Raised when the lexer encounters an unrecognized character."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParserError(FrontendError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class PragmaError(FrontendError):
    """Raised when a ``#pragma HLS`` directive is malformed or invalid."""
