"""HLS-C front-end: lexer, parser, AST and pragma handling.

This package replaces the Clang/LLVM front-end used by the paper with a
self-contained parser for a restricted C dialect ("HLS-C") that covers the
loop-nest kernels found in Polybench / MachSuite / CHStone-style benchmarks.
"""

from repro.frontend.ast_nodes import (
    ArrayRef,
    Assignment,
    BinaryOp,
    Block,
    CallExpr,
    Declaration,
    Expr,
    FloatLiteral,
    ForLoop,
    FunctionDef,
    IfStmt,
    IntLiteral,
    Param,
    ReturnStmt,
    Stmt,
    TernaryOp,
    TranslationUnit,
    UnaryOp,
    VarRef,
)
from repro.frontend.errors import FrontendError, LexerError, ParserError, PragmaError
from repro.frontend.lexer import Lexer, Token, TokenKind, tokenize
from repro.frontend.parser import Parser, parse_function, parse_source
from repro.frontend.pragmas import (
    ArrayDirective,
    LoopDirective,
    PartitionType,
    Pragma,
    PragmaConfig,
    PragmaKind,
    config_from_pragmas,
    parse_pragma,
)

__all__ = [
    "ArrayRef", "Assignment", "BinaryOp", "Block", "CallExpr", "Declaration",
    "Expr", "FloatLiteral", "ForLoop", "FunctionDef", "IfStmt", "IntLiteral",
    "Param", "ReturnStmt", "Stmt", "TernaryOp", "TranslationUnit", "UnaryOp",
    "VarRef",
    "FrontendError", "LexerError", "ParserError", "PragmaError",
    "Lexer", "Token", "TokenKind", "tokenize",
    "Parser", "parse_function", "parse_source",
    "ArrayDirective", "LoopDirective", "PartitionType", "Pragma",
    "PragmaConfig", "PragmaKind", "config_from_pragmas", "parse_pragma",
]
