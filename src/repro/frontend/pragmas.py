"""HLS pragma parsing and design-configuration objects.

Two distinct concepts live here:

* :class:`Pragma` — a single ``#pragma HLS ...`` directive parsed from source
  text (or constructed programmatically).
* :class:`PragmaConfig` — a *design point*: the complete set of directives
  applied to a kernel (keyed by loop label and array name).  DSE enumerates
  ``PragmaConfig`` objects; the graph constructor and the HLS flow simulator
  both consume them so that the model's input and the ground-truth label are
  always generated from the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.frontend.errors import PragmaError


class PragmaKind(Enum):
    """Supported ``#pragma HLS`` directive kinds."""

    PIPELINE = "pipeline"
    UNROLL = "unroll"
    ARRAY_PARTITION = "array_partition"
    LOOP_FLATTEN = "loop_flatten"
    INLINE = "inline"


class PartitionType(Enum):
    """Array partitioning styles supported by Vitis HLS."""

    CYCLIC = "cyclic"
    BLOCK = "block"
    COMPLETE = "complete"


@dataclass(frozen=True)
class Pragma:
    """A parsed ``#pragma HLS`` directive.

    Attributes mirror the Vitis HLS directive options that matter for QoR:
    ``factor`` for unroll / array_partition, ``ii`` for pipeline, ``variable``
    and ``dim`` for array_partition, and ``off`` to explicitly disable a
    directive (``#pragma HLS pipeline off``).
    """

    kind: PragmaKind
    factor: int = 0
    ii: int = 0
    variable: str = ""
    partition_type: PartitionType = PartitionType.CYCLIC
    dim: int = 1
    off: bool = False

    def __str__(self) -> str:
        parts = [f"#pragma HLS {self.kind.value}"]
        if self.kind is PragmaKind.PIPELINE:
            if self.off:
                parts.append("off")
            elif self.ii:
                parts.append(f"II={self.ii}")
        elif self.kind is PragmaKind.UNROLL and self.factor:
            parts.append(f"factor={self.factor}")
        elif self.kind is PragmaKind.ARRAY_PARTITION:
            parts.append(f"variable={self.variable}")
            parts.append(f"type={self.partition_type.value}")
            if self.partition_type is not PartitionType.COMPLETE:
                parts.append(f"factor={self.factor}")
            parts.append(f"dim={self.dim}")
        elif self.kind is PragmaKind.LOOP_FLATTEN and self.off:
            parts.append("off")
        return " ".join(parts)


def parse_pragma(text: str) -> Pragma | None:
    """Parse a ``#pragma`` line.

    Returns ``None`` for non-HLS pragmas (they are ignored, matching HLS tool
    behaviour) and raises :class:`PragmaError` for malformed HLS pragmas.
    """
    stripped = text.strip()
    if stripped.startswith("#"):
        stripped = stripped[1:].strip()
    parts = stripped.split()
    if not parts or parts[0].lower() != "pragma":
        raise PragmaError(f"not a pragma: {text!r}")
    parts = parts[1:]
    if not parts or parts[0].upper() != "HLS":
        return None
    parts = parts[1:]
    if not parts:
        raise PragmaError(f"empty HLS pragma: {text!r}")
    name = parts[0].lower()
    options = _parse_options(parts[1:])
    if name == "pipeline":
        return Pragma(
            PragmaKind.PIPELINE,
            ii=int(options.get("ii", 0)),
            off="off" in options,
        )
    if name == "unroll":
        return Pragma(PragmaKind.UNROLL, factor=int(options.get("factor", 0)))
    if name == "array_partition":
        if "variable" not in options:
            raise PragmaError(f"array_partition requires variable=: {text!r}")
        ptype_name = str(options.get("type", options.get("cyclic", "cyclic")))
        try:
            ptype = PartitionType(ptype_name.lower())
        except ValueError as exc:
            raise PragmaError(f"unknown partition type {ptype_name!r}") from exc
        return Pragma(
            PragmaKind.ARRAY_PARTITION,
            variable=str(options["variable"]),
            partition_type=ptype,
            factor=int(options.get("factor", 0)),
            dim=int(options.get("dim", 1)),
        )
    if name == "loop_flatten":
        return Pragma(PragmaKind.LOOP_FLATTEN, off="off" in options)
    if name == "inline":
        return Pragma(PragmaKind.INLINE, off="off" in options)
    raise PragmaError(f"unsupported HLS pragma {name!r}")


def _parse_options(parts: list[str]) -> dict[str, str | bool]:
    """Parse ``key=value`` / flag options of a pragma into a dict."""
    options: dict[str, str | bool] = {}
    for part in parts:
        if "=" in part:
            key, _, value = part.partition("=")
            options[key.strip().lower()] = value.strip()
        else:
            options[part.strip().lower()] = True
    return options


# --------------------------------------------------------------------------- #
# design-point configuration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoopDirective:
    """Directives applied to one loop (addressed by its label)."""

    pipeline: bool = False
    ii: int = 0
    unroll_factor: int = 1
    flatten: bool = False

    def describe(self) -> str:
        parts = []
        if self.pipeline:
            parts.append("pipeline" + (f"(II={self.ii})" if self.ii else ""))
        if self.unroll_factor > 1:
            parts.append(f"unroll={self.unroll_factor}")
        if self.flatten:
            parts.append("flatten")
        return "+".join(parts) if parts else "none"


@dataclass(frozen=True)
class ArrayDirective:
    """Array partitioning applied to one top-level array argument."""

    partition_type: PartitionType = PartitionType.CYCLIC
    factor: int = 1
    dim: int = 1

    def describe(self) -> str:
        if self.factor <= 1 and self.partition_type is not PartitionType.COMPLETE:
            return "none"
        return f"{self.partition_type.value}:f{self.factor}:d{self.dim}"


@dataclass(frozen=True)
class PragmaConfig:
    """A complete design point: directives for every loop and array.

    ``loops`` maps loop labels (as assigned by the parser, e.g. ``"L0"``,
    ``"L0_1"``) to :class:`LoopDirective`.  ``arrays`` maps array argument
    names to :class:`ArrayDirective`.  Missing entries mean "no directive".
    """

    loops: tuple[tuple[str, LoopDirective], ...] = ()
    arrays: tuple[tuple[str, ArrayDirective], ...] = ()

    @staticmethod
    def from_dicts(
        loops: dict[str, LoopDirective] | None = None,
        arrays: dict[str, ArrayDirective] | None = None,
    ) -> "PragmaConfig":
        """Build a config from plain dictionaries (the common construction)."""
        loop_items = tuple(sorted((loops or {}).items()))
        array_items = tuple(sorted((arrays or {}).items()))
        return PragmaConfig(loops=loop_items, arrays=array_items)

    def loop(self, label: str) -> LoopDirective:
        """Directive for the loop ``label`` (default: no directives)."""
        for key, directive in self.loops:
            if key == label:
                return directive
        return LoopDirective()

    def array(self, name: str) -> ArrayDirective:
        """Directive for the array ``name`` (default: not partitioned)."""
        for key, directive in self.arrays:
            if key == name:
                return directive
        return ArrayDirective()

    @property
    def loop_dict(self) -> dict[str, LoopDirective]:
        return dict(self.loops)

    @property
    def array_dict(self) -> dict[str, ArrayDirective]:
        return dict(self.arrays)

    def describe(self) -> str:
        """A compact human-readable description of the design point."""
        loop_parts = [f"{label}:{d.describe()}" for label, d in self.loops]
        array_parts = [f"{name}:{d.describe()}" for name, d in self.arrays]
        return "; ".join(loop_parts + array_parts) or "baseline"

    def key(self) -> str:
        """A stable identifier used for hashing design points in datasets."""
        return self.describe()


def config_from_pragmas(
    loop_pragmas: dict[str, list[Pragma]],
    array_pragmas: list[Pragma],
) -> PragmaConfig:
    """Convert raw source pragmas (collected per loop label) into a config."""
    loops: dict[str, LoopDirective] = {}
    for label, pragmas in loop_pragmas.items():
        pipeline = False
        ii = 0
        unroll = 1
        flatten = False
        for pragma in pragmas:
            if pragma.kind is PragmaKind.PIPELINE:
                pipeline = not pragma.off
                ii = pragma.ii
            elif pragma.kind is PragmaKind.UNROLL:
                unroll = max(1, pragma.factor) if pragma.factor else 0
            elif pragma.kind is PragmaKind.LOOP_FLATTEN:
                flatten = not pragma.off
        if pipeline or unroll != 1 or flatten:
            loops[label] = LoopDirective(
                pipeline=pipeline, ii=ii, unroll_factor=unroll or 1, flatten=flatten
            )
    arrays: dict[str, ArrayDirective] = {}
    for pragma in array_pragmas:
        if pragma.kind is not PragmaKind.ARRAY_PARTITION:
            continue
        arrays[pragma.variable] = ArrayDirective(
            partition_type=pragma.partition_type,
            factor=max(1, pragma.factor),
            dim=pragma.dim,
        )
    return PragmaConfig.from_dicts(loops, arrays)


__all__ = [
    "Pragma", "PragmaKind", "PartitionType", "parse_pragma",
    "LoopDirective", "ArrayDirective", "PragmaConfig", "config_from_pragmas",
]
