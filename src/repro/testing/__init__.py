"""Test-support machinery shipped with the library.

The modules under :mod:`repro.testing` are *production-adjacent*: they are
imported by the differential test suites and the chaos benchmarks, but also
by the sharded DSE coordinator itself (worker fault descriptors travel to
worker processes as pickled arguments, so they must live in an importable
module rather than in ``tests/``).  Nothing here touches the model, the
graphs or the numerics — only controlled ways to make the infrastructure
fail.
"""

from repro.testing.faults import (
    CHECKPOINT_CORRUPTIONS,
    FaultPlan,
    InjectedFault,
    WorkerFault,
    corrupt_checkpoint_file,
    random_fault_plan,
)

__all__ = [
    "CHECKPOINT_CORRUPTIONS", "FaultPlan", "InjectedFault", "WorkerFault",
    "corrupt_checkpoint_file", "random_fault_plan",
]
