"""Fault injection for the sharded DSE fleet.

Crash-recovery claims are only as good as the crashes they were tested
against.  This module is the single place the repository manufactures
failures, so the differential tests (and the nightly chaos run) can assert
recovery *behaviour* — "a killed fleet resumes bit-equal" — instead of
inspecting recovery *code*:

* :class:`WorkerFault` — a picklable descriptor of one worker's misbehaviour
  (hard-kill after N configs or at chunk N, stall before a chunk, silently
  drop a chunk's result message).  The worker entrypoints in
  :mod:`repro.dse.sharding` consult it between chunks, which is exactly
  where a real crash/OOM-kill/queue loss would bite.
* :class:`FaultPlan` — a whole scenario: per-worker faults, an injected
  coordinator abort after N checkpoint saves, and a checkpoint-corruption
  mode to apply between runs.  Plans serialize to JSON so a failing
  randomized scenario can be uploaded as a CI artifact and replayed
  verbatim.
* :func:`corrupt_checkpoint_file` — the checkpoint-corruption primitives
  (truncate / bit-flip / wrong-model-digest) the loader's integrity checks
  are tested against.
* :func:`random_fault_plan` — seeded scenario generator for the nightly
  chaos step.

Monkeypatch points, for scenarios the descriptors do not cover: worker-side
faults ride the queue as pickled ``fault`` arguments of
:func:`repro.dse.sharding.shard_worker` / ``stealing_worker`` (patch those
entrypoints to inject arbitrary behaviour); coordinator-side faults hook
``ShardedExplorer._run_fleet`` (crash mid-drain) and the checkpoint writer's
``on_save`` callback (crash between persists, which is what
``abort_coordinator_after_checkpoints`` wires up).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from random import Random

#: checkpoint-corruption modes understood by :func:`corrupt_checkpoint_file`
CHECKPOINT_CORRUPTIONS: tuple[str, ...] = (
    "truncate", "bitflip", "wrong-model-digest",
)


class InjectedFault(RuntimeError):
    """An injected coordinator-side crash (never raised in production)."""


@dataclass(frozen=True)
class WorkerFault:
    """Misbehaviour descriptor for one worker process (picklable).

    All triggers are phrased in the worker's own chunk loop, the only
    place a worker yields control: ``kill_after_configs`` / and
    ``kill_after_chunks`` hard-exit the process (``os._exit``, nothing
    flushed — indistinguishable from a SIGKILL) once that many
    configurations / chunks are scored; ``stall_before_chunk`` sleeps
    ``stall_seconds`` before scoring that chunk (trips the coordinator's
    stall timeout); ``drop_chunks`` scores the listed chunk indices but
    silently discards their result messages (a lost queue message).
    """

    kill_after_configs: int | None = None
    kill_after_chunks: int | None = None
    stall_before_chunk: int | None = None
    stall_seconds: float = 600.0
    drop_chunks: tuple[int, ...] = ()

    def should_kill(self, chunk_index: int, completed_configs: int) -> bool:
        """Whether the worker must hard-exit before scoring this chunk."""
        if (
            self.kill_after_configs is not None
            and completed_configs >= self.kill_after_configs
        ):
            return True
        return (
            self.kill_after_chunks is not None
            and chunk_index >= self.kill_after_chunks
        )

    def stalls_at(self, chunk_index: int) -> bool:
        """Whether the worker must sleep before scoring this chunk."""
        return self.stall_before_chunk == chunk_index

    def drops(self, chunk_index: int) -> bool:
        """Whether this chunk's result message must be discarded."""
        return chunk_index in self.drop_chunks

    def as_dict(self) -> dict:
        """JSON-compatible form (used by :meth:`FaultPlan.to_json`)."""
        return {
            "kill_after_configs": self.kill_after_configs,
            "kill_after_chunks": self.kill_after_chunks,
            "stall_before_chunk": self.stall_before_chunk,
            "stall_seconds": self.stall_seconds,
            "drop_chunks": list(self.drop_chunks),
        }

    @staticmethod
    def from_dict(payload: dict) -> "WorkerFault":
        """Rebuild a descriptor stored with :meth:`as_dict`."""
        known = {f.name for f in fields(WorkerFault)}
        kwargs = {key: value for key, value in payload.items() if key in known}
        kwargs["drop_chunks"] = tuple(kwargs.get("drop_chunks", ()))
        return WorkerFault(**kwargs)


def normalize_fault(fault) -> WorkerFault | None:
    """Coerce the legacy ``fail_after`` integer hook into a descriptor.

    ``ShardedExplorer(_fault_injection={shard: N})`` predates
    :class:`WorkerFault`; a bare int still means "hard-crash after N
    configurations".
    """
    if fault is None or isinstance(fault, WorkerFault):
        return fault
    return WorkerFault(kill_after_configs=int(fault))


@dataclass
class FaultPlan:
    """One complete fault scenario for a sharded sweep.

    ``workers`` maps shard/worker ids to :class:`WorkerFault` descriptors;
    ``abort_coordinator_after_checkpoints`` kills the coordinator (via
    :class:`InjectedFault` out of the checkpoint writer's ``on_save`` hook)
    after that many periodic checkpoint saves — the fleet dies mid-sweep
    with a valid checkpoint on disk, which is the resume scenario;
    ``corrupt_checkpoint`` names a :data:`CHECKPOINT_CORRUPTIONS` mode a
    test applies to the checkpoint file between the crash and the resume;
    ``seed`` records how a randomized plan was generated.
    """

    workers: dict[int, WorkerFault] = field(default_factory=dict)
    abort_coordinator_after_checkpoints: int | None = None
    corrupt_checkpoint: str | None = None
    seed: int | None = None

    def to_json(self) -> str:
        """Serialize the plan (CI artifact format, replayable verbatim)."""
        return json.dumps({
            "workers": {
                str(worker_id): worker_fault.as_dict()
                for worker_id, worker_fault in sorted(self.workers.items())
            },
            "abort_coordinator_after_checkpoints":
                self.abort_coordinator_after_checkpoints,
            "corrupt_checkpoint": self.corrupt_checkpoint,
            "seed": self.seed,
        }, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        """Rebuild a plan stored with :meth:`to_json`."""
        payload = json.loads(text)
        return FaultPlan(
            workers={
                int(worker_id): WorkerFault.from_dict(worker_fault)
                for worker_id, worker_fault in payload.get("workers", {}).items()
            },
            abort_coordinator_after_checkpoints=payload.get(
                "abort_coordinator_after_checkpoints"
            ),
            corrupt_checkpoint=payload.get("corrupt_checkpoint"),
            seed=payload.get("seed"),
        )

    def dump(self, path: str | Path) -> Path:
        """Write the plan to ``path`` (the chaos-run failure artifact)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def corrupt_checkpoint_file(
    path: str | Path, mode: str, *, rng: Random | None = None
) -> None:
    """Damage a checkpoint file in one of the supported ways.

    ``truncate`` keeps only the first half of the bytes (a crash mid-write
    outside the atomic rename — or a torn copy); ``bitflip`` flips one bit
    (silent storage corruption; position is seeded by ``rng``, middle of
    the file by default); ``wrong-model-digest`` rewrites the embedded
    model digest and re-seals the payload checksum, producing a checkpoint
    that is internally consistent but belongs to different weights.  The
    loader must discard all three with a warning.
    """
    path = Path(path)
    raw = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(raw[: len(raw) // 2])
    elif mode == "bitflip":
        position = (
            rng.randrange(len(raw)) if rng is not None else len(raw) // 2
        )
        damaged = bytearray(raw)
        damaged[position] ^= 0x01
        path.write_bytes(bytes(damaged))
    elif mode == "wrong-model-digest":
        from repro.dse.checkpoint import _payload_digest

        payload = json.loads(raw.decode("utf-8"))
        payload["body"]["model_digest"] = "0" * 16
        payload["digest"] = _payload_digest(payload["body"])
        path.write_text(json.dumps(payload), encoding="utf-8")
    else:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            f"available: {CHECKPOINT_CORRUPTIONS}"
        )


def random_fault_plan(
    seed: int,
    *,
    num_workers: int = 2,
    max_chunks: int = 8,
    checkpointing: bool = True,
) -> FaultPlan:
    """A seeded random fault scenario (the nightly chaos generator).

    Every worker independently draws one of: no fault, kill after a random
    number of configs, kill at a random chunk, or drop a random chunk's
    results.  With ``checkpointing`` the plan may additionally abort the
    coordinator after 1-2 checkpoint saves and corrupt the checkpoint in a
    random mode before the resume.  Stalls are excluded: they only convert
    into multi-second waits on the stall timeout without adding coverage
    beyond the dedicated stall test.
    """
    rng = Random(seed)
    workers: dict[int, WorkerFault] = {}
    for worker_id in range(num_workers):
        roll = rng.random()
        if roll < 0.35:
            continue  # this worker behaves
        if roll < 0.60:
            workers[worker_id] = WorkerFault(
                kill_after_configs=rng.randrange(0, max_chunks * 2)
            )
        elif roll < 0.85:
            workers[worker_id] = WorkerFault(
                kill_after_chunks=rng.randrange(0, max_chunks)
            )
        else:
            workers[worker_id] = WorkerFault(
                drop_chunks=(rng.randrange(0, max_chunks),)
            )
    abort_after = None
    corruption = None
    if checkpointing and rng.random() < 0.5:
        abort_after = rng.randrange(1, 3)
        if rng.random() < 0.5:
            corruption = rng.choice(CHECKPOINT_CORRUPTIONS)
    return FaultPlan(
        workers=workers,
        abort_coordinator_after_checkpoints=abort_after,
        corrupt_checkpoint=corruption,
        seed=seed,
    )


__all__ = [
    "CHECKPOINT_CORRUPTIONS", "InjectedFault", "WorkerFault", "FaultPlan",
    "normalize_fault", "corrupt_checkpoint_file", "random_fault_plan",
]
