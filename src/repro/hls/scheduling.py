"""Operation scheduling and initiation-interval analysis.

Implements the scheduling layer of the HLS flow simulator:

* a chaining-aware list scheduler with memory-port constraints (used to
  compute iteration latencies and the per-cycle functional-unit pressure that
  drives resource binding);
* the initiation-interval lower bound ``II = max(II_rec, II_res)`` from the
  paper (Section III-B.2), combining recurrence-constrained and
  resource-constrained terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hls.op_library import CLOCK_PERIOD_NS, DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import Recurrence


@dataclass
class Schedulable:
    """An item the list scheduler places: an instruction or a nested block.

    Nested blocks (already-scheduled sub-loops) appear as single multi-cycle
    pseudo-operations with a fixed ``latency_cycles``.
    """

    uid: int
    instr: Instruction | None = None
    latency_cycles: int = 0
    delay_ns: float = 0.0
    depends_on: list[int] = field(default_factory=list)
    array: str = ""
    is_memory: bool = False
    is_store: bool = False

    @property
    def is_block(self) -> bool:
        return self.instr is None


@dataclass
class ScheduledItem:
    """Placement of one schedulable item."""

    item: Schedulable
    start_cycle: int
    finish_cycle: int
    finish_delay_ns: float


@dataclass
class ScheduleResult:
    """Outcome of scheduling a straight-line block of items."""

    items: list[ScheduledItem] = field(default_factory=list)
    length_cycles: int = 1

    def pressure_by_optype(self) -> dict[str, int]:
        """Maximum number of simultaneously-active operations per optype.

        This is the quantity the binding stage uses to decide how many
        functional units of each kind the block needs.
        """
        usage: dict[str, dict[int, int]] = {}
        for placed in self.items:
            if placed.item.instr is None:
                continue
            optype = placed.item.instr.opcode.value
            span = range(placed.start_cycle, max(placed.start_cycle, placed.finish_cycle) + 1)
            per_cycle = usage.setdefault(optype, {})
            for cycle in span:
                per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        return {
            optype: max(per_cycle.values()) if per_cycle else 0
            for optype, per_cycle in usage.items()
        }


def build_schedulables(
    instructions: list[Instruction],
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> list[Schedulable]:
    """Wrap IR instructions into schedulable items with data/memory deps."""
    items: list[Schedulable] = []
    by_instr_id: dict[int, int] = {}
    last_store_per_array: dict[str, int] = {}
    last_accesses_per_array: dict[str, list[int]] = {}
    for index, instr in enumerate(instructions):
        char = library.lookup_instr(instr)
        item = Schedulable(
            uid=index, instr=instr, latency_cycles=char.cycles,
            delay_ns=char.delay_ns, array=instr.array,
            is_memory=instr.opcode in (Opcode.LOAD, Opcode.STORE),
            is_store=instr.opcode is Opcode.STORE,
        )
        for operand in instr.value_operands:
            if operand.instr_id in by_instr_id:
                item.depends_on.append(by_instr_id[operand.instr_id])
        # conservative memory ordering: accesses to an array may not bypass a
        # previous store to the same array, and stores are ordered after all
        # previous accesses to the array.
        if item.is_memory:
            if instr.array in last_store_per_array:
                item.depends_on.append(last_store_per_array[instr.array])
            if item.is_store:
                item.depends_on.extend(last_accesses_per_array.get(instr.array, []))
                last_store_per_array[instr.array] = index
            last_accesses_per_array.setdefault(instr.array, []).append(index)
        items.append(item)
        by_instr_id[instr.instr_id] = index
    return items


def list_schedule(
    items: list[Schedulable],
    *,
    port_limits: dict[str, int] | None = None,
    clock_period_ns: float = CLOCK_PERIOD_NS,
) -> ScheduleResult:
    """Chaining-aware list scheduling with per-array memory-port limits.

    Combinational operations (0-cycle) chain within a clock period while the
    accumulated delay fits; multi-cycle operations occupy ``latency_cycles``
    cycles.  At most ``port_limits[array]`` memory operations targeting the
    same array may start in the same cycle.
    """
    port_limits = port_limits or {}
    placed: dict[int, ScheduledItem] = {}
    port_usage: dict[tuple[str, int], int] = {}
    order = _topological_order(items)
    for uid in order:
        item = items[uid]
        earliest_cycle = 0
        chain_delay = 0.0
        for dep_uid in item.depends_on:
            dep = placed.get(dep_uid)
            if dep is None:
                continue
            dep_item = dep.item
            if dep_item.latency_cycles > 0 or dep_item.is_block:
                candidate_cycle = dep.finish_cycle + 1
                candidate_delay = 0.0
            else:
                candidate_cycle = dep.finish_cycle
                candidate_delay = dep.finish_delay_ns
            if candidate_cycle > earliest_cycle:
                earliest_cycle, chain_delay = candidate_cycle, candidate_delay
            elif candidate_cycle == earliest_cycle:
                chain_delay = max(chain_delay, candidate_delay)
        # chaining check: push to the next cycle if the combinational path
        # would exceed the clock period.
        if item.latency_cycles == 0 and chain_delay + item.delay_ns > clock_period_ns:
            earliest_cycle += 1
            chain_delay = 0.0
        # memory-port constraint
        if item.is_memory and item.array in port_limits:
            limit = max(1, port_limits[item.array])
            while port_usage.get((item.array, earliest_cycle), 0) >= limit:
                earliest_cycle += 1
                chain_delay = 0.0
            port_usage[(item.array, earliest_cycle)] = (
                port_usage.get((item.array, earliest_cycle), 0) + 1
            )
        if item.latency_cycles == 0 and not item.is_block:
            finish_cycle = earliest_cycle
            finish_delay = chain_delay + item.delay_ns
        else:
            finish_cycle = earliest_cycle + max(1, item.latency_cycles) - 1
            finish_delay = item.delay_ns
        placed[uid] = ScheduledItem(
            item=item, start_cycle=earliest_cycle,
            finish_cycle=finish_cycle, finish_delay_ns=finish_delay,
        )
    result = ScheduleResult(items=[placed[uid] for uid in sorted(placed)])
    if result.items:
        result.length_cycles = max(p.finish_cycle for p in result.items) + 1
    return result


def _topological_order(items: list[Schedulable]) -> list[int]:
    """Topological order over the dependence edges (stable for ties)."""
    indegree = {item.uid: 0 for item in items}
    successors: dict[int, list[int]] = {item.uid: [] for item in items}
    for item in items:
        for dep in item.depends_on:
            if dep in indegree:
                indegree[item.uid] += 1
                successors[dep].append(item.uid)
    ready = sorted(uid for uid, deg in indegree.items() if deg == 0)
    order: list[int] = []
    while ready:
        uid = ready.pop(0)
        order.append(uid)
        for succ in successors[uid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(items):
        # dependence cycles should not occur (SSA + conservative memory
        # ordering is acyclic); fall back to program order defensively.
        return [item.uid for item in items]
    return order


# --------------------------------------------------------------------------- #
# initiation interval
# --------------------------------------------------------------------------- #
def recurrence_ii(
    recurrences: list[Recurrence],
    instr_by_id: dict[int, Instruction],
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> int:
    """Recurrence-constrained II: ``max(ceil(Delay_p / Distance_p))``."""
    worst = 1
    for recurrence in recurrences:
        delay_cycles = 0
        for instr_id in recurrence.chain:
            instr = instr_by_id.get(instr_id)
            if instr is None:
                continue
            delay_cycles += max(1, library.lookup_instr(instr).cycles)
        if recurrence.distance <= 0:
            continue
        worst = max(worst, math.ceil(delay_cycles / recurrence.distance))
    return worst


def resource_ii(
    access_counts: dict[str, int],
    ports: dict[str, int],
) -> int:
    """Resource-constrained II: ``max(ceil(Access_m / Ports_m))`` over arrays."""
    worst = 1
    for array, accesses in access_counts.items():
        port_count = max(1, ports.get(array, 1))
        worst = max(worst, math.ceil(accesses / port_count))
    return worst


def initiation_interval(
    recurrences: list[Recurrence],
    instr_by_id: dict[int, Instruction],
    access_counts: dict[str, int],
    ports: dict[str, int],
    *,
    target_ii: int = 0,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> int:
    """The achieved II: the maximum of both lower bounds and any user target."""
    lower_bound = max(
        recurrence_ii(recurrences, instr_by_id, library),
        resource_ii(access_counts, ports),
    )
    return max(lower_bound, target_ii, 1)


__all__ = [
    "Schedulable", "ScheduledItem", "ScheduleResult",
    "build_schedulables", "list_schedule",
    "recurrence_ii", "resource_ii", "initiation_interval",
]
