"""Directive (pragma) resolution: how HLS interprets a design point.

This module captures the Vitis HLS semantics of the pragmas the paper
supports, independent of both the graph constructor and the flow simulator so
that both consume identical interpretations:

* ``unroll``: factors clamp to the trip count; a pipelined ancestor forces
  full unrolling of every nested loop; factor 0 means "fully unroll".
* ``pipeline``: marks a loop as pipelined.  Together with ``loop_flatten`` on
  a perfect nest, the pipelined innermost loop absorbs the outer levels
  (their trip counts multiply into the pipeline's trip count).
* ``array_partition``: splits an array into banks; each bank exposes
  ``PORTS_PER_BANK`` memory ports to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.pragmas import ArrayDirective, PartitionType, PragmaConfig
from repro.ir.structure import ArrayInfo, IRFunction, Loop

#: A BRAM bank exposes a true dual-port interface.
PORTS_PER_BANK = 2


def effective_unroll_factors(function: IRFunction, config: PragmaConfig) -> dict[str, int]:
    """Resolve the unroll factor actually applied to every loop."""
    factors: dict[str, int] = {}

    def visit(loop: Loop, force_full: bool) -> None:
        directive = config.loop(loop.label)
        tripcount = max(1, loop.tripcount)
        factor = directive.unroll_factor
        if force_full or factor == 0:
            factor = tripcount
        factor = max(1, min(factor, tripcount))
        factors[loop.label] = factor
        for sub in loop.sub_loops():
            visit(sub, force_full or directive.pipeline)

    for top in function.top_level_loops():
        visit(top, False)
    return factors


def partition_banks(info: ArrayInfo, directive: ArrayDirective) -> int:
    """Number of banks an array is split into by a partition directive."""
    if directive.partition_type is PartitionType.COMPLETE:
        dim = min(max(directive.dim, 1), len(info.dims))
        return max(1, info.dims[dim - 1])
    return max(1, directive.factor)


def array_ports(info: ArrayInfo, directive: ArrayDirective) -> int:
    """Concurrent memory ports available for one array under a directive."""
    return partition_banks(info, directive) * PORTS_PER_BANK


def all_array_ports(function: IRFunction, config: PragmaConfig) -> dict[str, int]:
    """Port budget per array for a design point."""
    return {
        name: array_ports(info, config.array(name))
        for name, info in function.arrays.items()
    }


@dataclass(frozen=True)
class LoopRole:
    """How one loop participates in the design under a configuration.

    ``pipelined`` — the loop itself carries the pipeline (its body initiates
    every II cycles).  ``flattened_into`` — the label of the pipelined
    descendant this loop collapses into (perfect-nest flattening), or ``""``.
    ``fully_unrolled`` — the loop disappears into replicated logic.
    """

    label: str
    pipelined: bool = False
    flattened_into: str = ""
    fully_unrolled: bool = False


def resolve_loop_roles(function: IRFunction, config: PragmaConfig) -> dict[str, LoopRole]:
    """Determine the role of every loop under a design point."""
    unroll = effective_unroll_factors(function, config)
    roles: dict[str, LoopRole] = {}

    def pipelined_descendant_of_perfect_nest(loop: Loop) -> Loop | None:
        """The innermost loop of a perfect nest rooted at ``loop`` if the whole
        chain requests flattening down to a pipelined innermost loop."""
        current = loop
        while True:
            subs = current.sub_loops()
            if not subs:
                return current if config.loop(current.label).pipeline else None
            if len(subs) != 1 or sum(1 for _ in current.body.instructions()) > 0:
                return None
            # intermediate levels must request (or default to) flattening
            if not (config.loop(current.label).flatten or current is loop):
                return None
            current = subs[0]

    def visit(loop: Loop, ancestor_pipelined: bool) -> None:
        directive = config.loop(loop.label)
        fully_unrolled = unroll.get(loop.label, 1) >= max(1, loop.tripcount)
        flattened_into = ""
        pipelined = directive.pipeline
        if not pipelined and not ancestor_pipelined and directive.flatten:
            target = pipelined_descendant_of_perfect_nest(loop)
            if target is not None and target.label != loop.label:
                flattened_into = target.label
        if ancestor_pipelined:
            # a loop nested inside a pipelined loop is fully unrolled and has
            # no independent schedule of its own.
            pipelined = False
            fully_unrolled = True
        roles[loop.label] = LoopRole(
            label=loop.label, pipelined=pipelined,
            flattened_into=flattened_into, fully_unrolled=fully_unrolled,
        )
        for sub in loop.sub_loops():
            visit(sub, ancestor_pipelined or directive.pipeline)

    for top in function.top_level_loops():
        visit(top, False)
    return roles


__all__ = [
    "PORTS_PER_BANK", "effective_unroll_factors", "partition_banks",
    "array_ports", "all_array_ports", "LoopRole", "resolve_loop_roles",
]
