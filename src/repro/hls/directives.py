"""Directive (pragma) resolution: how HLS interprets a design point.

This module captures the Vitis HLS semantics of the pragmas the paper
supports, independent of both the graph constructor and the flow simulator so
that both consume identical interpretations:

* ``unroll``: factors clamp to the trip count; a pipelined ancestor forces
  full unrolling of every nested loop; factor 0 means "fully unroll".
* ``pipeline``: marks a loop as pipelined.  Together with ``loop_flatten`` on
  a perfect nest, the pipelined innermost loop absorbs the outer levels
  (their trip counts multiply into the pipeline's trip count).
* ``array_partition``: splits an array into banks; each bank exposes
  ``PORTS_PER_BANK`` memory ports to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.pragmas import (
    ArrayDirective,
    LoopDirective,
    PartitionType,
    PragmaConfig,
)
from repro.ir.structure import ArrayInfo, IRFunction, Loop

#: A BRAM bank exposes a true dual-port interface.
PORTS_PER_BANK = 2


def _flatten_target(config: PragmaConfig, loop: Loop) -> Loop | None:
    """The innermost loop of a perfect nest rooted at ``loop`` if the whole
    chain requests flattening down to a pipelined innermost loop."""
    current = loop
    while True:
        subs = current.sub_loops()
        if not subs:
            return current if config.loop(current.label).pipeline else None
        if len(subs) != 1 or sum(1 for _ in current.body.instructions()) > 0:
            return None
        # intermediate levels must request (or default to) flattening
        if not (config.loop(current.label).flatten or current is loop):
            return None
        current = subs[0]


def flatten_chain_targets(function: IRFunction, config: PragmaConfig) -> dict[str, str]:
    """Map every non-innermost member of an *active* flatten chain to the
    label of the pipelined innermost loop it collapses into.

    A chain is active when its root (and every intermediate level) requests
    flattening, is not itself pipelined, sits under no pipelined ancestor,
    and the nest is perfect down to a pipelined innermost loop — the exact
    conditions under which :func:`resolve_loop_roles` assigns
    ``flattened_into``.  Only structure and directives are consulted, never
    unroll factors, so :func:`effective_unroll_factors` can use the result
    without circularity.
    """
    targets: dict[str, str] = {}

    def visit(loop: Loop, ancestor_pipelined: bool) -> None:
        directive = config.loop(loop.label)
        if not ancestor_pipelined and not directive.pipeline and directive.flatten:
            target = _flatten_target(config, loop)
            if target is not None and target.label != loop.label:
                targets[loop.label] = target.label
        for sub in loop.sub_loops():
            visit(sub, ancestor_pipelined or directive.pipeline)

    for top in function.top_level_loops():
        visit(top, False)
    return targets


def effective_unroll_factors(function: IRFunction, config: PragmaConfig) -> dict[str, int]:
    """Resolve the unroll factor actually applied to every loop.

    Non-innermost members of an active flatten chain resolve to factor 1
    regardless of what the directive requests: flattening collapses the
    whole nest into the pipelined innermost loop, whose iteration space is
    the product of the *full* outer trip counts — an unroll factor on an
    absorbed outer level has no loop left to replicate.
    """
    factors: dict[str, int] = {}
    flattened_away = flatten_chain_targets(function, config)

    def visit(loop: Loop, force_full: bool) -> None:
        directive = config.loop(loop.label)
        tripcount = max(1, loop.tripcount)
        factor = directive.unroll_factor
        if force_full or factor == 0:
            factor = tripcount
        factor = max(1, min(factor, tripcount))
        if loop.label in flattened_away:
            factor = 1
        factors[loop.label] = factor
        for sub in loop.sub_loops():
            visit(sub, force_full or directive.pipeline)

    for top in function.top_level_loops():
        visit(top, False)
    return factors


def partition_banks(info: ArrayInfo, directive: ArrayDirective) -> int:
    """Number of banks an array is split into by a partition directive."""
    if directive.partition_type is PartitionType.COMPLETE:
        dim = min(max(directive.dim, 1), len(info.dims))
        return max(1, info.dims[dim - 1])
    return max(1, directive.factor)


def array_ports(info: ArrayInfo, directive: ArrayDirective) -> int:
    """Concurrent memory ports available for one array under a directive."""
    return partition_banks(info, directive) * PORTS_PER_BANK


def all_array_ports(function: IRFunction, config: PragmaConfig) -> dict[str, int]:
    """Port budget per array for a design point."""
    return {
        name: array_ports(info, config.array(name))
        for name, info in function.arrays.items()
    }


@dataclass(frozen=True)
class LoopRole:
    """How one loop participates in the design under a configuration.

    ``pipelined`` — the loop itself carries the pipeline (its body initiates
    every II cycles).  ``flattened_into`` — the label of the pipelined
    descendant this loop collapses into (perfect-nest flattening), or ``""``.
    ``fully_unrolled`` — the loop disappears into replicated logic.
    """

    label: str
    pipelined: bool = False
    flattened_into: str = ""
    fully_unrolled: bool = False


def resolve_loop_roles(function: IRFunction, config: PragmaConfig) -> dict[str, LoopRole]:
    """Determine the role of every loop under a design point."""
    unroll = effective_unroll_factors(function, config)
    roles: dict[str, LoopRole] = {}

    def visit(loop: Loop, ancestor_pipelined: bool) -> None:
        directive = config.loop(loop.label)
        fully_unrolled = unroll.get(loop.label, 1) >= max(1, loop.tripcount)
        flattened_into = ""
        pipelined = directive.pipeline
        if not pipelined and not ancestor_pipelined and directive.flatten:
            target = _flatten_target(config, loop)
            if target is not None and target.label != loop.label:
                flattened_into = target.label
        if ancestor_pipelined:
            # a loop nested inside a pipelined loop is fully unrolled and has
            # no independent schedule of its own.
            pipelined = False
            fully_unrolled = True
        roles[loop.label] = LoopRole(
            label=loop.label, pipelined=pipelined,
            flattened_into=flattened_into, fully_unrolled=fully_unrolled,
        )
        for sub in loop.sub_loops():
            visit(sub, ancestor_pipelined or directive.pipeline)

    for top in function.top_level_loops():
        visit(top, False)
    return roles


# --------------------------------------------------------------------------- #
# effective-directive canonicalization
# --------------------------------------------------------------------------- #
def _directive_lenses(function: IRFunction, config: PragmaConfig) -> tuple:
    """Everything HLS (graph construction, features, the flow simulator)
    actually reads out of a configuration: the effective unroll map, the
    loop roles, the pipeline II targets of loops whose II is live (the loop
    is pipelined or flattens into a pipelined one), and per partitioned
    array the bank count, the resolved dimension and whether bank
    resolution runs the ``block`` branch (``cyclic`` and ``complete``
    share one branch).  Two configurations with equal lenses produce
    identical graphs, identical features and identical flow reports."""
    unroll = effective_unroll_factors(function, config)
    roles = resolve_loop_roles(function, config)
    live_ii = {
        label: config.loop(label).ii
        for label, role in roles.items()
        if role.pipelined or role.flattened_into
    }
    arrays = {}
    for name, info in function.arrays.items():
        directive = config.array(name)
        banks = partition_banks(info, directive)
        if banks <= 1:
            continue
        dim = min(max(directive.dim, 1), max(1, len(info.dims)))
        arrays[name] = (
            banks, dim, directive.partition_type is PartitionType.BLOCK
        )
    return unroll, roles, live_ii, arrays


def canonicalize_config(function: IRFunction, config: PragmaConfig) -> PragmaConfig:
    """Rewrite a configuration into its *effective* (canonical) form.

    The returned configuration requests exactly what HLS resolves the raw
    one to: per-loop directives are rebuilt from the loop's role (pipeline
    iff the loop carries the pipeline, flatten iff it collapses into a
    pipelined descendant) and its effective unroll factor (clamped to the
    trip count, with factor 0 / pipelined-ancestor full unrolling spelled
    out), IIs survive only where they are live, and array partitioning is
    rewritten to the resolved bank count (directives resolving to a single
    bank are dropped, ``complete`` becomes the equivalent ``cyclic`` over
    the same banks, dimensions clamp to the array rank).  Directives naming
    loops or arrays the kernel does not have are discarded.

    Configurations that HLS treats identically — e.g. flatten-chain outer
    levels carrying different (absorbed) unroll factors, or a partition
    factor above the unrolled parallelism it was matched to — therefore
    collapse to one canonical key, which is what the design-space dedup
    algebra (:meth:`repro.dse.space.DesignSpace.dedup`) and every
    canonical-signature cache key by.

    The rewrite is self-verifying: the canonical candidate must resolve to
    lenses (unroll map, roles, live IIs, bank resolution) identical to the
    raw configuration's, and idempotence is guaranteed because the lenses
    determine the rewrite.  If an exotic directive interplay breaks the
    round trip — e.g. a pipeline bit that only matters as a flatten-chain
    endpoint of some ancestor — the raw configuration is returned
    unchanged, trading dedup for exactness.
    """
    raw_lenses = _directive_lenses(function, config)
    unroll, roles = raw_lenses[0], raw_lenses[1]
    loops: dict[str, LoopDirective] = {}
    for loop in function.all_loops():
        role = roles[loop.label]
        pipeline = role.pipelined
        flatten = bool(role.flattened_into)
        factor = unroll.get(loop.label, 1)
        ii = config.loop(loop.label).ii if (pipeline or flatten) else 0
        if pipeline or flatten or factor > 1:
            loops[loop.label] = LoopDirective(
                pipeline=pipeline, ii=ii, unroll_factor=factor, flatten=flatten
            )
    arrays: dict[str, ArrayDirective] = {}
    for name, info in function.arrays.items():
        directive = config.array(name)
        banks = partition_banks(info, directive)
        if banks <= 1:
            continue
        partition_type = directive.partition_type
        if partition_type is PartitionType.COMPLETE:
            partition_type = PartitionType.CYCLIC
        arrays[name] = ArrayDirective(
            partition_type=partition_type,
            factor=banks,
            dim=min(max(directive.dim, 1), max(1, len(info.dims))),
        )
    candidate = PragmaConfig.from_dicts(loops, arrays)
    if candidate == config:
        return config
    if _directive_lenses(function, candidate) != raw_lenses:
        return config
    return candidate


__all__ = [
    "PORTS_PER_BANK", "flatten_chain_targets", "effective_unroll_factors",
    "partition_banks", "array_ports", "all_array_ports", "LoopRole",
    "resolve_loop_roles", "canonicalize_config",
]
