"""Post-route implementation model (logic synthesis + place & route).

The paper's labels couple an HLS report (latency) with an *implementation*
report (post-route LUT/FF/DSP), because post-HLS resource estimates deviate
systematically from what Vivado reports after place & route.  This module
reproduces that systematic gap on top of the post-HLS estimate from
:mod:`repro.hls.binding`:

* logic optimization removes a structure-dependent fraction of LUTs (LUT
  combining, constant propagation) — larger designs with more regular
  replication (unrolling) optimize better;
* technology mapping and routing add interconnect LUTs and control-set FFs
  that grow **super-linearly** with design size and with the number of
  memory banks (multiplexing/arbitration logic);
* retiming moves registers into DSP blocks, slightly reducing FF counts for
  DSP-heavy designs;
* a small, deterministic, design-keyed perturbation models tool noise.

All effects are deterministic functions of the design structure, so a model
that sees the (pragma-aware) CDFG can learn them — which is exactly the
learning problem the paper poses.
"""

from __future__ import annotations

import hashlib
import math

from repro.frontend.pragmas import PragmaConfig
from repro.hls.op_library import CLOCK_PERIOD_NS
from repro.hls.reports import HLSReport, ImplReport, ResourceUsage

#: ZCU102 (XCZU9EG) device capacity, used for utilization-dependent effects.
DEVICE_LUTS = 274_080
DEVICE_FFS = 548_160
DEVICE_DSPS = 2_520


def _design_noise(kernel: str, config_key: str, salt: str, spread: float) -> float:
    """Deterministic pseudo-random factor in ``[1 - spread, 1 + spread]``.

    Keyed on the kernel and configuration so that re-running the flow always
    produces identical labels (reproducible datasets), while different design
    points see independent perturbations — mimicking P&R seed noise.
    """
    digest = hashlib.sha256(f"{kernel}|{config_key}|{salt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 1.0 + spread * (2.0 * fraction - 1.0)


def run_implementation(
    hls_report: HLSReport,
    config: PragmaConfig | None = None,
    *,
    memory_banks: int = 1,
    pipeline_depth: int = 1,
    replication: int = 1,
    noise_spread: float = 0.025,
) -> ImplReport:
    """Produce the post-route implementation report for a synthesized design.

    Parameters
    ----------
    hls_report:
        Post-HLS resource estimate and latency.
    memory_banks:
        Total number of BRAM banks after array partitioning (drives
        interconnect and arbitration overhead).
    pipeline_depth:
        Maximum pipeline depth across loops (drives control-set FF growth).
    replication:
        Total hardware replication factor from unrolling (regular replicated
        logic packs better, reducing LUTs).
    """
    config_key = hls_report.config_key
    kernel = hls_report.kernel
    est = hls_report.resources

    # --- logic optimization: structure-dependent LUT reduction -------------
    regularity = min(0.14, 0.02 * math.log2(max(1, replication)) + 0.04)
    lut_after_synth = est.lut * (1.0 - regularity)

    # --- interconnect / routing overhead ------------------------------------
    utilization = min(0.85, est.lut / DEVICE_LUTS)
    interconnect = 0.045 * (est.lut ** 1.08) / max(1.0, est.lut ** 0.08)
    congestion = 1.0 + 0.35 * utilization * utilization
    bank_mux = 9.5 * memory_banks * math.log2(max(2, memory_banks))
    lut_routed = (lut_after_synth + interconnect + bank_mux) * congestion

    # --- register effects ----------------------------------------------------
    control_sets = 1.0 + 0.012 * pipeline_depth + 0.05 * utilization
    dsp_retiming = 1.0 - min(0.08, 0.008 * est.dsp / max(1.0, est.dsp ** 0.5 + 1))
    ff_routed = est.ff * control_sets * dsp_retiming + 6.0 * memory_banks

    # --- DSP mapping ---------------------------------------------------------
    # mul-by-constant and small multiplies occasionally map to fabric.
    dsp_routed = est.dsp * (1.0 - min(0.06, 0.01 * math.log2(max(1, replication))))

    # --- deterministic tool noise -------------------------------------------
    lut_routed *= _design_noise(kernel, config_key, "lut", noise_spread)
    ff_routed *= _design_noise(kernel, config_key, "ff", noise_spread)
    dsp_routed *= _design_noise(kernel, config_key, "dsp", noise_spread / 2)

    # --- achieved clock ------------------------------------------------------
    achieved_clock = CLOCK_PERIOD_NS * (1.0 + 0.25 * utilization) * _design_noise(
        kernel, config_key, "clk", noise_spread
    )

    # --- runtime model (used to report "Vivado DSE time" in Table V) --------
    runtime = 380.0 + 0.055 * lut_routed + 14.0 * memory_banks + 90.0 * utilization

    return ImplReport(
        kernel=kernel,
        config_key=config_key,
        resources=ResourceUsage(
            lut=round(lut_routed), ff=round(ff_routed),
            dsp=round(dsp_routed), bram=est.bram,
        ),
        achieved_clock_ns=achieved_clock,
        runtime_seconds=runtime,
    )


__all__ = ["run_implementation", "DEVICE_LUTS", "DEVICE_FFS", "DEVICE_DSPS"]
