"""Report dataclasses produced by the HLS and implementation flows.

Mirrors the artifacts the paper extracts from the vendor tools: latency and
initiation intervals from the **HLS report**, and post-route resource usage
from the **implementation (place & route) report**.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ResourceUsage:
    """LUT / FF / DSP / BRAM usage of a design or design fragment."""

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut, ff=self.ff + other.ff,
            dsp=self.dsp + other.dsp, bram=self.bram + other.bram,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut * factor, ff=self.ff * factor,
            dsp=self.dsp * factor, bram=self.bram * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp, "bram": self.bram}

    @staticmethod
    def zero() -> "ResourceUsage":
        return ResourceUsage()


@dataclass
class LoopReport:
    """Per-loop results from the HLS flow.

    ``latency`` is the total cycle count of the loop (all iterations),
    ``iteration_latency`` the cycles of one iteration (the IL feature of the
    paper), ``ii`` the achieved initiation interval (1 iteration per ``ii``
    cycles when pipelined; equals ``iteration_latency`` otherwise).
    """

    label: str
    pipelined: bool = False
    unroll_factor: int = 1
    tripcount: int = 1
    ii: int = 1
    iteration_latency: int = 1
    latency: int = 1
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    is_inner_unit: bool = False
    flattened_levels: int = 1


@dataclass
class HLSReport:
    """The post-synthesis (post-HLS) report for one design point."""

    kernel: str
    config_key: str
    latency: int = 0
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    loops: dict[str, LoopReport] = field(default_factory=dict)
    #: simulated wall-clock runtime of the HLS step (seconds)
    runtime_seconds: float = 0.0

    def loop(self, label: str) -> LoopReport:
        return self.loops[label]


@dataclass
class ImplReport:
    """The post-route (place & route) implementation report."""

    kernel: str
    config_key: str
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    achieved_clock_ns: float = 0.0
    #: simulated wall-clock runtime of logic synthesis + P&R (seconds)
    runtime_seconds: float = 0.0


@dataclass
class QoRResult:
    """Combined quality-of-results for one design point.

    This is what one sample's label looks like in the datasets: latency from
    the HLS report, LUT/FF/DSP from the post-route implementation report
    (exactly the label construction described in the paper's Fig. 1).
    """

    kernel: str
    config_key: str
    latency: int
    resources: ResourceUsage
    hls_report: HLSReport | None = None
    impl_report: ImplReport | None = None

    @property
    def lut(self) -> float:
        return self.resources.lut

    @property
    def ff(self) -> float:
        return self.resources.ff

    @property
    def dsp(self) -> float:
        return self.resources.dsp

    @property
    def total_flow_runtime(self) -> float:
        """Simulated end-to-end C-to-bitstream runtime in seconds."""
        runtime = 0.0
        if self.hls_report is not None:
            runtime += self.hls_report.runtime_seconds
        if self.impl_report is not None:
            runtime += self.impl_report.runtime_seconds
        return runtime

    def as_dict(self) -> dict[str, float]:
        return {
            "latency": float(self.latency),
            "lut": self.resources.lut,
            "ff": self.resources.ff,
            "dsp": self.resources.dsp,
        }


__all__ = ["ResourceUsage", "LoopReport", "HLSReport", "ImplReport", "QoRResult"]
