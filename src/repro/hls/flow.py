"""The C-to-bitstream flow simulator.

``run_hls`` plays the role of Vitis HLS (scheduling, binding, loop transforms
under the pragma configuration, producing latency and post-HLS resources);
``run_full_flow`` chains it with the post-route implementation model of
:mod:`repro.hls.implementation` to produce the final ground-truth QoR labels
used throughout the project (Fig. 1 of the paper, training phase).

The latency of the overall design and of every loop is computed bottom-up
over the loop tree, following Vitis HLS semantics:

* loops nested inside a pipelined loop are fully unrolled; the pipelined loop
  runs ``TC`` iterations with an initiation interval ``II = max(II_rec,
  II_res)`` and an iteration latency obtained from a port-constrained list
  schedule of its (replicated) body;
* non-pipelined loops execute iterations sequentially; unrolling replicates
  the body logic and the replicas compete for memory ports;
* perfect nests with ``loop_flatten`` collapse into the pipelined innermost
  loop with a multiplied trip count;
* sibling loops and straight-line code execute sequentially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.frontend.pragmas import PragmaConfig
from repro.hls.binding import (
    bind_operations,
    loop_control,
    memory_interface,
    staging_registers,
)
from repro.hls.directives import (
    all_array_ports,
    effective_unroll_factors,
    partition_banks,
    resolve_loop_roles,
)
from repro.hls.implementation import run_implementation
from repro.hls.op_library import CLOCK_PERIOD_NS, DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.reports import HLSReport, LoopReport, QoRResult, ResourceUsage
from repro.hls.scheduling import (
    Schedulable,
    initiation_interval,
    list_schedule,
)
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IfRegion, IRFunction, Loop, Region

#: hard cap on the number of hardware operation instances considered when
#: replicating loop bodies (guards against pathological full unrolls).
MAX_HARDWARE_OPS = 16384

#: fixed function-level interface overhead (AXI-lite control, return logic)
_FUNCTION_INTERFACE = ResourceUsage(lut=142.0, ff=188.0)


@dataclass
class _RegionResult:
    latency: int = 0
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    accessed_arrays: set[str] = field(default_factory=set)


class HLSFlow:
    """Evaluates one design point (kernel + pragma configuration)."""

    def __init__(
        self,
        function: IRFunction,
        config: PragmaConfig | None = None,
        *,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        clock_period_ns: float = CLOCK_PERIOD_NS,
    ):
        self.function = function
        self.config = config or PragmaConfig()
        self.library = library
        self.clock_period_ns = clock_period_ns
        self.unroll = effective_unroll_factors(function, self.config)
        self.roles = resolve_loop_roles(function, self.config)
        self.ports = all_array_ports(function, self.config)
        self.loop_reports: dict[str, LoopReport] = {}
        self._instr_by_id = {
            instr.instr_id: instr for instr in function.all_instructions()
        }

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> HLSReport:
        """Run scheduling/binding and produce the post-HLS report."""
        body_result = self._evaluate_region(self.function.body)
        resources = body_result.resources
        resources = resources + memory_interface(
            self.function.arrays, self.config, body_result.accessed_arrays
        )
        resources = resources + _FUNCTION_INTERFACE
        latency = max(1, body_result.latency + 2)
        runtime = 95.0 + 0.006 * resources.lut + 0.35 * math.sqrt(max(1, latency))
        report = HLSReport(
            kernel=self.function.name,
            config_key=self.config.key(),
            latency=latency,
            resources=resources,
            loops=dict(self.loop_reports),
            runtime_seconds=runtime,
        )
        return report

    # ------------------------------------------------------------------ #
    # region evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_region(self, region: Region) -> _RegionResult:
        result = _RegionResult()
        straight_line: list[Instruction] = []
        for item in region.items:
            if isinstance(item, Instruction):
                straight_line.append(item)
                if item.array:
                    result.accessed_arrays.add(item.array)
            elif isinstance(item, Loop):
                report = self._evaluate_loop(item)
                result.latency += report.latency
                result.resources = result.resources + report.resources
                result.accessed_arrays |= self._arrays_in_loop(item)
            elif isinstance(item, IfRegion):
                then_result = self._evaluate_region(item.then_region)
                else_result = self._evaluate_region(item.else_region)
                result.latency += max(then_result.latency, else_result.latency)
                result.resources = (
                    result.resources + then_result.resources + else_result.resources
                )
                result.accessed_arrays |= then_result.accessed_arrays
                result.accessed_arrays |= else_result.accessed_arrays
        if straight_line:
            schedule = self._schedule_instructions([straight_line])
            result.latency += schedule.length_cycles
            result.resources = result.resources + bind_operations(
                straight_line, schedule, pipelined=False, library=self.library
            )
            result.resources = result.resources + staging_registers(
                straight_line, schedule, pipelined=False, library=self.library
            )
        return result

    # ------------------------------------------------------------------ #
    # loop evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_loop(self, loop: Loop) -> LoopReport:
        role = self.roles[loop.label]
        if role.flattened_into:
            report = self._evaluate_flattened_nest(loop, role.flattened_into)
        elif role.pipelined:
            report = self._evaluate_pipelined(loop)
        else:
            report = self._evaluate_sequential(loop)
        self.loop_reports[loop.label] = report
        return report

    def _evaluate_pipelined(self, loop: Loop, extra_tripcount: int = 1,
                            flattened_levels: int = 1) -> LoopReport:
        """A pipelined loop: inner loops fully unrolled, iterations overlap."""
        factor = self.unroll.get(loop.label, 1)
        tripcount = max(1, loop.tripcount)
        factor = min(factor, tripcount)
        iterations = max(1, math.ceil(tripcount / factor)) * max(1, extra_tripcount)

        replicas = self._replicated_body(loop, factor)
        flat_instrs = [instr for replica in replicas for instr in replica]
        schedule = self._schedule_instructions(
            replicas, serialize_chains=self._recurrence_chains(loop)
        )
        iteration_latency = max(1, schedule.length_cycles)
        ii = self._loop_ii(loop, flat_instrs, unroll_factor=factor)
        if not self.config.loop(loop.label).ii:
            # without an explicit user target the achieved II never exceeds
            # the iteration latency (issuing slower than that gains nothing).
            ii = min(ii, iteration_latency)
        latency = iteration_latency + ii * (iterations - 1) + 2

        resources = bind_operations(
            flat_instrs, schedule, pipelined=True, ii=ii, library=self.library
        )
        resources = resources + staging_registers(
            flat_instrs, schedule, pipelined=True, library=self.library
        )
        resources = resources + loop_control(flattened_levels, pipelined=True)
        return LoopReport(
            label=loop.label, pipelined=True, unroll_factor=factor,
            tripcount=iterations, ii=ii, iteration_latency=iteration_latency,
            latency=latency, resources=resources, is_inner_unit=True,
            flattened_levels=flattened_levels,
        )

    def _evaluate_flattened_nest(self, loop: Loop, innermost_label: str) -> LoopReport:
        """A perfect nest flattened into its pipelined innermost loop."""
        chain: list[Loop] = [loop]
        current = loop
        while current.label != innermost_label:
            subs = current.sub_loops()
            if not subs:
                break
            current = subs[0]
            chain.append(current)
        innermost = chain[-1]
        outer_iterations = 1
        for level in chain[:-1]:
            outer_iterations *= max(1, level.tripcount)
        report = self._evaluate_pipelined(
            innermost, extra_tripcount=outer_iterations,
            flattened_levels=len(chain),
        )
        report.label = loop.label
        return report

    def _evaluate_sequential(self, loop: Loop) -> LoopReport:
        """A non-pipelined loop: iterations execute back to back."""
        factor = self.unroll.get(loop.label, 1)
        tripcount = max(1, loop.tripcount)
        factor = min(factor, tripcount)
        iterations = max(1, math.ceil(tripcount / factor))
        fully_unrolled = factor >= tripcount

        # child loops first (they are replicated `factor` times in hardware)
        child_latency = 0
        child_resources = ResourceUsage()
        for child in loop.sub_loops():
            child_report = self._evaluate_loop(child)
            concurrency = self._replica_concurrency(child, factor)
            child_latency += int(
                math.ceil(child_report.latency * factor / max(1, concurrency))
            )
            child_resources = child_resources + child_report.resources.scaled(factor)

        # straight-line part of the body, replicated by the unroll factor
        body_instrs = [
            instr for instr in loop.body.instructions()
        ] + self._if_instructions(loop.body)
        replicas = [list(body_instrs) for _ in range(factor)] if body_instrs else []
        schedule = self._schedule_instructions(
            replicas, serialize_chains=self._recurrence_chains(loop)
        )
        straight_latency = schedule.length_cycles if body_instrs else 0
        flat_instrs = [instr for replica in replicas for instr in replica]

        iteration_latency = max(1, straight_latency + child_latency + 1)
        if fully_unrolled and not loop.sub_loops():
            # the loop dissolves into straight-line logic
            latency = max(1, straight_latency)
            iteration_latency = latency
        else:
            latency = iterations * iteration_latency + 1

        resources = child_resources
        if flat_instrs:
            resources = resources + bind_operations(
                flat_instrs, schedule, pipelined=False, library=self.library
            )
            resources = resources + staging_registers(
                flat_instrs, schedule, pipelined=False, library=self.library
            )
        if not fully_unrolled:
            resources = resources + loop_control(1, pipelined=False)
        return LoopReport(
            label=loop.label, pipelined=False, unroll_factor=factor,
            tripcount=iterations, ii=iteration_latency,
            iteration_latency=iteration_latency, latency=latency,
            resources=resources, is_inner_unit=loop.is_innermost,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _replicated_body(self, loop: Loop, factor: int) -> list[list[Instruction]]:
        """Body instructions of a pipelined loop, with inner loops fully
        unrolled and the loop's own unroll applied — one list per replica."""
        base: list[Instruction] = []

        def expand(region: Region, multiplier: int) -> None:
            for item in region.items:
                if isinstance(item, Instruction):
                    if item.opcode is Opcode.ALLOCA:
                        continue
                    base.extend([item] * min(multiplier, MAX_HARDWARE_OPS))
                elif isinstance(item, Loop):
                    inner_multiplier = multiplier * max(1, item.tripcount)
                    expand(item.body, min(inner_multiplier, MAX_HARDWARE_OPS))
                elif isinstance(item, IfRegion):
                    expand(item.then_region, multiplier)
                    expand(item.else_region, multiplier)

        expand(loop.body, 1)
        if len(base) * factor > MAX_HARDWARE_OPS:
            factor = max(1, MAX_HARDWARE_OPS // max(1, len(base)))
        return [list(base) for _ in range(factor)]

    def _if_instructions(self, region: Region) -> list[Instruction]:
        """Instructions inside if-regions directly under ``region``."""
        extra: list[Instruction] = []
        for item in region.items:
            if isinstance(item, IfRegion):
                extra.extend(item.then_region.walk_instructions())
                extra.extend(item.else_region.walk_instructions())
        return extra

    def _schedule_instructions(
        self,
        replicas: list[list[Instruction]],
        serialize_chains: list[tuple[int, ...]] | None = None,
    ):
        """Schedule replicated instruction lists with port limits.

        ``serialize_chains`` lists recurrence chains (tuples of instruction
        ids); occurrences of a chain in consecutive replicas are serialized,
        modelling the fact that unrolling a reduction does not break its
        dependence chain.
        """
        items: list[Schedulable] = []
        uid = 0
        chain_tails: dict[tuple[int, ...], int] = {}
        serialize_chains = serialize_chains or []
        chain_membership = {
            instr_id: chain for chain in serialize_chains for instr_id in chain
        }
        for replica in replicas:
            local_map: dict[int, int] = {}
            for instr in replica:
                if instr.opcode is Opcode.ALLOCA:
                    continue
                char = self.library.lookup_instr(instr)
                item = Schedulable(
                    uid=uid, instr=instr, latency_cycles=char.cycles,
                    delay_ns=char.delay_ns, array=instr.array,
                    is_memory=instr.opcode in (Opcode.LOAD, Opcode.STORE),
                    is_store=instr.opcode is Opcode.STORE,
                )
                for operand in instr.value_operands:
                    if operand.instr_id in local_map:
                        item.depends_on.append(local_map[operand.instr_id])
                chain = chain_membership.get(instr.instr_id)
                if chain is not None:
                    if chain in chain_tails:
                        item.depends_on.append(chain_tails[chain])
                    chain_tails[chain] = uid
                local_map[instr.instr_id] = uid
                items.append(item)
                uid += 1
        return list_schedule(
            items, port_limits=self.ports, clock_period_ns=self.clock_period_ns
        )

    def _recurrence_chains(self, loop: Loop) -> list[tuple[int, ...]]:
        labels = {loop.label} | {sub.label for sub in loop.all_sub_loops()}
        return [
            rec.chain for rec in self.function.recurrences
            if rec.loop_label in labels
        ]

    def _loop_ii(
        self, loop: Loop, body_instrs: list[Instruction], unroll_factor: int
    ) -> int:
        access_counts: dict[str, int] = {}
        for instr in body_instrs:
            if instr.opcode in (Opcode.LOAD, Opcode.STORE) and instr.array:
                access_counts[instr.array] = access_counts.get(instr.array, 0) + 1
        recurrences = [
            rec for rec in self.function.recurrences if rec.loop_label == loop.label
        ]
        if unroll_factor > 1 and recurrences:
            # an unrolled accumulation serializes its replicas: the effective
            # dependence chain within one (unrolled) iteration grows.
            recurrences = [
                type(rec)(
                    loop_label=rec.loop_label, distance=rec.distance,
                    chain=rec.chain * unroll_factor, kind=rec.kind, array=rec.array,
                )
                for rec in recurrences
            ]
        target = self.config.loop(loop.label).ii
        return initiation_interval(
            recurrences, self._instr_by_id, access_counts, self.ports,
            target_ii=target, library=self.library,
        )

    def _replica_concurrency(self, child: Loop, factor: int) -> int:
        """How many replicas of a child loop can run concurrently, limited by
        the memory bandwidth of the arrays the child accesses.

        One replica of the child issues roughly ``total_accesses / latency``
        memory operations per cycle to each array; the available ports cap
        how many replicas can sustain that rate simultaneously.
        """
        if factor <= 1:
            return 1
        child_report = self.loop_reports.get(child.label)
        child_latency = max(1, child_report.latency if child_report else 1)
        accesses = self._total_access_counts(child)
        concurrency = factor
        for array, count in accesses.items():
            ports = max(1, self.ports.get(array, 1))
            per_replica_demand = count / child_latency
            if per_replica_demand <= 0:
                continue
            concurrency = min(concurrency, max(1, int(ports / per_replica_demand)))
        return max(1, concurrency)

    def _total_access_counts(self, loop: Loop) -> dict[str, int]:
        """Total dynamic load/store count per array over one full execution
        of ``loop`` (its own iterations included)."""
        counts: dict[str, int] = {}

        def visit(region: Region, multiplier: int) -> None:
            for item in region.items:
                if isinstance(item, Instruction):
                    if item.opcode in (Opcode.LOAD, Opcode.STORE) and item.array:
                        counts[item.array] = counts.get(item.array, 0) + multiplier
                elif isinstance(item, Loop):
                    visit(item.body, multiplier * max(1, item.tripcount))
                elif isinstance(item, IfRegion):
                    visit(item.then_region, multiplier)
                    visit(item.else_region, multiplier)

        visit(loop.body, max(1, loop.tripcount))
        return counts

    def _arrays_in_loop(self, loop: Loop) -> set[str]:
        return {
            instr.array for instr in loop.body.walk_instructions() if instr.array
        }


# --------------------------------------------------------------------------- #
# module-level entry points
# --------------------------------------------------------------------------- #
def run_hls(
    function: IRFunction,
    config: PragmaConfig | None = None,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    clock_period_ns: float = CLOCK_PERIOD_NS,
) -> HLSReport:
    """Run the HLS step only (scheduling + binding): the post-HLS report."""
    return HLSFlow(
        function, config, library=library, clock_period_ns=clock_period_ns
    ).run()


def run_full_flow(
    function: IRFunction,
    config: PragmaConfig | None = None,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    clock_period_ns: float = CLOCK_PERIOD_NS,
) -> QoRResult:
    """Run the complete C-to-bitstream flow and return ground-truth QoR.

    Latency comes from the HLS report and LUT/FF/DSP from the post-route
    implementation report, exactly mirroring the label construction of the
    paper.
    """
    config = config or PragmaConfig()
    hls_report = run_hls(
        function, config, library=library, clock_period_ns=clock_period_ns
    )
    banks = sum(
        partition_banks(info, config.array(name))
        for name, info in function.arrays.items()
    )
    pipeline_depth = max(
        [report.iteration_latency for report in hls_report.loops.values()
         if report.pipelined] or [1]
    )
    replication = 1
    for factor in effective_unroll_factors(function, config).values():
        replication = min(replication * factor, 4096)
    impl_report = run_implementation(
        hls_report, config, memory_banks=max(1, banks),
        pipeline_depth=pipeline_depth, replication=replication,
    )
    return QoRResult(
        kernel=function.name,
        config_key=config.key(),
        latency=hls_report.latency,
        resources=impl_report.resources,
        hls_report=hls_report,
        impl_report=impl_report,
    )


__all__ = ["HLSFlow", "run_hls", "run_full_flow", "MAX_HARDWARE_OPS"]
