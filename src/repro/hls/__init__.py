"""HLS + implementation flow simulator (the ground-truth label generator).

This package substitutes for Vitis HLS 2022.1 + Vivado 2022.1 in the paper's
methodology: it schedules and binds a kernel under a pragma configuration,
reports latency (post-HLS) and applies a post-route implementation model to
produce LUT/FF/DSP labels.
"""

from repro.hls.binding import (
    bind_operations,
    loop_control,
    memory_interface,
    staging_registers,
)
from repro.hls.directives import (
    PORTS_PER_BANK,
    all_array_ports,
    array_ports,
    effective_unroll_factors,
    partition_banks,
    resolve_loop_roles,
)
from repro.hls.flow import MAX_HARDWARE_OPS, HLSFlow, run_full_flow, run_hls
from repro.hls.implementation import (
    DEVICE_DSPS,
    DEVICE_FFS,
    DEVICE_LUTS,
    run_implementation,
)
from repro.hls.op_library import (
    CLOCK_PERIOD_NS,
    DEFAULT_LIBRARY,
    MEMORY_PORT,
    OpCharacterization,
    OperatorLibrary,
)
from repro.hls.reports import HLSReport, ImplReport, LoopReport, QoRResult, ResourceUsage
from repro.hls.scheduling import (
    Schedulable,
    ScheduledItem,
    ScheduleResult,
    build_schedulables,
    initiation_interval,
    list_schedule,
    recurrence_ii,
    resource_ii,
)

__all__ = [
    "bind_operations", "loop_control", "memory_interface", "staging_registers",
    "PORTS_PER_BANK", "all_array_ports", "array_ports",
    "effective_unroll_factors", "partition_banks", "resolve_loop_roles",
    "MAX_HARDWARE_OPS", "HLSFlow", "run_full_flow", "run_hls",
    "DEVICE_DSPS", "DEVICE_FFS", "DEVICE_LUTS", "run_implementation",
    "CLOCK_PERIOD_NS", "DEFAULT_LIBRARY", "MEMORY_PORT",
    "OpCharacterization", "OperatorLibrary",
    "HLSReport", "ImplReport", "LoopReport", "QoRResult", "ResourceUsage",
    "Schedulable", "ScheduledItem", "ScheduleResult", "build_schedulables",
    "initiation_interval", "list_schedule", "recurrence_ii", "resource_ii",
]
