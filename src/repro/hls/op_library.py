"""Operator characterization library.

The paper profiles micro-benchmarks through Vitis HLS / Vivado to build a
per-operation library of latency (clock cycles), combinational delay (ns) and
resource usage (LUT / FF / DSP), which is then used both to annotate CDFG
node features (Table II) and inside the QoR ground-truth flow.  This module
plays that role: a single characterization table shared by the feature
annotator (:mod:`repro.graph.features`) and the HLS flow simulator
(:mod:`repro.hls`), targeting a ZCU102-class device at a 300 MHz clock.

Values are representative of Vitis HLS 2022.x operator characterizations for
32-bit operands; they do not need to match the vendor tool exactly — what
matters for the reproduction is that the same library drives both the model
inputs and the label generator, exactly as in the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Opcode

#: Target clock period in nanoseconds (300 MHz, as commonly used on ZCU102).
CLOCK_PERIOD_NS = 3.33


@dataclass(frozen=True)
class OpCharacterization:
    """Delay/latency/resource figures for one operation type."""

    cycles: int = 0
    delay_ns: float = 0.0
    lut: int = 0
    ff: int = 0
    dsp: int = 0

    def as_feature_tuple(self) -> tuple[float, float, float, float, float]:
        """(cycles, delay, lut, dsp, ff) in the order used by Table II."""
        return (float(self.cycles), self.delay_ns, float(self.lut),
                float(self.dsp), float(self.ff))


# --------------------------------------------------------------------------- #
# characterization tables
# --------------------------------------------------------------------------- #
_INT_OPS: dict[Opcode, OpCharacterization] = {
    Opcode.ADD: OpCharacterization(cycles=0, delay_ns=1.78, lut=39, ff=0, dsp=0),
    Opcode.SUB: OpCharacterization(cycles=0, delay_ns=1.78, lut=39, ff=0, dsp=0),
    Opcode.MUL: OpCharacterization(cycles=3, delay_ns=2.41, lut=26, ff=76, dsp=3),
    Opcode.DIV: OpCharacterization(cycles=35, delay_ns=2.95, lut=802, ff=1446, dsp=0),
    Opcode.REM: OpCharacterization(cycles=35, delay_ns=2.95, lut=818, ff=1462, dsp=0),
    Opcode.ICMP: OpCharacterization(cycles=0, delay_ns=1.15, lut=17, ff=0, dsp=0),
    Opcode.AND: OpCharacterization(cycles=0, delay_ns=0.62, lut=12, ff=0, dsp=0),
    Opcode.OR: OpCharacterization(cycles=0, delay_ns=0.62, lut=12, ff=0, dsp=0),
    Opcode.XOR: OpCharacterization(cycles=0, delay_ns=0.62, lut=12, ff=0, dsp=0),
    Opcode.SHL: OpCharacterization(cycles=0, delay_ns=1.01, lut=28, ff=0, dsp=0),
    Opcode.LSHR: OpCharacterization(cycles=0, delay_ns=1.01, lut=28, ff=0, dsp=0),
    Opcode.SELECT: OpCharacterization(cycles=0, delay_ns=0.98, lut=16, ff=0, dsp=0),
}

_FLOAT_OPS: dict[Opcode, OpCharacterization] = {
    Opcode.FADD: OpCharacterization(cycles=4, delay_ns=2.76, lut=195, ff=324, dsp=2),
    Opcode.FSUB: OpCharacterization(cycles=4, delay_ns=2.76, lut=195, ff=324, dsp=2),
    Opcode.FMUL: OpCharacterization(cycles=3, delay_ns=2.61, lut=83, ff=134, dsp=3),
    Opcode.FDIV: OpCharacterization(cycles=12, delay_ns=2.89, lut=761, ff=791, dsp=0),
    Opcode.FCMP: OpCharacterization(cycles=1, delay_ns=1.86, lut=66, ff=72, dsp=0),
}

_MEMORY_OPS: dict[Opcode, OpCharacterization] = {
    # BRAM read latency is 2 cycles in Vitis HLS default configuration.
    Opcode.LOAD: OpCharacterization(cycles=2, delay_ns=2.32, lut=12, ff=6, dsp=0),
    Opcode.STORE: OpCharacterization(cycles=1, delay_ns=1.92, lut=10, ff=4, dsp=0),
    Opcode.GEP: OpCharacterization(cycles=0, delay_ns=1.21, lut=14, ff=0, dsp=0),
    Opcode.ALLOCA: OpCharacterization(cycles=0, delay_ns=0.0, lut=0, ff=0, dsp=0),
}

_CONTROL_OPS: dict[Opcode, OpCharacterization] = {
    # non-arithmetic operations carry no resource features, matching the
    # paper's "set resource-related features to zero" rule.
    Opcode.BR: OpCharacterization(cycles=0, delay_ns=0.45, lut=0, ff=0, dsp=0),
    Opcode.PHI: OpCharacterization(cycles=0, delay_ns=0.35, lut=0, ff=0, dsp=0),
    Opcode.RET: OpCharacterization(cycles=0, delay_ns=0.0, lut=0, ff=0, dsp=0),
    Opcode.CAST: OpCharacterization(cycles=0, delay_ns=0.52, lut=0, ff=0, dsp=0),
}

#: math intrinsics reachable through ``call``
_INTRINSICS: dict[str, OpCharacterization] = {
    "sqrtf": OpCharacterization(cycles=16, delay_ns=2.92, lut=462, ff=810, dsp=0),
    "sqrt": OpCharacterization(cycles=16, delay_ns=2.92, lut=462, ff=810, dsp=0),
    "expf": OpCharacterization(cycles=21, delay_ns=2.95, lut=874, ff=1209, dsp=7),
    "exp": OpCharacterization(cycles=21, delay_ns=2.95, lut=874, ff=1209, dsp=7),
    "logf": OpCharacterization(cycles=22, delay_ns=2.95, lut=909, ff=1241, dsp=5),
    "log": OpCharacterization(cycles=22, delay_ns=2.95, lut=909, ff=1241, dsp=5),
    "fabs": OpCharacterization(cycles=0, delay_ns=0.71, lut=33, ff=0, dsp=0),
    "fabsf": OpCharacterization(cycles=0, delay_ns=0.71, lut=33, ff=0, dsp=0),
    "sinf": OpCharacterization(cycles=24, delay_ns=2.95, lut=1370, ff=1668, dsp=9),
    "cosf": OpCharacterization(cycles=24, delay_ns=2.95, lut=1370, ff=1668, dsp=9),
    "powf": OpCharacterization(cycles=38, delay_ns=2.95, lut=1792, ff=2430, dsp=12),
    "pow": OpCharacterization(cycles=38, delay_ns=2.95, lut=1792, ff=2430, dsp=12),
    "fmaxf": OpCharacterization(cycles=1, delay_ns=1.86, lut=82, ff=70, dsp=0),
    "fminf": OpCharacterization(cycles=1, delay_ns=1.86, lut=82, ff=70, dsp=0),
}

_DEFAULT = OpCharacterization(cycles=1, delay_ns=1.5, lut=24, ff=16, dsp=0)

#: memory port node characterization (BRAM interface logic per port)
MEMORY_PORT = OpCharacterization(cycles=0, delay_ns=1.1, lut=18, ff=12, dsp=0)


class OperatorLibrary:
    """Lookup of per-operation delay, latency and resource usage.

    A single default instance (:data:`DEFAULT_LIBRARY`) is shared across the
    project; tests may build modified libraries to model other devices or
    clock targets.
    """

    def __init__(
        self,
        clock_period_ns: float = CLOCK_PERIOD_NS,
        overrides: dict[Opcode, OpCharacterization] | None = None,
    ):
        self.clock_period_ns = clock_period_ns
        self._table: dict[Opcode, OpCharacterization] = {}
        for table in (_INT_OPS, _FLOAT_OPS, _MEMORY_OPS, _CONTROL_OPS):
            self._table.update(table)
        if overrides:
            self._table.update(overrides)
        self._intrinsics = dict(_INTRINSICS)

    def lookup(self, opcode: Opcode, dtype: str = "i32", callee: str = "") -> OpCharacterization:
        """Characterization for an operation.

        ``dtype`` disambiguates nothing today (float ops have distinct
        opcodes) but is kept in the signature because bitwidth-aware
        libraries refine on it.  ``callee`` selects the intrinsic entry for
        ``call`` instructions.
        """
        if opcode is Opcode.CALL:
            return self._intrinsics.get(callee, _DEFAULT)
        return self._table.get(opcode, _DEFAULT)

    def lookup_instr(self, instr) -> OpCharacterization:
        """Characterization for an IR instruction."""
        return self.lookup(instr.opcode, instr.dtype, instr.callee)

    def cycles(self, opcode: Opcode, callee: str = "") -> int:
        return self.lookup(opcode, callee=callee).cycles

    def delay(self, opcode: Opcode, callee: str = "") -> float:
        return self.lookup(opcode, callee=callee).delay_ns

    def known_opcodes(self) -> list[Opcode]:
        return sorted(self._table, key=lambda op: op.value)

    def fingerprint(self) -> str:
        """Stable content digest of the characterization tables.

        Two libraries with identical clock targets and operator figures get
        the same fingerprint in every process, which is what lets persisted
        graph/prediction caches (keyed partly by library) survive a service
        restart.  The digest is memoized — libraries are immutable once
        built.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib

        parts = [repr(self.clock_period_ns)]
        for opcode in sorted(self._table, key=lambda op: op.value):
            parts.append(f"{opcode.value}={self._table[opcode].as_feature_tuple()!r}")
        for name in sorted(self._intrinsics):
            parts.append(f"{name}={self._intrinsics[name].as_feature_tuple()!r}")
        digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]
        self._fingerprint = digest
        return digest


#: shared default library (ZCU102-class device, 300 MHz)
DEFAULT_LIBRARY = OperatorLibrary()


__all__ = [
    "CLOCK_PERIOD_NS", "OpCharacterization", "OperatorLibrary",
    "DEFAULT_LIBRARY", "MEMORY_PORT",
]
