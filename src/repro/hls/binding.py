"""Resource binding: from schedules to post-HLS resource estimates.

After scheduling, the binding stage decides how many functional units of each
operation type a block needs and adds the register, memory and control
overheads that the HLS report accounts for:

* **pipelined blocks** share units across loop iterations — a block with
  ``n`` operations of a type and initiation interval ``II`` needs
  ``ceil(n / II)`` units;
* **non-pipelined blocks** share units across cycles — the requirement is
  the peak per-cycle pressure observed in the schedule;
* pipeline/staging registers, per-bank memory interface logic and the loop
  FSM contribute LUT/FF on top of the functional units.
"""

from __future__ import annotations

import math

from repro.frontend.pragmas import PragmaConfig
from repro.hls.directives import partition_banks
from repro.hls.op_library import DEFAULT_LIBRARY, MEMORY_PORT, OperatorLibrary
from repro.hls.reports import ResourceUsage
from repro.hls.scheduling import ScheduleResult
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import ArrayInfo

#: estimated register width of a value held across a pipeline stage
_STAGE_REGISTER_BITS = 24
#: FSM / loop-control overhead per loop
_LOOP_CONTROL_LUT = 46
_LOOP_CONTROL_FF = 34


def bind_operations(
    instructions: list[Instruction],
    schedule: ScheduleResult,
    *,
    pipelined: bool,
    ii: int = 1,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> ResourceUsage:
    """Functional-unit resource requirement of one block of operations."""
    counts: dict[tuple[Opcode, str], int] = {}
    for instr in instructions:
        if instr.opcode in (Opcode.BR, Opcode.PHI, Opcode.RET, Opcode.ALLOCA):
            continue
        key = (instr.opcode, instr.callee)
        counts[key] = counts.get(key, 0) + 1
    pressure = schedule.pressure_by_optype() if not pipelined else {}
    total = ResourceUsage()
    for (opcode, callee), count in counts.items():
        char = library.lookup(opcode, callee=callee)
        if pipelined:
            units = math.ceil(count / max(1, ii))
        else:
            units = min(count, max(1, pressure.get(opcode.value, count)))
        total = total + ResourceUsage(
            lut=char.lut * units, ff=char.ff * units, dsp=char.dsp * units,
        )
    return total


def staging_registers(
    instructions: list[Instruction],
    schedule: ScheduleResult,
    *,
    pipelined: bool,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> ResourceUsage:
    """Registers inserted to hold values across clock-cycle boundaries."""
    crossing_values = 0
    for placed in schedule.items:
        item = placed.item
        if item.instr is None:
            continue
        if item.latency_cycles > 0 or item.is_memory:
            crossing_values += 1
    depth = max(1, schedule.length_cycles)
    if pipelined:
        # every stage of the pipeline keeps its live values registered
        ff = crossing_values * _STAGE_REGISTER_BITS + depth * _STAGE_REGISTER_BITS
    else:
        ff = crossing_values * _STAGE_REGISTER_BITS
    return ResourceUsage(ff=float(ff), lut=float(crossing_values * 2))


def memory_interface(
    arrays: dict[str, ArrayInfo],
    config: PragmaConfig,
    accessed_arrays: set[str],
) -> ResourceUsage:
    """Per-bank BRAM interface logic and BRAM usage for the accessed arrays."""
    total = ResourceUsage()
    for name in sorted(accessed_arrays):
        info = arrays.get(name)
        if info is None or not info.dims:
            continue
        banks = partition_banks(info, config.array(name))
        words_per_bank = max(1, math.ceil(info.total_size / banks))
        bits_per_word = 32
        bram_per_bank = max(1, math.ceil(words_per_bank * bits_per_word / 18432))
        total = total + ResourceUsage(
            lut=float(banks * MEMORY_PORT.lut),
            ff=float(banks * MEMORY_PORT.ff),
            bram=float(banks * bram_per_bank),
        )
    return total


def loop_control(num_loops: int = 1, pipelined: bool = False) -> ResourceUsage:
    """FSM and induction-variable logic for ``num_loops`` loop levels."""
    lut = _LOOP_CONTROL_LUT * num_loops
    ff = _LOOP_CONTROL_FF * num_loops
    if pipelined:
        # pipeline control (valid/stall chains) is slightly larger
        lut = int(lut * 1.4)
        ff = int(ff * 1.6)
    return ResourceUsage(lut=float(lut), ff=float(ff))


__all__ = [
    "bind_operations", "staging_registers", "memory_interface", "loop_control",
]
