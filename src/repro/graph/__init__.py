"""Pragma-aware CDFG construction, feature annotation and loop-hierarchy
decomposition."""

from repro.graph.cache import (
    FunctionSkeleton,
    GraphConstructionCache,
    ir_fingerprint,
    outer_cache_key,
    unit_cache_key,
)
from repro.graph.cdfg import (
    CDFG,
    CDFGEdge,
    CDFGNode,
    EdgeKind,
    LoopLevelFeatures,
    NODE_FEATURE_NAMES,
    NodeKind,
)
from repro.graph.construction import (
    GraphBuilder,
    IOPORT_OPTYPE,
    SUPER_NONPIPELINED_OPTYPE,
    SUPER_PIPELINED_OPTYPE,
    build_flat_graph,
    build_loop_subgraph,
    naive_emission,
)
from repro.graph.features import (
    analytical_ii,
    annotate_super_node,
    loop_level_features,
    replicated_access_counts,
    scale_feature_matrix,
)
from repro.graph.hierarchy import (
    HierarchicalDecomposition,
    InnerLoopUnit,
    InnerUnitCategory,
    classify_inner_units,
    decompose,
)

__all__ = [
    "FunctionSkeleton", "GraphConstructionCache", "ir_fingerprint",
    "outer_cache_key", "unit_cache_key",
    "CDFG", "CDFGEdge", "CDFGNode", "EdgeKind", "LoopLevelFeatures",
    "NODE_FEATURE_NAMES", "NodeKind",
    "GraphBuilder", "IOPORT_OPTYPE", "SUPER_NONPIPELINED_OPTYPE",
    "SUPER_PIPELINED_OPTYPE", "build_flat_graph", "build_loop_subgraph",
    "naive_emission",
    "analytical_ii", "annotate_super_node", "loop_level_features",
    "replicated_access_counts", "scale_feature_matrix",
    "HierarchicalDecomposition", "InnerLoopUnit", "InnerUnitCategory",
    "classify_inner_units", "decompose",
]
