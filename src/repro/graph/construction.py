"""Pragma-aware CDFG construction (Section III-A of the paper).

The builder turns an :class:`~repro.ir.structure.IRFunction` plus a
:class:`~repro.frontend.pragmas.PragmaConfig` into a :class:`CDFG`:

* **loop pipelining** leaves the graph unchanged (it is captured through
  loop-level features instead);
* **loop unrolling** replicates the logic nodes of the unrolled region and
  rewires data edges to the original predecessors/successors (Fig. 2b);
* **array partitioning** inserts one memory-port node per bank and connects
  each load/store to the banks it can actually touch, determined from the
  affine access map and the partition type (Fig. 2c);
* loops listed in ``condense_loops`` are emitted as a single *super node*
  (used by the hierarchical approach to represent an already-predicted inner
  loop), replicated when their parent loop is unrolled (Fig. 3).

Unrolled loops are materialized through **replica replay**: replica 0 of the
loop body is emitted node-by-node while a recorder captures the span of
nodes/edges it produced (plus the pieces that vary between replicas), and
replicas 1..F-1 are bulk copies of that span with vectorized id remapping.
Only the replica-dependent pieces are recomputed per copy: memory-bank
connections (the induction-variable offset changes the reachable banks),
replica indices of the loop's direct children, and the sequential control
edge chaining each replica to its predecessor.  Nested unrolled loops replay
recursively — their materialized copies are part of the recorded span of the
enclosing loop.  The node-by-node path remains available (``replay_unroll``
or :func:`naive_emission`) and is the reference the differential tests in
``tests/graph/test_replay_equivalence.py`` compare against.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.flags import reference_encoding_active
from repro.frontend.pragmas import ArrayDirective, PartitionType, PragmaConfig
from repro.graph.cache import FunctionSkeleton
from repro.graph.cdfg import CDFG, FEATURE_COLUMN, CDFGNode, EdgeKind, NodeKind
from repro.hls.directives import effective_unroll_factors, partition_banks
from repro.hls.op_library import DEFAULT_LIBRARY, MEMORY_PORT, OperatorLibrary
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IfRegion, IRFunction, Loop, Region

#: Optype strings for the two extension node categories.
IOPORT_OPTYPE = "ioport"
SUPER_PIPELINED_OPTYPE = "super_p"
SUPER_NONPIPELINED_OPTYPE = "super_np"

#: Process-wide default for the replica-replay fast path; individual builders
#: may override it via the ``replay_unroll`` constructor argument.
DEFAULT_REPLAY_UNROLL = True

#: sentinels for the memoized bank-connection rules (compared by identity)
_BANKS_FIXED = "fixed"
_BANKS_CYCLIC = "cyclic"

#: feature-column indices used by the columnar emission path
_COL_INVOCATIONS = FEATURE_COLUMN["invocations"]
_COL_IN_DEGREE = FEATURE_COLUMN["in_degree"]
_COL_OUT_DEGREE = FEATURE_COLUMN["out_degree"]


@contextmanager
def naive_emission():
    """Temporarily force node-by-node emission (the replay reference path).

    Used by the differential tests and benchmarks to build graphs through
    code paths (``decompose``, ``predict``) that do not expose the builder.
    """
    global DEFAULT_REPLAY_UNROLL
    previous = DEFAULT_REPLAY_UNROLL
    DEFAULT_REPLAY_UNROLL = False
    try:
        yield
    finally:
        DEFAULT_REPLAY_UNROLL = previous


@contextmanager
def _gc_paused():
    """Suspend the cyclic garbage collector for the duration of one build.

    Construction allocates tens of thousands of small acyclic objects
    (nodes, feature dicts, edge columns); generation-0 collections triggered
    mid-build re-scan the growing graph without ever finding a cycle to
    free.  Pausing the collector removes those stalls — and their large
    run-to-run variance — from the hot path.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


# --------------------------------------------------------------------------- #
# internal helpers
# --------------------------------------------------------------------------- #
class _ValueScope:
    """Maps IR instruction ids to CDFG node ids, with lexical nesting."""

    def __init__(self, parent: "_ValueScope | None" = None):
        self.parent = parent
        self._map: dict[int, int] = {}

    def bind(self, instr_id: int, node_id: int) -> None:
        self._map[instr_id] = node_id

    def lookup(self, instr_id: int) -> int | None:
        scope: _ValueScope | None = self
        while scope is not None:
            if instr_id in scope._map:
                return scope._map[instr_id]
            scope = scope.parent
        return None


@dataclass
class _LoopContext:
    """Per-enclosing-loop state during emission."""

    label: str
    var: str
    residual_tripcount: int
    unroll_factor: int
    replica: int = 0


@dataclass
class _EmitState:
    """Carried through the recursive emission of a region."""

    scope: _ValueScope
    loops: tuple[_LoopContext, ...] = ()
    #: iteration offset per induction variable introduced by unrolling
    offsets: dict[str, int] = field(default_factory=dict)
    prev_node: int | None = None
    #: recorders for which ``prev_node`` still holds the value observed at
    #: their replica entry (i.e. it was carried, never reassigned, since the
    #: recorder started its replica 0).  The sequential control edge created
    #: from such a predecessor must be rewired to the *previous replica's
    #: exit* when the span is replayed; every other edge replays by position.
    entry_recs: tuple = ()


@dataclass
class _ReplayRecorder:
    """Captures what one unrolled-loop replica emitted, for bulk replay.

    ``node_start``/``edge_start`` delimit the recorded span.  The remaining
    fields capture exactly the replica-dependent pieces:

    * ``replica_nodes`` — span-relative ids of nodes whose innermost
      enclosing loop is the recorded loop (their ``replica`` index must be
      rewritten per copy);
    * ``entry_dsts``/``entry_edge_ids`` — destinations of sequential control
      edges whose source was carried from the replica entry (rewired to the
      previous replica's exit on copy; registered even when no edge was
      created because the entry predecessor was ``None``);
    * ``mem_events`` — one record per load/store/super-node memory
      connection, so bank edges can be recomputed under the copy's
      induction-variable offset;
    * ``max_checkpoint`` — the largest span-relative node count at which a
      nested unroll performed a ``max_nodes`` budget check (-1 when none
      did).  A copy is only safe when no nested check would flip at the
      copy's base offset, and ``base + point >= max_nodes`` holds for some
      recorded point iff it holds for the maximum.
    """

    node_start: int
    edge_start: int
    context0: _LoopContext
    replica_nodes: list[int] = field(default_factory=list)
    entry_dsts: list[int] = field(default_factory=list)
    entry_edge_ids: list[int] = field(default_factory=list)
    mem_events: list[tuple] = field(default_factory=list)
    max_checkpoint: int = -1


class GraphBuilder:
    """Builds pragma-aware CDFGs from an IR function and a design point."""

    #: process-wide count of graphs actually constructed (tests use this to
    #: prove that warm caches serve sweeps without any construction at all)
    build_count = 0
    #: process-wide wall time spent inside graph construction; benchmarks use
    #: it to isolate the construction stage of a cold DSE sweep
    build_seconds = 0.0

    def __init__(
        self,
        function: IRFunction,
        config: PragmaConfig | None = None,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        *,
        pragma_aware: bool = True,
        condense_loops: dict[str, bool] | None = None,
        max_replication: int = 64,
        max_nodes: int = 4096,
        skeleton: FunctionSkeleton | None = None,
        unroll_factors: dict[str, int] | None = None,
        replay_unroll: bool | None = None,
    ):
        """
        Parameters
        ----------
        function:
            The lowered kernel.
        config:
            The design point (pragma configuration).  ``None`` means the
            baseline configuration (no directives).
        pragma_aware:
            When False the graph ignores the configuration entirely (no node
            replication, a single port per array) — this reproduces the
            pragma-blind graphs of the Wu et al. baseline.
        condense_loops:
            Maps loop labels to a "pipelined" flag; those loops are emitted
            as super nodes instead of expanding their bodies.
        max_replication:
            Safety cap on the number of replicas created for one loop.
        max_nodes:
            Soft budget on the total graph size: once exceeded, further
            unroll replicas are not materialized (the already-annotated
            ``invocations`` features still carry the iteration counts).
        skeleton:
            Optional pre-computed pragma-independent analysis of ``function``
            (see :class:`~repro.graph.cache.FunctionSkeleton`); when given,
            IR walks and operator characterizations are looked up instead of
            recomputed.
        unroll_factors:
            Optional pre-computed ``effective_unroll_factors(function,
            config)`` result, so callers that already resolved the factors
            (e.g. cached decomposition) avoid re-walking the loop tree.
            Ignored when ``pragma_aware`` is False.
        replay_unroll:
            Whether unrolled loops use the replica-replay fast path.
            ``None`` defers to the module default (:data:`DEFAULT_REPLAY_UNROLL`,
            see :func:`naive_emission`); False forces node-by-node emission.
        """
        self.function = function
        self.config = config or PragmaConfig()
        self.library = library
        self.pragma_aware = pragma_aware
        self.condense_loops = dict(condense_loops or {})
        self.max_replication = max_replication
        self.max_nodes = max_nodes
        self.skeleton = skeleton
        self.replay_unroll = (
            DEFAULT_REPLAY_UNROLL if replay_unroll is None else replay_unroll
        )
        # columnar feature storage rides the same switch as replica replay:
        # naive emission (and the reference encoding pipeline) builds graphs
        # with the retained per-node feature dicts, which is what the
        # columnar differential guards compare against
        self._columnar = self.replay_unroll and not reference_encoding_active()
        self._var_to_loop: dict[str, str] | None = (
            skeleton.var_to_loop if skeleton is not None else None
        )
        if not pragma_aware:
            self.unroll = {loop.label: 1 for loop in function.all_loops()}
        elif unroll_factors is not None:
            self.unroll = unroll_factors
        else:
            self.unroll = effective_unroll_factors(function, self.config)
        self.cdfg = CDFG(name=function.name, columnar=self._columnar)
        self._port_nodes: dict[str, list[int]] = {}
        #: memoized per-instruction bank-connection rules (see _bank_rule)
        self._bank_rules: dict[int, tuple] = {}
        #: stack of active replay recorders (innermost last)
        self._recorders: list[_ReplayRecorder] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build_function_graph(self) -> CDFG:
        """CDFG of the whole function body."""
        GraphBuilder.build_count += 1
        started = perf_counter()
        with _gc_paused():
            self._add_memory_ports(self.function.arrays.values())
            state = _EmitState(scope=_ValueScope())
            self._emit_region(self.function.body, state)
            self._finalize()
        GraphBuilder.build_seconds += perf_counter() - started
        return self.cdfg

    def build_loop_graph(self, loop: Loop) -> CDFG:
        """CDFG of a single loop nest (an inner-hierarchy unit)."""
        GraphBuilder.build_count += 1
        started = perf_counter()
        with _gc_paused():
            self.cdfg = CDFG(
                name=f"{self.function.name}:{loop.label}", columnar=self._columnar
            )
            self._port_nodes = {}
            self._bank_rules = {}
            touched = self._arrays_touched(loop)
            self._add_memory_ports(
                info for name, info in self.function.arrays.items()
                if name in touched
            )
            state = _EmitState(scope=_ValueScope())
            self._emit_loop(loop, state)
            self._finalize()
        GraphBuilder.build_seconds += perf_counter() - started
        return self.cdfg

    # ------------------------------------------------------------------ #
    # memory ports
    # ------------------------------------------------------------------ #
    #: feature row of every memory-port node (ports are characterized by the
    #: fixed MEMORY_PORT operator; in/out degree and work are finalized later)
    _PORT_FEATURE_ROW = (
        1.0, 0.0, 0.0, float(MEMORY_PORT.cycles), MEMORY_PORT.delay_ns,
        float(MEMORY_PORT.lut), float(MEMORY_PORT.dsp), float(MEMORY_PORT.ff),
        0.0,
    )

    def _add_memory_ports(self, arrays) -> None:
        feat = self.cdfg.feat
        port_row = self._PORT_FEATURE_ROW
        for info in arrays:
            directive = (
                self.config.array(info.name) if self.pragma_aware else ArrayDirective()
            )
            banks = partition_banks(info, directive) if self.pragma_aware else 1
            banks = min(banks, self.max_replication)
            node_ids = []
            for bank in range(banks):
                if feat is not None:
                    node_id = self.cdfg.append_node(
                        IOPORT_OPTYPE, NodeKind.MEMORY_PORT, info.dtype,
                        "", info.name, -1, bank,
                    )
                    feat.matrix[node_id] = port_row
                else:
                    node = self.cdfg.add_node(
                        IOPORT_OPTYPE, kind=NodeKind.MEMORY_PORT, dtype=info.dtype,
                        array=info.name, replica=bank,
                    )
                    node_id = node.node_id
                    node.features.update(
                        invocations=1.0,
                        cycles=float(MEMORY_PORT.cycles),
                        delay=MEMORY_PORT.delay_ns,
                        lut=float(MEMORY_PORT.lut),
                        dsp=float(MEMORY_PORT.dsp),
                        ff=float(MEMORY_PORT.ff),
                    )
                node_ids.append(node_id)
            self._port_nodes[info.name] = node_ids

    def _connected_banks(
        self, instr: Instruction, offsets: dict[str, int]
    ) -> list[int]:
        """Which memory-port banks a load/store may touch.

        Follows the paper: LLVM-pass style analysis of the index expression
        determines the target bank when it is statically known; dynamic or
        unanalysable indices connect to every port.  Everything except the
        induction-variable offsets is fixed for one builder, so the analysis
        is resolved once per instruction (:meth:`_bank_rule`) and each call
        only folds the offsets into the affine index.
        """
        rule = self._bank_rules.get(instr.instr_id)
        if rule is None:
            rule = self._bank_rule(instr)
            self._bank_rules[instr.instr_id] = rule
        kind, result, banks, const, entries = rule
        if kind is not _BANKS_CYCLIC:
            return result
        # index ≡ sum(coeff * (unroll_base + offset)) + const (mod banks);
        # the bank is fixed when every varying term is a multiple of banks.
        fixed = const
        for var, coeff, bad_present, bad_absent in entries:
            offset = offsets.get(var)
            if offset is None:
                if bad_absent:
                    return result
            elif bad_present:
                return result
            else:
                fixed += coeff * offset
        return [fixed % banks]

    def _bank_rule(self, instr: Instruction) -> tuple:
        """Offset-independent part of the bank-connection analysis.

        ``(_BANKS_FIXED, result, ...)`` rules resolve to the same bank list
        under every offset; ``(_BANKS_CYCLIC, all_banks, banks, const,
        entries)`` rules fold the offsets into the affine index at call time
        (``result`` doubles as the all-banks fallback).
        """
        ports = self._port_nodes.get(instr.array, [])
        if len(ports) <= 1:
            return (_BANKS_FIXED, list(range(len(ports))), 0, 0, ())
        info = self.function.arrays[instr.array]
        directive = self.config.array(instr.array)
        banks = len(ports)
        all_banks = list(range(banks))
        access = instr.access
        if access is None or not access.is_affine:
            return (_BANKS_FIXED, all_banks, banks, 0, ())
        dim = min(max(directive.dim, 1), max(1, access.ndims)) - 1
        coeffs = access.dim_map(dim)
        const = access.dim_const(dim)
        if directive.partition_type in (PartitionType.CYCLIC, PartitionType.COMPLETE):
            entries = []
            for var, coeff in coeffs.items():
                factor = self.unroll.get(self._loop_of_var(var), 1)
                entries.append((
                    var, coeff,
                    (coeff * factor) % banks != 0,  # unresolvable when offset known
                    coeff % banks != 0,             # unresolvable when offset unknown
                ))
            return (_BANKS_CYCLIC, all_banks, banks, const, tuple(entries))
        # block partitioning: the bank changes as outer iterations advance,
        # so only constant indices resolve to a single bank.
        if any(coeff != 0 for coeff in coeffs.values()):
            return (_BANKS_FIXED, all_banks, banks, 0, ())
        dim_size = info.dims[dim] if dim < len(info.dims) else info.total_size
        block = max(1, -(-dim_size // banks))
        return (_BANKS_FIXED, [min(banks - 1, const // block)], banks, 0, ())

    def _loop_of_var(self, var: str) -> str:
        if self._var_to_loop is None:
            # first loop wins for duplicated induction-variable names,
            # matching the original linear scan
            self._var_to_loop = {}
            for loop in self.function.all_loops():
                self._var_to_loop.setdefault(loop.var, loop.label)
        return self._var_to_loop.get(var, "")

    def _characterize(self, instr: Instruction):
        if self.skeleton is not None:
            return self.skeleton.characterize(instr, self.library)
        return self.library.lookup_instr(instr)

    def _arrays_touched(self, loop: Loop) -> set[str]:
        if self.skeleton is not None:
            return set(self.skeleton.touched_arrays(loop.label))
        touched = set()
        for instr in loop.body.walk_instructions():
            if instr.array:
                touched.add(instr.array)
        return touched

    # ------------------------------------------------------------------ #
    # replay bookkeeping
    # ------------------------------------------------------------------ #
    def _chain_edge(self, state: _EmitState, dst: int) -> None:
        """Sequential control edge from the carried predecessor.

        Registers the destination with every recorder whose replica-entry
        predecessor is still carried in ``state.prev_node`` — on replay the
        edge source becomes the previous replica's exit node (and the edge is
        created even when the recorded replica had no predecessor at all).
        """
        if state.entry_recs:
            for rec in state.entry_recs:
                rec.entry_dsts.append(dst - rec.node_start)
                if state.prev_node is not None:
                    rec.entry_edge_ids.append(self.cdfg.num_edges)
        if state.prev_node is not None:
            self.cdfg.add_edge(state.prev_node, dst, EdgeKind.CONTROL)

    def _add_memory_edges(
        self, node_id: int, instr: Instruction, offsets: dict[str, int],
        is_load: bool,
    ) -> None:
        """Connect a load/store (or super-node access) to its port banks."""
        ports = self._port_nodes[instr.array]
        if self._recorders:
            for rec in self._recorders:
                rec.mem_events.append(
                    (node_id - rec.node_start, instr, offsets, is_load)
                )
        add_edge = self.cdfg.add_edge
        for bank in self._connected_banks(instr, offsets):
            if is_load:
                add_edge(ports[bank], node_id, EdgeKind.MEMORY)
            else:
                add_edge(node_id, ports[bank], EdgeKind.MEMORY)

    def _budget_check(self) -> bool:
        """The per-replica ``max_nodes`` check, recorded for replay safety."""
        count = self.cdfg.num_nodes
        for rec in self._recorders:
            relative = count - rec.node_start
            if relative > rec.max_checkpoint:
                rec.max_checkpoint = relative
        return count >= self.max_nodes

    def _record_replica_node(self, state: _EmitState, node_id: int) -> None:
        """Note nodes whose ``replica`` index the replay must rewrite."""
        rec = self._recorders[-1]
        if state.loops and state.loops[-1] is rec.context0:
            rec.replica_nodes.append(node_id - rec.node_start)

    # ------------------------------------------------------------------ #
    # region / loop emission
    # ------------------------------------------------------------------ #
    def _emit_region(self, region: Region, state: _EmitState) -> None:
        for item in region.items:
            if isinstance(item, Instruction):
                self._emit_instruction(item, state)
            elif isinstance(item, Loop):
                self._emit_loop(item, state)
            elif isinstance(item, IfRegion):
                self._emit_if(item, state)

    def _emit_instruction(self, instr: Instruction, state: _EmitState) -> int:
        if instr.opcode is Opcode.ALLOCA:
            return -1
        loop_label = state.loops[-1].label if state.loops else ""
        replica = state.loops[-1].replica if state.loops else 0
        optype = (
            instr.opcode.value if instr.opcode is not Opcode.CALL else instr.callee
        )
        invocations = float(self._invocations(state))
        char = self._characterize(instr)
        feat = self.cdfg.feat
        if feat is not None:
            node_id = self.cdfg.append_node(
                optype, NodeKind.OPERATION, instr.dtype, loop_label,
                instr.array, instr.instr_id, replica,
            )
            feat.matrix[node_id] = (
                invocations, 0.0, 0.0, float(char.cycles), char.delay_ns,
                float(char.lut), float(char.dsp), float(char.ff),
                float(max(1, char.cycles)) * invocations,
            )
        else:
            node = self.cdfg.add_node(
                optype, kind=NodeKind.OPERATION, dtype=instr.dtype,
                loop_label=loop_label, array=instr.array,
                instr_id=instr.instr_id, replica=replica,
            )
            node_id = node.node_id
            node.features["invocations"] = invocations
            node.features.update(
                cycles=float(char.cycles), delay=char.delay_ns, lut=float(char.lut),
                dsp=float(char.dsp), ff=float(char.ff),
                work=float(max(1, char.cycles)) * invocations,
            )
        if self._recorders:
            self._record_replica_node(state, node_id)
        # data-flow edges from producing nodes
        for operand in instr.value_operands:
            src = state.scope.lookup(operand.instr_id)
            if src is not None:
                self.cdfg.add_edge(src, node_id, EdgeKind.DATA)
        # sequential control edge (program order within the region)
        self._chain_edge(state, node_id)
        state.prev_node = node_id
        state.entry_recs = ()
        state.scope.bind(instr.instr_id, node_id)
        # memory edges to/from port banks
        if instr.opcode in (Opcode.LOAD, Opcode.STORE) and instr.array in self._port_nodes:
            self._add_memory_edges(
                node_id, instr, state.offsets, instr.opcode is Opcode.LOAD
            )
        return node_id

    def _invocations(self, state: _EmitState) -> int:
        total = 1
        for context in state.loops:
            total *= max(1, context.residual_tripcount)
        return total

    def _emit_loop(self, loop: Loop, state: _EmitState) -> None:
        if loop.label in self.condense_loops:
            self._emit_super_node(loop, state)
            return
        factor = self.unroll.get(loop.label, 1)
        tripcount = max(1, loop.tripcount)
        factor = min(factor, tripcount, self.max_replication)
        residual = max(1, tripcount // factor)
        fully_unrolled = factor >= tripcount

        header_nodes: list[int] = []
        loop_scope = _ValueScope(parent=state.scope)
        if not fully_unrolled:
            for instr in loop.header_instrs + loop.latch_instrs:
                invocations = float(self._invocations(state) * residual)
                char = self._characterize(instr)
                feat = self.cdfg.feat
                if feat is not None:
                    node_id = self.cdfg.append_node(
                        instr.opcode.value, NodeKind.OPERATION, instr.dtype,
                        loop.label, "", instr.instr_id, 0,
                    )
                    feat.matrix[node_id] = (
                        invocations, 0.0, 0.0, float(char.cycles), char.delay_ns,
                        float(char.lut), float(char.dsp), float(char.ff),
                        float(max(1, char.cycles)) * invocations,
                    )
                else:
                    node = self.cdfg.add_node(
                        instr.opcode.value, kind=NodeKind.OPERATION,
                        dtype=instr.dtype, loop_label=loop.label,
                        instr_id=instr.instr_id,
                    )
                    node_id = node.node_id
                    node.features["invocations"] = invocations
                    node.features.update(
                        cycles=float(char.cycles), delay=char.delay_ns,
                        lut=float(char.lut), dsp=float(char.dsp), ff=float(char.ff),
                        work=float(max(1, char.cycles)) * invocations,
                    )
                loop_scope.bind(instr.instr_id, node_id)
                header_nodes.append(node_id)
            # wire header control/data flow: phi -> icmp -> br, phi -> incr
            if len(header_nodes) >= 4:
                phi, icmp, br, incr = header_nodes[:4]
                self.cdfg.add_edge(phi, icmp, EdgeKind.DATA)
                self.cdfg.add_edge(icmp, br, EdgeKind.DATA)
                self.cdfg.add_edge(phi, incr, EdgeKind.DATA)
                self.cdfg.add_edge(incr, phi, EdgeKind.DATA)
                self._chain_edge(state, phi)
                state.prev_node = br
                state.entry_recs = ()

        if factor > 1 and self.replay_unroll:
            self._emit_replicated_loop(loop, state, loop_scope, factor, residual)
            return

        for replica in range(factor):
            if replica > 0 and self._budget_check():
                break
            replica_state = self._replica_state(
                loop, state, loop_scope, factor, residual, replica
            )
            self._emit_region(loop.body, replica_state)
            if replica_state.prev_node is not None:
                state.prev_node = replica_state.prev_node
                state.entry_recs = replica_state.entry_recs

    def _replica_state(
        self, loop: Loop, state: _EmitState, loop_scope: _ValueScope,
        factor: int, residual: int, replica: int,
        entry_recs: tuple | None = None,
    ) -> _EmitState:
        context = _LoopContext(
            label=loop.label, var=loop.var, residual_tripcount=residual,
            unroll_factor=factor, replica=replica,
        )
        offsets = dict(state.offsets)
        offsets[loop.var] = replica
        return _EmitState(
            scope=_ValueScope(parent=loop_scope), loops=state.loops + (context,),
            offsets=offsets, prev_node=state.prev_node,
            entry_recs=state.entry_recs if entry_recs is None else entry_recs,
        )

    def _emit_replicated_loop(
        self, loop: Loop, state: _EmitState, loop_scope: _ValueScope,
        factor: int, residual: int,
    ) -> None:
        """Replica-replay fast path: emit replica 0, bulk-copy the rest."""
        cdfg = self.cdfg
        node_start = cdfg.num_nodes
        edge_start = cdfg.num_edges
        replica_state = self._replica_state(loop, state, loop_scope, factor, residual, 0)
        rec = _ReplayRecorder(
            node_start=node_start, edge_start=edge_start,
            context0=replica_state.loops[-1],
        )
        replica_state.entry_recs = state.entry_recs + (rec,)
        self._recorders.append(rec)
        try:
            self._emit_region(loop.body, replica_state)
        finally:
            self._recorders.pop()
        if replica_state.prev_node is not None:
            state.prev_node = replica_state.prev_node
            state.entry_recs = tuple(
                r for r in replica_state.entry_recs if r is not rec
            )

        span_stop = cdfg.num_nodes
        # the legacy dict path clones node objects, so it needs the span's
        # object view; the columnar path never touches node objects at all
        span_nodes = cdfg.nodes[node_start:] if cdfg.feat is None else ()
        # the replica's exit predecessor: remapped per copy when it lies in
        # the span, carried unchanged otherwise (both match naive emission)
        exit_rel = None
        if state.prev_node is not None and state.prev_node >= node_start:
            exit_rel = state.prev_node - node_start

        loop_var = loop.var
        # Bank connectivity is affine in the replica index: the all-banks
        # early returns of _connected_banks depend only on coefficients (not
        # offset values), and the single-bank case is (c0 + k*r) mod banks.
        # Every memory event is therefore either *static* (same edge set in
        # all replicas — folded into the vectorized copy template below) or
        # *linear* (one edge whose bank advances by a fixed stride).
        linear_events: list[tuple[int, list[int], int, int, bool]] = []
        template_src: list[int] = []
        template_dst: list[int] = []
        kinds: list[EdgeKind] = []
        memory_kind = EdgeKind.MEMORY
        stride_cache: dict[int, int] = {}
        for node_rel, instr, offsets, is_load in rec.mem_events:
            ports = self._port_nodes[instr.array]
            banks0 = self._connected_banks(instr, offsets)
            stride = 0
            if len(ports) > 1 and len(banks0) == 1:
                # the bank stride w.r.t. this loop's variable is a property
                # of the access expression alone, shared by all events of
                # the same instruction (their base banks differ)
                stride = stride_cache.get(instr.instr_id)
                if stride is None:
                    shifted = dict(offsets)
                    shifted[loop_var] = offsets[loop_var] + 1
                    stride = (
                        self._connected_banks(instr, shifted)[0] - banks0[0]
                    )
                    stride_cache[instr.instr_id] = stride
            if stride:
                linear_events.append(
                    (node_rel, ports, banks0[0], stride, is_load)
                )
            else:
                node_abs = node_start + node_rel
                for bank in banks0:
                    if is_load:
                        template_src.append(ports[bank])
                        template_dst.append(node_abs)
                    else:
                        template_src.append(node_abs)
                        template_dst.append(ports[bank])
                    kinds.append(memory_kind)

        # copy template: all span edges except memory edges (rebuilt from the
        # classified events) and entry control edges (rewired per copy), plus
        # the static memory edges collected above.  Vectorized remap: in-span
        # endpoints shift by the copy delta, out-of-span endpoints (values
        # produced before the loop, memory ports) stay.
        entry_ids = set(rec.entry_edge_ids)
        span_src = cdfg.edge_src.tolist()
        span_dst = cdfg.edge_dst.tolist()
        span_kinds = cdfg.edge_kinds
        for index in range(edge_start, len(span_src)):
            kind = span_kinds[index]
            if kind is memory_kind or index in entry_ids:
                continue
            template_src.append(span_src[index])
            template_dst.append(span_dst[index])
            kinds.append(kind)
        if template_src:
            src = np.array(template_src, dtype=np.int64)
            dst = np.array(template_dst, dtype=np.int64)
            src_shift = (src >= node_start).astype(np.int64)
            dst_shift = (dst >= node_start).astype(np.int64)
        max_checkpoint = rec.max_checkpoint
        max_nodes = self.max_nodes
        new_node = CDFGNode.__new__

        for replica in range(1, factor):
            if self._budget_check():
                break
            base = cdfg.num_nodes
            if max_checkpoint >= 0 and base + max_checkpoint >= max_nodes:
                # a nested unroll's budget check would flip at this offset,
                # truncating elsewhere than in the recorded span — emit this
                # replica node-by-node to preserve exact naive semantics
                fallback_state = self._replica_state(
                    loop, state, loop_scope, factor, residual, replica
                )
                self._emit_region(loop.body, fallback_state)
                if fallback_state.prev_node is not None:
                    state.prev_node = fallback_state.prev_node
                    state.entry_recs = fallback_state.entry_recs
                continue
            chain_prev = state.prev_node
            delta = base - node_start
            if self._recorders:
                if max_checkpoint >= 0:
                    # a naive emission of this replica would run every nested
                    # budget check at base + point; outer recorders need the
                    # worst position to judge the safety of *their* copies
                    for outer in self._recorders:
                        candidate = base - outer.node_start + max_checkpoint
                        if candidate > outer.max_checkpoint:
                            outer.max_checkpoint = candidate
                # events recorded in the same emission state share their
                # offsets dict; shift each distinct dict once per replica
                shift_memo: dict[int, dict] = {}
                for node_rel, instr, offsets, is_load in rec.mem_events:
                    shifted = shift_memo.get(id(offsets))
                    if shifted is None:
                        shifted = dict(offsets)
                        shifted[loop_var] = replica
                        shift_memo[id(offsets)] = shifted
                    for outer in self._recorders:
                        outer.mem_events.append(
                            (base + node_rel - outer.node_start,
                             instr, shifted, is_load)
                        )
            cdfg.extend_replica_span(node_start, span_stop)
            if cdfg.feat is None:
                # legacy dict path only: clone the node objects too (the
                # feature dict is shared with the source node — replicas
                # differ only in their in/out degrees, which _finalize
                # writes copy-on-write; clones follow their source in node
                # order).  The columnar path creates no objects at all.
                append = cdfg._materialized.append
                for source in span_nodes:
                    fields = dict(source.__dict__)
                    fields["node_id"] += delta
                    clone = new_node(CDFGNode)
                    clone.__dict__ = fields
                    append(clone)
                materialized = cdfg._materialized
                for rel in rec.replica_nodes:
                    materialized[base + rel].replica = replica
            replicas = cdfg.node_replicas
            for rel in rec.replica_nodes:
                replicas[base + rel] = replica
            if template_src:
                cdfg._edges.extend(src + delta * src_shift, dst + delta * dst_shift)
                cdfg.edge_kinds.extend(kinds)
            if chain_prev is not None:
                for dst_rel in rec.entry_dsts:
                    cdfg.add_edge(chain_prev, base + dst_rel, EdgeKind.CONTROL)
            edge_append = cdfg._edges.append
            kind_append = cdfg.edge_kinds.append
            for node_rel, ports, bank0, stride, is_load in linear_events:
                bank = (bank0 + stride * replica) % len(ports)
                if is_load:
                    edge_append(ports[bank], base + node_rel)
                else:
                    edge_append(base + node_rel, ports[bank])
                kind_append(memory_kind)
            if exit_rel is not None:
                state.prev_node = base + exit_rel
                state.entry_recs = ()

    def _emit_super_node(self, loop: Loop, state: _EmitState) -> None:
        pipelined = self.condense_loops.get(loop.label, False)
        optype = SUPER_PIPELINED_OPTYPE if pipelined else SUPER_NONPIPELINED_OPTYPE
        replica = state.loops[-1].replica if state.loops else 0
        feat = self.cdfg.feat
        if feat is not None:
            node_id = self.cdfg.append_node(
                optype, NodeKind.SUPER_NODE, "i32", loop.label, "", -1, replica,
            )
            feat.matrix[node_id, _COL_INVOCATIONS] = float(
                self._invocations(state)
            )
        else:
            node = self.cdfg.add_node(
                optype, kind=NodeKind.SUPER_NODE,
                loop_label=loop.label, replica=replica,
            )
            node_id = node.node_id
            node.features["invocations"] = float(self._invocations(state))
        if self._recorders:
            self._record_replica_node(state, node_id)
        # data edges from outer values consumed inside the condensed loop
        if self.skeleton is not None:
            inner_ids = self.skeleton.inner_instr_ids(loop.label)
            external_uses_sorted = self.skeleton.external_uses(loop.label)
            memory_instrs = self.skeleton.memory_instructions(loop.label)
        else:
            inner_ids = {instr.instr_id for instr in loop.body.walk_instructions()}
            inner_ids |= {instr.instr_id for instr in loop.header_instrs}
            inner_ids |= {instr.instr_id for instr in loop.latch_instrs}
            external_uses: set[int] = set()
            for instr in loop.body.walk_instructions():
                for operand in instr.value_operands:
                    if operand.instr_id not in inner_ids:
                        external_uses.add(operand.instr_id)
            external_uses_sorted = sorted(external_uses)
            memory_instrs = [
                instr for instr in loop.body.walk_instructions()
                if instr.opcode in (Opcode.LOAD, Opcode.STORE)
            ]
        for instr_id in external_uses_sorted:
            src = state.scope.lookup(instr_id)
            if src is not None:
                self.cdfg.add_edge(src, node_id, EdgeKind.DATA)
        # memory edges between the super node and the banks of arrays it uses
        for instr in memory_instrs:
            if instr.array not in self._port_nodes:
                continue
            self._add_memory_edges(
                node_id, instr, state.offsets, instr.opcode is Opcode.LOAD
            )
        # values defined inside and used outside resolve to the super node
        for instr_id in inner_ids:
            state.scope.bind(instr_id, node_id)
        self._chain_edge(state, node_id)
        state.prev_node = node_id
        state.entry_recs = ()

    def _emit_if(self, if_region: IfRegion, state: _EmitState) -> None:
        cond_node = state.scope.lookup(if_region.cond_instr_id)
        for region in (if_region.then_region, if_region.else_region):
            # the branch predecessor is scope-resolved (the condition node),
            # so it replays by span position — never as a replica-entry edge
            branch_state = _EmitState(
                scope=_ValueScope(parent=state.scope), loops=state.loops,
                offsets=dict(state.offsets), prev_node=cond_node,
            )
            self._emit_region(region, branch_state)
            # propagate bindings of the branch into the parent scope so that
            # select nodes emitted after the if-region find their operands.
            for instr in region.walk_instructions():
                node_id = branch_state.scope.lookup(instr.instr_id)
                if node_id is not None:
                    state.scope.bind(instr.instr_id, node_id)
            if branch_state.prev_node is not None:
                state.prev_node = branch_state.prev_node
                state.entry_recs = branch_state.entry_recs

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #
    def _finalize(self) -> None:
        in_degree, out_degree = self.cdfg.degree_arrays()
        feat = self.cdfg.feat
        if feat is not None:
            # columnar path: every node owns its feature row, so the degree
            # columns are written in two vectorized assignments — no
            # per-node loop, no copy-on-write unsharing.  Write the backing
            # matrix, not the (read-only) view.
            count = feat.count
            feat.matrix[:count, _COL_IN_DEGREE] = in_degree
            feat.matrix[:count, _COL_OUT_DEGREE] = out_degree
        else:
            for node, fan_in, fan_out in zip(
                self.cdfg.nodes, in_degree.tolist(), out_degree.tolist()
            ):
                # replay clones share their source node's feature dict; the
                # source (earlier in node order) writes its degrees into the
                # shared dict, and a clone unshares only when its own degrees
                # differ (boundary nodes of a replica chain)
                features = node.features
                if (
                    features.get("in_degree") == fan_in
                    and features.get("out_degree") == fan_out
                ):
                    continue
                if "in_degree" in features:
                    node.features = features = dict(features)
                features["in_degree"] = float(fan_in)
                features["out_degree"] = float(fan_out)
        self.cdfg.metadata["kernel"] = self.function.name
        self.cdfg.metadata["config"] = self.config.describe()


# --------------------------------------------------------------------------- #
# convenience wrappers
# --------------------------------------------------------------------------- #
def build_flat_graph(
    function: IRFunction,
    config: PragmaConfig | None = None,
    *,
    pragma_aware: bool = True,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    replay_unroll: bool | None = None,
) -> CDFG:
    """Whole-function CDFG (optionally pragma-blind for the Wu baseline)."""
    builder = GraphBuilder(
        function, config, library, pragma_aware=pragma_aware,
        replay_unroll=replay_unroll,
    )
    return builder.build_function_graph()


def build_loop_subgraph(
    function: IRFunction,
    loop: Loop,
    config: PragmaConfig | None = None,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    replay_unroll: bool | None = None,
) -> CDFG:
    """CDFG of one loop nest under the given configuration."""
    builder = GraphBuilder(function, config, library, replay_unroll=replay_unroll)
    return builder.build_loop_graph(loop)


__all__ = [
    "GraphBuilder", "build_flat_graph", "build_loop_subgraph",
    "effective_unroll_factors", "partition_banks", "naive_emission",
    "DEFAULT_REPLAY_UNROLL",
    "IOPORT_OPTYPE", "SUPER_PIPELINED_OPTYPE", "SUPER_NONPIPELINED_OPTYPE",
]
