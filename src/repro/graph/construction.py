"""Pragma-aware CDFG construction (Section III-A of the paper).

The builder turns an :class:`~repro.ir.structure.IRFunction` plus a
:class:`~repro.frontend.pragmas.PragmaConfig` into a :class:`CDFG`:

* **loop pipelining** leaves the graph unchanged (it is captured through
  loop-level features instead);
* **loop unrolling** replicates the logic nodes of the unrolled region and
  rewires data edges to the original predecessors/successors (Fig. 2b);
* **array partitioning** inserts one memory-port node per bank and connects
  each load/store to the banks it can actually touch, determined from the
  affine access map and the partition type (Fig. 2c);
* loops listed in ``condense_loops`` are emitted as a single *super node*
  (used by the hierarchical approach to represent an already-predicted inner
  loop), replicated when their parent loop is unrolled (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.pragmas import ArrayDirective, PartitionType, PragmaConfig
from repro.graph.cache import FunctionSkeleton
from repro.graph.cdfg import CDFG, EdgeKind, NodeKind
from repro.hls.directives import effective_unroll_factors, partition_banks
from repro.hls.op_library import DEFAULT_LIBRARY, MEMORY_PORT, OperatorLibrary
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IfRegion, IRFunction, Loop, Region

#: Optype strings for the two extension node categories.
IOPORT_OPTYPE = "ioport"
SUPER_PIPELINED_OPTYPE = "super_p"
SUPER_NONPIPELINED_OPTYPE = "super_np"


# --------------------------------------------------------------------------- #
# internal helpers
# --------------------------------------------------------------------------- #
class _ValueScope:
    """Maps IR instruction ids to CDFG node ids, with lexical nesting."""

    def __init__(self, parent: "_ValueScope | None" = None):
        self.parent = parent
        self._map: dict[int, int] = {}

    def bind(self, instr_id: int, node_id: int) -> None:
        self._map[instr_id] = node_id

    def lookup(self, instr_id: int) -> int | None:
        scope: _ValueScope | None = self
        while scope is not None:
            if instr_id in scope._map:
                return scope._map[instr_id]
            scope = scope.parent
        return None


@dataclass
class _LoopContext:
    """Per-enclosing-loop state during emission."""

    label: str
    var: str
    residual_tripcount: int
    unroll_factor: int
    replica: int = 0


@dataclass
class _EmitState:
    """Carried through the recursive emission of a region."""

    scope: _ValueScope
    loops: tuple[_LoopContext, ...] = ()
    #: iteration offset per induction variable introduced by unrolling
    offsets: dict[str, int] = field(default_factory=dict)
    prev_node: int | None = None


class GraphBuilder:
    """Builds pragma-aware CDFGs from an IR function and a design point."""

    def __init__(
        self,
        function: IRFunction,
        config: PragmaConfig | None = None,
        library: OperatorLibrary = DEFAULT_LIBRARY,
        *,
        pragma_aware: bool = True,
        condense_loops: dict[str, bool] | None = None,
        max_replication: int = 64,
        max_nodes: int = 4096,
        skeleton: FunctionSkeleton | None = None,
        unroll_factors: dict[str, int] | None = None,
    ):
        """
        Parameters
        ----------
        function:
            The lowered kernel.
        config:
            The design point (pragma configuration).  ``None`` means the
            baseline configuration (no directives).
        pragma_aware:
            When False the graph ignores the configuration entirely (no node
            replication, a single port per array) — this reproduces the
            pragma-blind graphs of the Wu et al. baseline.
        condense_loops:
            Maps loop labels to a "pipelined" flag; those loops are emitted
            as super nodes instead of expanding their bodies.
        max_replication:
            Safety cap on the number of replicas created for one loop.
        max_nodes:
            Soft budget on the total graph size: once exceeded, further
            unroll replicas are not materialized (the already-annotated
            ``invocations`` features still carry the iteration counts).
        skeleton:
            Optional pre-computed pragma-independent analysis of ``function``
            (see :class:`~repro.graph.cache.FunctionSkeleton`); when given,
            IR walks and operator characterizations are looked up instead of
            recomputed.
        unroll_factors:
            Optional pre-computed ``effective_unroll_factors(function,
            config)`` result, so callers that already resolved the factors
            (e.g. cached decomposition) avoid re-walking the loop tree.
            Ignored when ``pragma_aware`` is False.
        """
        self.function = function
        self.config = config or PragmaConfig()
        self.library = library
        self.pragma_aware = pragma_aware
        self.condense_loops = dict(condense_loops or {})
        self.max_replication = max_replication
        self.max_nodes = max_nodes
        self.skeleton = skeleton
        self._var_to_loop: dict[str, str] | None = (
            skeleton.var_to_loop if skeleton is not None else None
        )
        if not pragma_aware:
            self.unroll = {loop.label: 1 for loop in function.all_loops()}
        elif unroll_factors is not None:
            self.unroll = unroll_factors
        else:
            self.unroll = effective_unroll_factors(function, self.config)
        self.cdfg = CDFG(name=function.name)
        self._port_nodes: dict[str, list[int]] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build_function_graph(self) -> CDFG:
        """CDFG of the whole function body."""
        self._add_memory_ports(self.function.arrays.values())
        state = _EmitState(scope=_ValueScope())
        self._emit_region(self.function.body, state)
        self._finalize()
        return self.cdfg

    def build_loop_graph(self, loop: Loop) -> CDFG:
        """CDFG of a single loop nest (an inner-hierarchy unit)."""
        self.cdfg = CDFG(name=f"{self.function.name}:{loop.label}")
        self._port_nodes = {}
        touched = self._arrays_touched(loop)
        self._add_memory_ports(
            info for name, info in self.function.arrays.items() if name in touched
        )
        state = _EmitState(scope=_ValueScope())
        self._emit_loop(loop, state)
        self._finalize()
        return self.cdfg

    # ------------------------------------------------------------------ #
    # memory ports
    # ------------------------------------------------------------------ #
    def _add_memory_ports(self, arrays) -> None:
        for info in arrays:
            directive = (
                self.config.array(info.name) if self.pragma_aware else ArrayDirective()
            )
            banks = partition_banks(info, directive) if self.pragma_aware else 1
            banks = min(banks, self.max_replication)
            node_ids = []
            for bank in range(banks):
                node = self.cdfg.add_node(
                    IOPORT_OPTYPE, kind=NodeKind.MEMORY_PORT, dtype=info.dtype,
                    array=info.name, replica=bank,
                    features={name: 0.0 for name in ()},
                )
                node.features.update(
                    invocations=1.0,
                    cycles=float(MEMORY_PORT.cycles),
                    delay=MEMORY_PORT.delay_ns,
                    lut=float(MEMORY_PORT.lut),
                    dsp=float(MEMORY_PORT.dsp),
                    ff=float(MEMORY_PORT.ff),
                )
                node_ids.append(node.node_id)
            self._port_nodes[info.name] = node_ids

    def _connected_banks(
        self, instr: Instruction, offsets: dict[str, int]
    ) -> list[int]:
        """Which memory-port banks a load/store may touch.

        Follows the paper: LLVM-pass style analysis of the index expression
        determines the target bank when it is statically known; dynamic or
        unanalysable indices connect to every port.
        """
        ports = self._port_nodes.get(instr.array, [])
        if len(ports) <= 1:
            return list(range(len(ports)))
        info = self.function.arrays[instr.array]
        directive = self.config.array(instr.array)
        banks = len(ports)
        access = instr.access
        if access is None or not access.is_affine:
            return list(range(banks))
        dim = min(max(directive.dim, 1), max(1, access.ndims)) - 1
        coeffs = access.dim_map(dim)
        const = access.dim_const(dim)
        if directive.partition_type in (PartitionType.CYCLIC, PartitionType.COMPLETE):
            # index ≡ sum(coeff * (unroll_base + offset)) + const (mod banks);
            # the bank is fixed when every varying term is a multiple of banks.
            fixed = const
            for var, coeff in coeffs.items():
                if var in offsets:
                    fixed += coeff * offsets[var]
                    factor = self.unroll.get(self._loop_of_var(var), 1)
                    if (coeff * factor) % banks != 0:
                        return list(range(banks))
                elif coeff % banks != 0:
                    return list(range(banks))
            return [fixed % banks]
        # block partitioning: the bank changes as outer iterations advance,
        # so only constant indices resolve to a single bank.
        if any(coeff != 0 for coeff in coeffs.values()):
            return list(range(banks))
        dim_size = info.dims[dim] if dim < len(info.dims) else info.total_size
        block = max(1, -(-dim_size // banks))
        return [min(banks - 1, const // block)]

    def _loop_of_var(self, var: str) -> str:
        if self._var_to_loop is None:
            # first loop wins for duplicated induction-variable names,
            # matching the original linear scan
            self._var_to_loop = {}
            for loop in self.function.all_loops():
                self._var_to_loop.setdefault(loop.var, loop.label)
        return self._var_to_loop.get(var, "")

    def _characterize(self, instr: Instruction):
        if self.skeleton is not None:
            return self.skeleton.characterize(instr, self.library)
        return self.library.lookup_instr(instr)

    def _arrays_touched(self, loop: Loop) -> set[str]:
        if self.skeleton is not None:
            return set(self.skeleton.touched_arrays(loop.label))
        touched = set()
        for instr in loop.body.walk_instructions():
            if instr.array:
                touched.add(instr.array)
        return touched

    # ------------------------------------------------------------------ #
    # region / loop emission
    # ------------------------------------------------------------------ #
    def _emit_region(self, region: Region, state: _EmitState) -> None:
        for item in region.items:
            if isinstance(item, Instruction):
                self._emit_instruction(item, state)
            elif isinstance(item, Loop):
                self._emit_loop(item, state)
            elif isinstance(item, IfRegion):
                self._emit_if(item, state)

    def _emit_instruction(self, instr: Instruction, state: _EmitState) -> int:
        if instr.opcode is Opcode.ALLOCA:
            return -1
        loop_label = state.loops[-1].label if state.loops else ""
        replica = state.loops[-1].replica if state.loops else 0
        node = self.cdfg.add_node(
            instr.opcode.value if instr.opcode is not Opcode.CALL else instr.callee,
            kind=NodeKind.OPERATION, dtype=instr.dtype, loop_label=loop_label,
            array=instr.array, instr_id=instr.instr_id, replica=replica,
        )
        node.features["invocations"] = float(self._invocations(state))
        char = self._characterize(instr)
        node.features.update(
            cycles=float(char.cycles), delay=char.delay_ns, lut=float(char.lut),
            dsp=float(char.dsp), ff=float(char.ff),
            work=float(max(1, char.cycles)) * node.features["invocations"],
        )
        # data-flow edges from producing nodes
        for operand in instr.value_operands:
            src = state.scope.lookup(operand.instr_id)
            if src is not None:
                self.cdfg.add_edge(src, node.node_id, EdgeKind.DATA)
        # sequential control edge (program order within the region)
        if state.prev_node is not None:
            self.cdfg.add_edge(state.prev_node, node.node_id, EdgeKind.CONTROL)
        state.prev_node = node.node_id
        state.scope.bind(instr.instr_id, node.node_id)
        # memory edges to/from port banks
        if instr.opcode in (Opcode.LOAD, Opcode.STORE) and instr.array in self._port_nodes:
            ports = self._port_nodes[instr.array]
            for bank in self._connected_banks(instr, state.offsets):
                port_node = ports[bank]
                if instr.opcode is Opcode.LOAD:
                    self.cdfg.add_edge(port_node, node.node_id, EdgeKind.MEMORY)
                else:
                    self.cdfg.add_edge(node.node_id, port_node, EdgeKind.MEMORY)
        return node.node_id

    def _invocations(self, state: _EmitState) -> int:
        total = 1
        for context in state.loops:
            total *= max(1, context.residual_tripcount)
        return total

    def _emit_loop(self, loop: Loop, state: _EmitState) -> None:
        if loop.label in self.condense_loops:
            self._emit_super_node(loop, state)
            return
        factor = self.unroll.get(loop.label, 1)
        tripcount = max(1, loop.tripcount)
        factor = min(factor, tripcount, self.max_replication)
        residual = max(1, tripcount // factor)
        fully_unrolled = factor >= tripcount

        header_nodes: list[int] = []
        loop_scope = _ValueScope(parent=state.scope)
        if not fully_unrolled:
            for instr in loop.header_instrs + loop.latch_instrs:
                loop_label = loop.label
                node = self.cdfg.add_node(
                    instr.opcode.value, kind=NodeKind.OPERATION, dtype=instr.dtype,
                    loop_label=loop_label, instr_id=instr.instr_id,
                )
                node.features["invocations"] = float(
                    self._invocations(state) * residual
                )
                char = self._characterize(instr)
                node.features.update(
                    cycles=float(char.cycles), delay=char.delay_ns,
                    lut=float(char.lut), dsp=float(char.dsp), ff=float(char.ff),
                    work=float(max(1, char.cycles)) * node.features["invocations"],
                )
                loop_scope.bind(instr.instr_id, node.node_id)
                header_nodes.append(node.node_id)
            # wire header control/data flow: phi -> icmp -> br, phi -> incr
            if len(header_nodes) >= 4:
                phi, icmp, br, incr = header_nodes[:4]
                self.cdfg.add_edge(phi, icmp, EdgeKind.DATA)
                self.cdfg.add_edge(icmp, br, EdgeKind.DATA)
                self.cdfg.add_edge(phi, incr, EdgeKind.DATA)
                self.cdfg.add_edge(incr, phi, EdgeKind.DATA)
                if state.prev_node is not None:
                    self.cdfg.add_edge(state.prev_node, phi, EdgeKind.CONTROL)
                state.prev_node = br

        for replica in range(factor):
            if replica > 0 and self.cdfg.num_nodes >= self.max_nodes:
                break
            context = _LoopContext(
                label=loop.label, var=loop.var, residual_tripcount=residual,
                unroll_factor=factor, replica=replica,
            )
            replica_scope = _ValueScope(parent=loop_scope)
            offsets = dict(state.offsets)
            offsets[loop.var] = replica
            replica_state = _EmitState(
                scope=replica_scope, loops=state.loops + (context,),
                offsets=offsets, prev_node=state.prev_node,
            )
            self._emit_region(loop.body, replica_state)
            if replica_state.prev_node is not None:
                state.prev_node = replica_state.prev_node

    def _emit_super_node(self, loop: Loop, state: _EmitState) -> None:
        pipelined = self.condense_loops.get(loop.label, False)
        optype = SUPER_PIPELINED_OPTYPE if pipelined else SUPER_NONPIPELINED_OPTYPE
        replica = state.loops[-1].replica if state.loops else 0
        node = self.cdfg.add_node(
            optype, kind=NodeKind.SUPER_NODE,
            loop_label=loop.label, replica=replica,
        )
        node.features["invocations"] = float(self._invocations(state))
        # data edges from outer values consumed inside the condensed loop
        if self.skeleton is not None:
            inner_ids = self.skeleton.inner_instr_ids(loop.label)
            external_uses_sorted = self.skeleton.external_uses(loop.label)
            memory_instrs = self.skeleton.memory_instructions(loop.label)
        else:
            inner_ids = {instr.instr_id for instr in loop.body.walk_instructions()}
            inner_ids |= {instr.instr_id for instr in loop.header_instrs}
            inner_ids |= {instr.instr_id for instr in loop.latch_instrs}
            external_uses: set[int] = set()
            for instr in loop.body.walk_instructions():
                for operand in instr.value_operands:
                    if operand.instr_id not in inner_ids:
                        external_uses.add(operand.instr_id)
            external_uses_sorted = sorted(external_uses)
            memory_instrs = [
                instr for instr in loop.body.walk_instructions()
                if instr.opcode in (Opcode.LOAD, Opcode.STORE)
            ]
        for instr_id in external_uses_sorted:
            src = state.scope.lookup(instr_id)
            if src is not None:
                self.cdfg.add_edge(src, node.node_id, EdgeKind.DATA)
        # memory edges between the super node and the banks of arrays it uses
        for instr in memory_instrs:
            if instr.array not in self._port_nodes:
                continue
            for bank in self._connected_banks(instr, state.offsets):
                port_node = self._port_nodes[instr.array][bank]
                if instr.opcode is Opcode.LOAD:
                    self.cdfg.add_edge(port_node, node.node_id, EdgeKind.MEMORY)
                else:
                    self.cdfg.add_edge(node.node_id, port_node, EdgeKind.MEMORY)
        # values defined inside and used outside resolve to the super node
        for instr_id in inner_ids:
            state.scope.bind(instr_id, node.node_id)
        if state.prev_node is not None:
            self.cdfg.add_edge(state.prev_node, node.node_id, EdgeKind.CONTROL)
        state.prev_node = node.node_id

    def _emit_if(self, if_region: IfRegion, state: _EmitState) -> None:
        cond_node = state.scope.lookup(if_region.cond_instr_id)
        for region in (if_region.then_region, if_region.else_region):
            branch_state = _EmitState(
                scope=_ValueScope(parent=state.scope), loops=state.loops,
                offsets=dict(state.offsets), prev_node=cond_node,
            )
            self._emit_region(region, branch_state)
            # propagate bindings of the branch into the parent scope so that
            # select nodes emitted after the if-region find their operands.
            for instr in region.walk_instructions():
                node_id = branch_state.scope.lookup(instr.instr_id)
                if node_id is not None:
                    state.scope.bind(instr.instr_id, node_id)
            if branch_state.prev_node is not None:
                state.prev_node = branch_state.prev_node

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #
    def _finalize(self) -> None:
        in_degree, out_degree = self.cdfg.degree_arrays()
        for node in self.cdfg.nodes:
            node.features["in_degree"] = float(in_degree[node.node_id])
            node.features["out_degree"] = float(out_degree[node.node_id])
        self.cdfg.metadata["kernel"] = self.function.name
        self.cdfg.metadata["config"] = self.config.describe()


# --------------------------------------------------------------------------- #
# convenience wrappers
# --------------------------------------------------------------------------- #
def build_flat_graph(
    function: IRFunction,
    config: PragmaConfig | None = None,
    *,
    pragma_aware: bool = True,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> CDFG:
    """Whole-function CDFG (optionally pragma-blind for the Wu baseline)."""
    builder = GraphBuilder(
        function, config, library, pragma_aware=pragma_aware
    )
    return builder.build_function_graph()


def build_loop_subgraph(
    function: IRFunction,
    loop: Loop,
    config: PragmaConfig | None = None,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> CDFG:
    """CDFG of one loop nest under the given configuration."""
    builder = GraphBuilder(function, config, library)
    return builder.build_loop_graph(loop)


__all__ = [
    "GraphBuilder", "build_flat_graph", "build_loop_subgraph",
    "effective_unroll_factors", "partition_banks",
    "IOPORT_OPTYPE", "SUPER_PIPELINED_OPTYPE", "SUPER_NONPIPELINED_OPTYPE",
]
