"""Loop-hierarchy decomposition (Section III-C of the paper).

The hierarchical modeling approach splits a kernel into

* **inner-hierarchy units** — loops that contain only computing logic once
  the pragma configuration is applied (four categories: a single-level loop,
  a nest pipelined at its outer level, a flattened perfect nest pipelined at
  the innermost level, or a nest whose sub-loops are all fully unrolled); and
* the **outer hierarchy** — everything else.  Each inner unit collapses to a
  *super node* carrying its (predicted) QoR, and the resulting condensed
  graph is the input of the global model ``GNNg``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.flags import canonical_directives_active
from repro.frontend.pragmas import PragmaConfig
from repro.graph.cache import GraphConstructionCache, outer_cache_key, unit_cache_key
from repro.graph.cdfg import CDFG, NodeKind
from repro.graph.construction import GraphBuilder
from repro.graph.features import loop_level_features
from repro.hls.directives import (
    canonicalize_config,
    effective_unroll_factors,
    resolve_loop_roles,
)
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.structure import IRFunction, Loop


class InnerUnitCategory(IntEnum):
    """The four inner-hierarchy loop categories defined by the paper."""

    SINGLE_LEVEL = 1
    PIPELINED_NEST = 2
    FLATTENED_PIPELINED_NEST = 3
    FULLY_UNROLLED_NEST = 4


@dataclass
class InnerLoopUnit:
    """One inner-hierarchy loop with its subgraph and loop-level features."""

    loop: Loop
    category: InnerUnitCategory
    pipelined: bool
    subgraph: CDFG
    flattened_levels: int = 1
    #: pragma-delta cache key (set when decomposing through a cache)
    cache_key: str = ""

    @property
    def label(self) -> str:
        return self.loop.label


@dataclass
class HierarchicalDecomposition:
    """Result of decomposing a kernel under one configuration."""

    function: IRFunction
    config: PragmaConfig
    inner_units: list[InnerLoopUnit] = field(default_factory=list)
    outer_graph: CDFG = field(default_factory=CDFG)
    #: pragma-delta cache key of the outer graph (set when using a cache)
    cache_key: str = ""

    def unit(self, label: str) -> InnerLoopUnit:
        for unit in self.inner_units:
            if unit.label == label:
                return unit
        raise KeyError(f"no inner unit for loop {label!r}")

    def super_node_ids(self, label: str) -> list[int]:
        """Super nodes in the outer graph standing for loop ``label``
        (several when the parent loop is unrolled)."""
        graph = self.outer_graph
        labels = graph.node_loop_labels
        return [
            node_id for node_id, kind in enumerate(graph.node_kinds)
            if kind is NodeKind.SUPER_NODE and labels[node_id] == label
        ]


def classify_inner_units(
    function: IRFunction, config: PragmaConfig
) -> list[tuple[Loop, InnerUnitCategory, bool, int]]:
    """Find the inner-hierarchy units of a kernel under a configuration.

    Returns ``(loop, category, pipelined, flattened_levels)`` tuples for the
    *maximal* loops that qualify, scanning the loop tree top-down.
    """
    roles = resolve_loop_roles(function, config)
    unroll = effective_unroll_factors(function, config)
    units: list[tuple[Loop, InnerUnitCategory, bool, int]] = []

    def all_subloops_fully_unrolled(loop: Loop) -> bool:
        return all(
            unroll.get(sub.label, 1) >= max(1, sub.tripcount)
            for sub in loop.all_sub_loops()
        )

    def visit(loop: Loop) -> None:
        role = roles[loop.label]
        subs = loop.sub_loops()
        if role.flattened_into:
            chain_length = 1
            current = loop
            while current.label != role.flattened_into and current.sub_loops():
                current = current.sub_loops()[0]
                chain_length += 1
            units.append(
                (loop, InnerUnitCategory.FLATTENED_PIPELINED_NEST, True, chain_length)
            )
            return
        if role.pipelined:
            category = (
                InnerUnitCategory.SINGLE_LEVEL if not subs
                else InnerUnitCategory.PIPELINED_NEST
            )
            units.append((loop, category, True, 1))
            return
        if not subs:
            units.append((loop, InnerUnitCategory.SINGLE_LEVEL, False, 1))
            return
        if all_subloops_fully_unrolled(loop):
            units.append((loop, InnerUnitCategory.FULLY_UNROLLED_NEST, False, 1))
            return
        for sub in subs:
            visit(sub)

    for top in function.top_level_loops():
        visit(top)
    return units


def _canonical_config(
    function: IRFunction,
    config: PragmaConfig,
    cache: GraphConstructionCache | None,
) -> PragmaConfig:
    """The effective form of ``config`` (memoized per raw key in the cache).

    Both decomposition entrypoints canonicalize through this, so unit/outer
    cache keys, the analysis memo and every signature downstream (prediction
    memo, warm-cache blobs, sharding order) key by the *effective* design —
    equivalent raw configurations collapse to one entry everywhere.  The
    :func:`repro.flags.raw_directives` toggle bypasses the rewrite.
    """
    if not canonical_directives_active():
        return config
    if cache is None:
        return canonicalize_config(function, config)
    key = (id(function), config.key())
    entry = cache.canonical.get(key)
    if entry is None:
        entry = canonicalize_config(function, config)
        cache.canonical[key] = entry
    return entry


def _loop_analysis(
    function: IRFunction,
    config: PragmaConfig,
    cache: GraphConstructionCache | None,
) -> tuple[list, dict[str, int]]:
    """(classified inner units, effective unroll factors), memoized per
    ``(function, config)`` in the cache so signature computation and
    decomposition share one classification pass."""
    if cache is None:
        return (
            classify_inner_units(function, config),
            effective_unroll_factors(function, config),
        )
    key = (id(function), config.key())
    entry = cache.analysis.get(key)
    if entry is None:
        entry = (
            classify_inner_units(function, config),
            effective_unroll_factors(function, config),
        )
        cache.analysis[key] = entry
    return entry


def decomposition_signature(
    function: IRFunction,
    config: PragmaConfig | None,
    cache: GraphConstructionCache,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> tuple[str, tuple[tuple[str, str], ...]]:
    """The pragma-delta identity of a decomposition, without building graphs.

    Two configurations with equal signatures yield outer graphs and inner
    subgraphs that are feature-identical, hence identical QoR predictions.
    Computing the signature costs only classification plus key strings, which
    lets batched inference skip construction for already-seen design deltas.
    The configuration is canonicalized to its effective form first (see
    :func:`repro.hls.directives.canonicalize_config`), so equivalent raw
    configurations — designs HLS resolves identically — share one signature.
    """
    config = _canonical_config(function, config or PragmaConfig(), cache)
    skeleton = cache.skeleton(function)
    token = cache.library_token(library)
    classified, unroll = _loop_analysis(function, config, cache)
    condense = {loop.label: pipelined for loop, _, pipelined, _ in classified}
    outer = outer_cache_key(skeleton, config, condense, unroll, token)
    units = tuple(sorted(
        (loop.label,
         unit_cache_key(skeleton, config, loop, pipelined, levels, token, unroll))
        for loop, _, pipelined, levels in classified
    ))
    return outer, units


def decompose(
    function: IRFunction,
    config: PragmaConfig | None = None,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    cache: GraphConstructionCache | None = None,
    outer_copy: bool = True,
) -> HierarchicalDecomposition:
    """Decompose a kernel into inner units and the condensed outer graph.

    With ``cache``, the pragma-independent IR skeleton is built once per
    kernel and built graphs are reused between configurations that apply
    identical directives to the relevant loops/arrays: inner subgraphs are
    shared read-only, the outer graph is copied from a pristine template
    (callers annotate super nodes in place).  ``outer_copy=False`` skips
    that copy and returns the shared pristine outer graph for **read-only**
    consumers (the vectorized batched-inference path, which annotates
    feature-matrix copies instead of graphs).

    The configuration is canonicalized first (matching
    :func:`decomposition_signature`), so the decomposition's ``config`` —
    and the provenance stamped into graph metadata — is the *effective*
    design; disable with :func:`repro.flags.raw_directives`.
    """
    config = _canonical_config(function, config or PragmaConfig(), cache)
    classified, unroll = _loop_analysis(function, config, cache)
    skeleton = cache.skeleton(function) if cache is not None else None
    library_token = cache.library_token(library) if cache is not None else ""
    inner_units: list[InnerLoopUnit] = []
    condense: dict[str, bool] = {}
    for loop, category, pipelined, flattened_levels in classified:
        key = ""
        subgraph = None
        if cache is not None:
            key = unit_cache_key(
                skeleton, config, loop, pipelined, flattened_levels,
                library_token, unroll,
            )
            entry = cache.get_unit(function, key)
            if entry is not None:
                subgraph = entry.subgraph
        if subgraph is None:
            builder = GraphBuilder(
                function, config, library, skeleton=skeleton,
                unroll_factors=unroll,
            )
            subgraph = builder.build_loop_graph(loop)
            subgraph.loop_features = loop_level_features(
                function, loop, config, pipelined=pipelined,
                flattened_levels=flattened_levels, library=library,
                unroll_factors=unroll,
            )
            subgraph.metadata["loop"] = loop.label
            if cache is not None:
                # the subgraph is shared read-only between every config with
                # this pragma delta, so the builder's full-config description
                # would be stale provenance
                subgraph.metadata["config"] = key
                cache.put_unit(function, key, subgraph)
        inner_units.append(
            InnerLoopUnit(
                loop=loop, category=category, pipelined=pipelined,
                subgraph=subgraph, flattened_levels=flattened_levels,
                cache_key=key,
            )
        )
        condense[loop.label] = pipelined
    outer_key = ""
    outer_graph = None
    if cache is not None:
        outer_key = outer_cache_key(
            skeleton, config, condense, unroll, library_token
        )
        outer_graph = cache.get_outer(function, outer_key, copy=outer_copy)
        if outer_graph is not None and outer_copy:
            # each config gets its own copy; restamp its true provenance
            outer_graph.metadata["config"] = config.describe()
    if outer_graph is None:
        outer_builder = GraphBuilder(
            function, config, library, condense_loops=condense,
            skeleton=skeleton, unroll_factors=unroll,
        )
        outer_graph = outer_builder.build_function_graph()
        if cache is not None:
            cache.put_outer(function, outer_key, outer_graph, copy=outer_copy)
    return HierarchicalDecomposition(
        function=function, config=config,
        inner_units=inner_units, outer_graph=outer_graph,
        cache_key=outer_key,
    )


__all__ = [
    "InnerUnitCategory", "InnerLoopUnit", "HierarchicalDecomposition",
    "classify_inner_units", "decompose", "decomposition_signature",
]
