"""Loop-hierarchy decomposition (Section III-C of the paper).

The hierarchical modeling approach splits a kernel into

* **inner-hierarchy units** — loops that contain only computing logic once
  the pragma configuration is applied (four categories: a single-level loop,
  a nest pipelined at its outer level, a flattened perfect nest pipelined at
  the innermost level, or a nest whose sub-loops are all fully unrolled); and
* the **outer hierarchy** — everything else.  Each inner unit collapses to a
  *super node* carrying its (predicted) QoR, and the resulting condensed
  graph is the input of the global model ``GNNg``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.frontend.pragmas import PragmaConfig
from repro.graph.cdfg import CDFG, NodeKind
from repro.graph.construction import GraphBuilder
from repro.graph.features import loop_level_features
from repro.hls.directives import effective_unroll_factors, resolve_loop_roles
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.structure import IRFunction, Loop


class InnerUnitCategory(IntEnum):
    """The four inner-hierarchy loop categories defined by the paper."""

    SINGLE_LEVEL = 1
    PIPELINED_NEST = 2
    FLATTENED_PIPELINED_NEST = 3
    FULLY_UNROLLED_NEST = 4


@dataclass
class InnerLoopUnit:
    """One inner-hierarchy loop with its subgraph and loop-level features."""

    loop: Loop
    category: InnerUnitCategory
    pipelined: bool
    subgraph: CDFG
    flattened_levels: int = 1

    @property
    def label(self) -> str:
        return self.loop.label


@dataclass
class HierarchicalDecomposition:
    """Result of decomposing a kernel under one configuration."""

    function: IRFunction
    config: PragmaConfig
    inner_units: list[InnerLoopUnit] = field(default_factory=list)
    outer_graph: CDFG = field(default_factory=CDFG)

    def unit(self, label: str) -> InnerLoopUnit:
        for unit in self.inner_units:
            if unit.label == label:
                return unit
        raise KeyError(f"no inner unit for loop {label!r}")

    def super_node_ids(self, label: str) -> list[int]:
        """Super nodes in the outer graph standing for loop ``label``
        (several when the parent loop is unrolled)."""
        return [
            node.node_id for node in self.outer_graph.nodes
            if node.kind is NodeKind.SUPER_NODE and node.loop_label == label
        ]


def classify_inner_units(
    function: IRFunction, config: PragmaConfig
) -> list[tuple[Loop, InnerUnitCategory, bool, int]]:
    """Find the inner-hierarchy units of a kernel under a configuration.

    Returns ``(loop, category, pipelined, flattened_levels)`` tuples for the
    *maximal* loops that qualify, scanning the loop tree top-down.
    """
    roles = resolve_loop_roles(function, config)
    unroll = effective_unroll_factors(function, config)
    units: list[tuple[Loop, InnerUnitCategory, bool, int]] = []

    def all_subloops_fully_unrolled(loop: Loop) -> bool:
        return all(
            unroll.get(sub.label, 1) >= max(1, sub.tripcount)
            for sub in loop.all_sub_loops()
        )

    def visit(loop: Loop) -> None:
        role = roles[loop.label]
        subs = loop.sub_loops()
        if role.flattened_into:
            chain_length = 1
            current = loop
            while current.label != role.flattened_into and current.sub_loops():
                current = current.sub_loops()[0]
                chain_length += 1
            units.append(
                (loop, InnerUnitCategory.FLATTENED_PIPELINED_NEST, True, chain_length)
            )
            return
        if role.pipelined:
            category = (
                InnerUnitCategory.SINGLE_LEVEL if not subs
                else InnerUnitCategory.PIPELINED_NEST
            )
            units.append((loop, category, True, 1))
            return
        if not subs:
            units.append((loop, InnerUnitCategory.SINGLE_LEVEL, False, 1))
            return
        if all_subloops_fully_unrolled(loop):
            units.append((loop, InnerUnitCategory.FULLY_UNROLLED_NEST, False, 1))
            return
        for sub in subs:
            visit(sub)

    for top in function.top_level_loops():
        visit(top)
    return units


def decompose(
    function: IRFunction,
    config: PragmaConfig | None = None,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> HierarchicalDecomposition:
    """Decompose a kernel into inner units and the condensed outer graph."""
    config = config or PragmaConfig()
    classified = classify_inner_units(function, config)
    inner_units: list[InnerLoopUnit] = []
    condense: dict[str, bool] = {}
    for loop, category, pipelined, flattened_levels in classified:
        builder = GraphBuilder(function, config, library)
        subgraph = builder.build_loop_graph(loop)
        subgraph.loop_features = loop_level_features(
            function, loop, config, pipelined=pipelined,
            flattened_levels=flattened_levels, library=library,
        )
        subgraph.metadata["loop"] = loop.label
        inner_units.append(
            InnerLoopUnit(
                loop=loop, category=category, pipelined=pipelined,
                subgraph=subgraph, flattened_levels=flattened_levels,
            )
        )
        condense[loop.label] = pipelined
    outer_builder = GraphBuilder(
        function, config, library, condense_loops=condense
    )
    outer_graph = outer_builder.build_function_graph()
    return HierarchicalDecomposition(
        function=function, config=config,
        inner_units=inner_units, outer_graph=outer_graph,
    )


__all__ = [
    "InnerUnitCategory", "InnerLoopUnit", "HierarchicalDecomposition",
    "classify_inner_units", "decompose",
]
