"""Pragma-aware graph-construction caching for cross-config inference.

Design-space exploration evaluates the *same kernel* under many pragma
configurations.  Building the CDFG from scratch for every configuration
re-derives two kinds of work:

* **pragma-independent analysis** of the IR (loop nests, per-loop instruction
  lists, touched arrays, super-node boundary values, operator
  characterizations) — captured once per kernel in a
  :class:`FunctionSkeleton`;
* **pragma-dependent graphs** that coincide between configurations — two
  configurations that apply identical directives to a loop nest (and to the
  arrays it touches) produce byte-identical inner-loop subgraphs, and
  configurations that agree on unroll factors, array partitioning and the
  condense map produce identical outer graphs.  :class:`GraphConstructionCache`
  keys built graphs by exactly the directive slice they depend on, so only
  the unroll/partition *deltas* of a new configuration trigger construction.

Cached inner subgraphs are shared read-only between configurations; cached
outer graphs are stored as pristine templates and handed out as copies
because hierarchical inference annotates super nodes in place.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.frontend.pragmas import PragmaConfig
from repro.graph.cdfg import (
    CDFG,
    NODE_FEATURE_NAMES,
    EdgeKind,
    LoopLevelFeatures,
    NodeKind,
)
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IfRegion, IRFunction, Loop, Region


# --------------------------------------------------------------------------- #
# stable identities (persisted caches survive process restarts)
# --------------------------------------------------------------------------- #
def _instr_token(instr: Instruction) -> str:
    """Canonical text of one instruction (operands and access included —
    the class repr is a debugging summary that omits both)."""
    return (
        f"%{instr.instr_id}={instr.opcode.value}:{instr.dtype}:{instr.array}:"
        f"{instr.callee}:{instr.operands!r}:{instr.access!r}"
    )


def ir_fingerprint(function: IRFunction) -> str:
    """Content digest of a lowered kernel, stable across processes.

    Two lowerings of the same source text produce identical IR (the frontend
    is deterministic), hence identical fingerprints — which is what lets
    graph/prediction caches persisted by one process be adopted by another.
    Any change to the kernel source changes the digest, cheaply invalidating
    every cache entry keyed by it.
    """
    parts: list[str] = [function.name, repr(function.scalar_params)]
    for name, info in function.arrays.items():
        parts.append(f"A:{name}:{info.dims!r}:{info.dtype}:{int(info.is_argument)}")

    def walk(region: Region) -> None:
        for item in region.items:
            if isinstance(item, Instruction):
                parts.append(_instr_token(item))
            elif isinstance(item, Loop):
                parts.append(
                    f"L:{item.label}:{item.var}:{item.start}:{item.bound}:"
                    f"{item.step}:{item.cmp_op}"
                )
                for instr in item.header_instrs + item.latch_instrs:
                    parts.append(_instr_token(instr))
                walk(item.body)
                parts.append(f"endL:{item.label}")
            elif isinstance(item, IfRegion):
                parts.append(f"I:{item.cond_instr_id}")
                walk(item.then_region)
                parts.append("else")
                walk(item.else_region)
                parts.append("endI")

    walk(function.body)
    for recurrence in function.recurrences:
        parts.append(repr(recurrence))
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# CDFG <-> JSON-compatible payloads (warm-cache persistence)
# --------------------------------------------------------------------------- #
_NODE_KINDS = tuple(NodeKind)
_EDGE_KINDS = tuple(EdgeKind)
_NODE_KIND_CODE = {kind: code for code, kind in enumerate(_NODE_KINDS)}
_EDGE_KIND_CODE = {kind: code for code, kind in enumerate(_EDGE_KINDS)}


def cdfg_to_payload(graph: CDFG) -> dict:
    """JSON-compatible representation of a CDFG (exact float round-trip).

    The payload is **columnar** (warm-cache blob format v2): node identity
    attributes are stored as parallel per-node records with interned optype
    codes, and the numerical features as one row-major matrix
    (:data:`~repro.graph.cdfg.NODE_FEATURE_NAMES` order) — matching the
    in-memory columnar feature block, so serialization needs no per-node
    feature dicts and hydration bulk-loads the matrix in one assignment.
    """
    return {
        "name": graph.name,
        "optype_table": list(graph.optype_table),
        "nodes": [
            [code, dtype, _NODE_KIND_CODE[kind], loop_label, array,
             instr_id, replica]
            for code, dtype, kind, loop_label, array, instr_id, replica in zip(
                graph.optype_codes, graph.node_dtypes, graph.node_kinds,
                graph.node_loop_labels, graph.node_arrays,
                graph.node_instr_ids, graph.node_replicas,
            )
        ],
        "feature_rows": np.asarray(graph.feature_matrix()).tolist(),
        "edges": [
            graph.edge_src.tolist(),
            graph.edge_dst.tolist(),
            [_EDGE_KIND_CODE[kind] for kind in graph.edge_kinds],
        ],
        "loop_features": [
            graph.loop_features.ii, graph.loop_features.tripcount,
            bool(graph.loop_features.pipelined),
            graph.loop_features.unroll_factor, graph.loop_features.depth,
        ],
        "metadata": dict(graph.metadata),
    }


def cdfg_from_payload(payload: dict) -> CDFG:
    """Rebuild a CDFG stored with :func:`cdfg_to_payload`.

    Reads the columnar v2 layout (``optype_table`` + ``feature_rows``); the
    pre-columnar per-node-dict layout is still accepted so payload dicts
    produced by older code (e.g. fixtures) keep working — versioned warm
    cache *blobs* from before the bump are discarded upstream regardless.
    """
    graph = CDFG(name=payload["name"])
    feature_rows = payload.get("feature_rows")
    if feature_rows is None:
        # legacy layout: per-node [.., features_dict] records
        for optype, dtype, kind, loop_label, array, instr_id, replica, features in (
            payload["nodes"]
        ):
            node = graph.add_node(
                optype, kind=_NODE_KINDS[kind], dtype=dtype, loop_label=loop_label,
                array=array, instr_id=int(instr_id), replica=int(replica),
            )
            node.features.update(
                (name, float(value)) for name, value in features.items()
            )
    elif graph.feat is not None:
        # columnar hydration: the payload maps 1:1 onto the node columns, so
        # the whole graph loads as list comprehensions + one matrix build —
        # no node objects, no per-node feature writes
        table = [str(name) for name in payload["optype_table"]]
        records = payload["nodes"]
        graph.optype_table = table
        graph._optype_index = {name: code for code, name in enumerate(table)}
        graph.optype_codes = [int(record[0]) for record in records]
        graph.node_dtypes = [record[1] for record in records]
        graph.node_kinds = [_NODE_KINDS[record[2]] for record in records]
        graph.node_loop_labels = [record[3] for record in records]
        graph.node_arrays = [record[4] for record in records]
        graph.node_instr_ids = [int(record[5]) for record in records]
        graph.node_replicas = [int(record[6]) for record in records]
        graph.feat.matrix = np.asarray(
            feature_rows, dtype=np.float64
        ).reshape(len(records), len(NODE_FEATURE_NAMES))
        graph.feat.count = len(records)
    else:  # hydrating while the reference pipeline is forced
        table = payload["optype_table"]
        matrix = np.asarray(feature_rows, dtype=np.float64)
        for index, (code, dtype, kind, loop_label, array, instr_id, replica) in (
            enumerate(payload["nodes"])
        ):
            node = graph.add_node(
                table[code], kind=_NODE_KINDS[kind], dtype=dtype,
                loop_label=loop_label, array=array, instr_id=int(instr_id),
                replica=int(replica),
            )
            node.features.update(
                zip(NODE_FEATURE_NAMES, matrix[index].tolist())
            )
    src, dst, kinds = payload["edges"]
    graph._edges.extend(
        np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    )
    graph.edge_kinds = [_EDGE_KINDS[code] for code in kinds]
    ii, tripcount, pipelined, unroll_factor, depth = payload["loop_features"]
    graph.loop_features = LoopLevelFeatures(
        ii=float(ii), tripcount=float(tripcount), pipelined=bool(pipelined),
        unroll_factor=float(unroll_factor), depth=float(depth),
    )
    graph.metadata = dict(payload["metadata"])
    return graph


class FunctionSkeleton:
    """Pragma-independent analysis of one kernel, computed once.

    The :class:`~repro.graph.construction.GraphBuilder` consults the skeleton
    instead of re-walking the IR for every configuration: induction-variable
    ownership, per-loop instruction lists, touched arrays, the instruction-id
    sets that delimit a condensed loop and the externally-consumed values of
    each loop are all functions of the IR alone.
    """

    def __init__(self, function: IRFunction):
        self.function = function
        self.all_loops: list[Loop] = function.all_loops()
        self.loop_by_label: dict[str, Loop] = {
            loop.label: loop for loop in self.all_loops
        }
        # first loop wins for duplicated induction-variable names (sibling
        # nests reusing ``i``/``j``), matching the pre-existing linear scan
        self.var_to_loop: dict[str, str] = {}
        for loop in self.all_loops:
            self.var_to_loop.setdefault(loop.var, loop.label)
        self._body_instrs: dict[str, list[Instruction]] = {}
        self._memory_instrs: dict[str, list[Instruction]] = {}
        self._touched_arrays: dict[str, list[str]] = {}
        self._inner_ids: dict[str, set[int]] = {}
        self._external_uses: dict[str, list[int]] = {}
        self._nest_labels: dict[str, list[str]] = {}
        for loop in self.all_loops:
            body = list(loop.body.walk_instructions())
            self._body_instrs[loop.label] = body
            self._memory_instrs[loop.label] = [
                instr for instr in body
                if instr.opcode in (Opcode.LOAD, Opcode.STORE)
            ]
            self._touched_arrays[loop.label] = sorted(
                {instr.array for instr in body if instr.array}
            )
            inner = {instr.instr_id for instr in body}
            inner |= {instr.instr_id for instr in loop.header_instrs}
            inner |= {instr.instr_id for instr in loop.latch_instrs}
            self._inner_ids[loop.label] = inner
            external: set[int] = set()
            for instr in body:
                for operand in instr.value_operands:
                    if operand.instr_id not in inner:
                        external.add(operand.instr_id)
            self._external_uses[loop.label] = sorted(external)
            self._nest_labels[loop.label] = [loop.label] + [
                sub.label for sub in loop.all_sub_loops()
            ]
        #: operator characterizations keyed by ``(instr_id, id(library))``;
        #: the libraries are pinned so a recycled ``id`` cannot alias
        self._char_cache: dict[tuple[int, int], object] = {}
        self._char_libraries: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # per-loop lookups
    # ------------------------------------------------------------------ #
    def body_instructions(self, label: str) -> list[Instruction]:
        return self._body_instrs[label]

    def memory_instructions(self, label: str) -> list[Instruction]:
        return self._memory_instrs[label]

    def touched_arrays(self, label: str) -> list[str]:
        return self._touched_arrays[label]

    def inner_instr_ids(self, label: str) -> set[int]:
        return self._inner_ids[label]

    def external_uses(self, label: str) -> list[int]:
        return self._external_uses[label]

    def nest_labels(self, label: str) -> list[str]:
        return self._nest_labels[label]

    def characterize(self, instr: Instruction, library) -> object:
        key = (instr.instr_id, id(library))
        char = self._char_cache.get(key)
        if char is None:
            char = library.lookup_instr(instr)
            self._char_cache[key] = char
            self._char_libraries[id(library)] = library
        return char


# --------------------------------------------------------------------------- #
# cache keys
# --------------------------------------------------------------------------- #
def _loop_directive_key(config: PragmaConfig, label: str) -> str:
    d = config.loop(label)
    return f"{label}=P{int(d.pipeline)}:I{d.ii}:U{d.unroll_factor}:F{int(d.flatten)}"


def _array_directive_key(config: PragmaConfig, name: str) -> str:
    d = config.array(name)
    return f"{name}={d.partition_type.value}:f{d.factor}:d{d.dim}"


def unit_cache_key(
    skeleton: FunctionSkeleton,
    config: PragmaConfig,
    loop: Loop,
    pipelined: bool,
    flattened_levels: int,
    library_token: str = "",
    unroll_factors: dict[str, int] | None = None,
) -> str:
    """Directive slice an inner-loop subgraph (and its loop features) depend on.

    The subgraph of a maximal inner-hierarchy unit is fully determined by the
    directives applied to the loops of its own nest and to the arrays its body
    touches: units are maximal, so no ancestor is pipelined, and unroll
    factors never propagate downward from outside the nest.  Node features
    also depend on the operator library, identified by ``library_token``
    (see :meth:`GraphConstructionCache.library_token`).

    One subtlety: bank-connection analysis resolves induction-variable
    *names*, and sibling nests may reuse a name (``i``/``j``).  When a nest
    variable resolves to a loop outside the nest, that loop's effective
    unroll factor leaks into the subgraph's memory edges, so it is folded
    into the key.
    """
    nest = skeleton.nest_labels(loop.label)
    nest_set = set(nest)
    parts = [library_token, loop.label, "p" if pipelined else "np",
             str(flattened_levels)]
    for label in nest:
        parts.append(_loop_directive_key(config, label))
        var = skeleton.loop_by_label[label].var
        resolved = skeleton.var_to_loop.get(var, "")
        if resolved and resolved not in nest_set:
            factor = (unroll_factors or {}).get(resolved, 1)
            parts.append(f"x:{var}:{resolved}:{factor}")
    for name in skeleton.touched_arrays(loop.label):
        parts.append(_array_directive_key(config, name))
    return "|".join(parts)


def outer_cache_key(
    skeleton: FunctionSkeleton,
    config: PragmaConfig,
    condense: dict[str, bool],
    unroll_factors: dict[str, int],
    library_token: str = "",
) -> str:
    """Directive slice the condensed outer graph depends on.

    The outer graph is a function of the condense map (which loops collapse
    to super nodes and whether they are pipelined), the *effective* unroll
    factor of every non-condensed loop (replication and residual trip
    counts), and the partition directives of every function array
    (memory-port banks and bank-connection analysis).  Loops inside condensed
    nests never expand into the outer graph — their unroll factors only shape
    the inner subgraph — so they are deliberately excluded: that is what lets
    configurations differing only in inner-loop deltas share one outer
    template.
    """
    condensed_away: set[str] = set()
    for label in condense:
        condensed_away.update(skeleton.nest_labels(label))
    parts = [library_token]
    parts += [f"c:{label}:{int(flag)}" for label, flag in sorted(condense.items())]
    for label in sorted(skeleton.loop_by_label):
        if label in condensed_away:
            continue
        parts.append(f"u:{label}:{unroll_factors.get(label, 1)}")
        # symmetric to the unit-key collision handling: bank-connection
        # analysis resolves this loop's induction-variable *name* first-wins,
        # which may land on a condensed-away loop whose factor the key would
        # otherwise exclude
        var = skeleton.loop_by_label[label].var
        resolved = skeleton.var_to_loop.get(var, "")
        if resolved and resolved in condensed_away:
            parts.append(f"x:{var}:{resolved}:{unroll_factors.get(resolved, 1)}")
    parts += [
        _array_directive_key(config, name)
        for name in sorted(skeleton.function.arrays)
    ]
    return "|".join(parts)


# --------------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------------- #
@dataclass
class CachedUnit:
    """A cached inner-loop subgraph plus caller-stashed derived artifacts."""

    subgraph: CDFG
    extras: dict = field(default_factory=dict)


@dataclass
class CacheStats:
    unit_hits: int = 0
    unit_misses: int = 0
    outer_hits: int = 0
    outer_misses: int = 0
    #: entries hydrated from a persisted warm-cache blob (subset of the hits)
    persisted_unit_loads: int = 0
    persisted_outer_loads: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "unit_hits": self.unit_hits, "unit_misses": self.unit_misses,
            "outer_hits": self.outer_hits, "outer_misses": self.outer_misses,
            "persisted_unit_loads": self.persisted_unit_loads,
            "persisted_outer_loads": self.persisted_outer_loads,
        }


class GraphConstructionCache:
    """Caches skeletons and pragma-delta-keyed CDFGs across configurations.

    Graph entries are keyed by the *content fingerprint* of their function
    (:func:`ir_fingerprint`) plus the directive-slice key, so they are
    portable: two lowerings of the same source share entries within a
    process, and entries exported with :meth:`export_warm_state` can be
    re-imported by a different process (see ``core.serialization``).
    Skeletons and the analysis memo hold object references into the IR, so
    they stay keyed per function *object*; the stored strong reference
    guarantees an ``id()`` can never be recycled while its entry is alive
    (same pattern as ``make_batch``'s encoded cache).
    """

    def __init__(self):
        self._skeletons: dict[int, tuple[IRFunction, FunctionSkeleton]] = {}
        self._fingerprints: dict[int, tuple[IRFunction, str]] = {}
        self._units: dict[tuple[str, str], CachedUnit] = {}
        self._outer: dict[tuple[str, str], CDFG] = {}
        #: serialized graphs imported from a warm-cache blob, hydrated lazily
        #: on first use (entries for changed kernels simply never hydrate)
        self._persisted_units: dict[tuple[str, str], dict] = {}
        self._persisted_outer: dict[tuple[str, str], dict] = {}
        #: keys adopted from a warm-cache blob (hydrated or not); what
        #: ``export_warm_state(delta_only=True)`` subtracts, so a worker
        #: ships only the entries it built itself back to the coordinator
        self._imported_unit_keys: set[tuple[str, str]] = set()
        self._imported_outer_keys: set[tuple[str, str]] = set()
        #: per-(function, config key) classification / unroll-factor memo,
        #: shared between decomposition_signature and decompose.  Keyed by
        #: the *canonical* configuration key, so equivalent raw
        #: configurations share one classification pass
        self.analysis: dict[tuple[int, str], tuple] = {}
        #: per-(function, raw config key) effective-form memo (see
        #: :func:`repro.hls.directives.canonicalize_config`); populated by
        #: the decomposition entrypoints so each raw design is rewritten once
        self.canonical: dict[tuple[int, str], PragmaConfig] = {}
        self.stats = CacheStats()

    def library_token(self, library) -> str:
        """A key fragment identifying ``library`` by content digest (stable
        across processes; the digest itself is memoized on the library
        object, so no pinning is needed)."""
        return f"L{library.fingerprint()}"

    def fingerprint(self, function: IRFunction) -> str:
        """Content fingerprint of ``function``, memoized per object."""
        entry = self._fingerprints.get(id(function))
        if entry is not None and entry[0] is function:
            return entry[1]
        digest = ir_fingerprint(function)
        self._fingerprints[id(function)] = (function, digest)
        return digest

    # ------------------------------------------------------------------ #
    def skeleton(self, function: IRFunction) -> FunctionSkeleton:
        entry = self._skeletons.get(id(function))
        if entry is not None and entry[0] is function:
            return entry[1]
        skeleton = FunctionSkeleton(function)
        self._skeletons[id(function)] = (function, skeleton)
        return skeleton

    # ------------------------------------------------------------------ #
    def get_unit(self, function: IRFunction, key: str) -> CachedUnit | None:
        cache_key = (self.fingerprint(function), key)
        unit = self._units.get(cache_key)
        if unit is None and self._persisted_units:
            payload = self._persisted_units.pop(cache_key, None)
            if payload is not None:
                unit = CachedUnit(subgraph=cdfg_from_payload(payload))
                self._units[cache_key] = unit
                self.stats.persisted_unit_loads += 1
        if unit is not None:
            self.stats.unit_hits += 1
        return unit

    def put_unit(self, function: IRFunction, key: str, subgraph: CDFG) -> CachedUnit:
        self.stats.unit_misses += 1
        unit = CachedUnit(subgraph=subgraph)
        self._units[(self.fingerprint(function), key)] = unit
        return unit

    # ------------------------------------------------------------------ #
    def get_outer(
        self, function: IRFunction, key: str, *, copy: bool = True
    ) -> CDFG | None:
        """A fresh copy of the cached outer-graph template, if present.

        ``copy=False`` hands back the cached template itself for read-only
        consumers (the batched-inference sample templates extract features
        without ever annotating the graph), skipping the node-by-node copy.
        """
        cache_key = (self.fingerprint(function), key)
        template = self._outer.get(cache_key)
        if template is None and self._persisted_outer:
            payload = self._persisted_outer.pop(cache_key, None)
            if payload is not None:
                template = cdfg_from_payload(payload)
                self._outer[cache_key] = template
                self.stats.persisted_outer_loads += 1
        if template is None:
            return None
        self.stats.outer_hits += 1
        return template.copy() if copy else template

    def put_outer(
        self, function: IRFunction, key: str, graph: CDFG, *, copy: bool = True
    ) -> None:
        """Store a pristine outer-graph template.

        ``copy=True`` (the default) stores an independent copy so the caller
        may annotate the graph it built; read-only consumers pass
        ``copy=False`` and share the instance with the cache.
        """
        self.stats.outer_misses += 1
        self._outer[(self.fingerprint(function), key)] = (
            graph.copy() if copy else graph
        )

    # ------------------------------------------------------------------ #
    # warm-cache persistence
    # ------------------------------------------------------------------ #
    def export_warm_state(self, *, delta_only: bool = False) -> dict:
        """JSON-compatible snapshot of every pragma-delta graph entry.

        Still-unhydrated imported entries are passed through, so repeated
        save/load cycles never lose cache contents.  ``delta_only``
        restricts the snapshot to entries *this process built* (imported
        keys are subtracted) — the write-back payload a sharded worker
        ships to the coordinator, which already has everything imported.
        """
        units = [
            [fingerprint, key, cdfg_to_payload(unit.subgraph)]
            for (fingerprint, key), unit in self._units.items()
            if not (delta_only and (fingerprint, key) in self._imported_unit_keys)
        ]
        if not delta_only:
            units += [
                [fingerprint, key, payload]
                for (fingerprint, key), payload in self._persisted_units.items()
            ]
        outer = [
            [fingerprint, key, cdfg_to_payload(template)]
            for (fingerprint, key), template in self._outer.items()
            if not (delta_only and (fingerprint, key) in self._imported_outer_keys)
        ]
        if not delta_only:
            outer += [
                [fingerprint, key, payload]
                for (fingerprint, key), payload in self._persisted_outer.items()
            ]
        return {"units": units, "outer": outer}

    def import_warm_state(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`export_warm_state`.

        Graphs are kept serialized and hydrated on first use, so importing
        is cheap regardless of how many kernels the blob covers.  Imported
        keys are remembered so delta exports can subtract them.
        """
        for fingerprint, key, payload in state.get("units", ()):
            self._persisted_units[(fingerprint, key)] = payload
            self._imported_unit_keys.add((fingerprint, key))
        for fingerprint, key, payload in state.get("outer", ()):
            self._persisted_outer[(fingerprint, key)] = payload
            self._imported_outer_keys.add((fingerprint, key))

    def warm_state_sizes(self) -> dict[str, int]:
        """Entry counts of the persistable graph caches (live + unhydrated).

        The write-back merge reports its effect as before/after deltas of
        exactly these counts.
        """
        return {
            "units": len(self._units) + len(self._persisted_units),
            "outer": len(self._outer) + len(self._persisted_outer),
        }

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        self._skeletons.clear()
        self._fingerprints.clear()
        self._units.clear()
        self._outer.clear()
        self._persisted_units.clear()
        self._persisted_outer.clear()
        self._imported_unit_keys.clear()
        self._imported_outer_keys.clear()
        self.analysis.clear()
        self.canonical.clear()
        self.stats = CacheStats()


__all__ = [
    "FunctionSkeleton", "CachedUnit", "CacheStats", "GraphConstructionCache",
    "unit_cache_key", "outer_cache_key", "ir_fingerprint",
    "cdfg_to_payload", "cdfg_from_payload",
]
