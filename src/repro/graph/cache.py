"""Pragma-aware graph-construction caching for cross-config inference.

Design-space exploration evaluates the *same kernel* under many pragma
configurations.  Building the CDFG from scratch for every configuration
re-derives two kinds of work:

* **pragma-independent analysis** of the IR (loop nests, per-loop instruction
  lists, touched arrays, super-node boundary values, operator
  characterizations) — captured once per kernel in a
  :class:`FunctionSkeleton`;
* **pragma-dependent graphs** that coincide between configurations — two
  configurations that apply identical directives to a loop nest (and to the
  arrays it touches) produce byte-identical inner-loop subgraphs, and
  configurations that agree on unroll factors, array partitioning and the
  condense map produce identical outer graphs.  :class:`GraphConstructionCache`
  keys built graphs by exactly the directive slice they depend on, so only
  the unroll/partition *deltas* of a new configuration trigger construction.

Cached inner subgraphs are shared read-only between configurations; cached
outer graphs are stored as pristine templates and handed out as copies
because hierarchical inference annotates super nodes in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.pragmas import PragmaConfig
from repro.graph.cdfg import CDFG
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IRFunction, Loop


class FunctionSkeleton:
    """Pragma-independent analysis of one kernel, computed once.

    The :class:`~repro.graph.construction.GraphBuilder` consults the skeleton
    instead of re-walking the IR for every configuration: induction-variable
    ownership, per-loop instruction lists, touched arrays, the instruction-id
    sets that delimit a condensed loop and the externally-consumed values of
    each loop are all functions of the IR alone.
    """

    def __init__(self, function: IRFunction):
        self.function = function
        self.all_loops: list[Loop] = function.all_loops()
        self.loop_by_label: dict[str, Loop] = {
            loop.label: loop for loop in self.all_loops
        }
        # first loop wins for duplicated induction-variable names (sibling
        # nests reusing ``i``/``j``), matching the pre-existing linear scan
        self.var_to_loop: dict[str, str] = {}
        for loop in self.all_loops:
            self.var_to_loop.setdefault(loop.var, loop.label)
        self._body_instrs: dict[str, list[Instruction]] = {}
        self._memory_instrs: dict[str, list[Instruction]] = {}
        self._touched_arrays: dict[str, list[str]] = {}
        self._inner_ids: dict[str, set[int]] = {}
        self._external_uses: dict[str, list[int]] = {}
        self._nest_labels: dict[str, list[str]] = {}
        for loop in self.all_loops:
            body = list(loop.body.walk_instructions())
            self._body_instrs[loop.label] = body
            self._memory_instrs[loop.label] = [
                instr for instr in body
                if instr.opcode in (Opcode.LOAD, Opcode.STORE)
            ]
            self._touched_arrays[loop.label] = sorted(
                {instr.array for instr in body if instr.array}
            )
            inner = {instr.instr_id for instr in body}
            inner |= {instr.instr_id for instr in loop.header_instrs}
            inner |= {instr.instr_id for instr in loop.latch_instrs}
            self._inner_ids[loop.label] = inner
            external: set[int] = set()
            for instr in body:
                for operand in instr.value_operands:
                    if operand.instr_id not in inner:
                        external.add(operand.instr_id)
            self._external_uses[loop.label] = sorted(external)
            self._nest_labels[loop.label] = [loop.label] + [
                sub.label for sub in loop.all_sub_loops()
            ]
        #: operator characterizations keyed by ``(instr_id, id(library))``;
        #: the libraries are pinned so a recycled ``id`` cannot alias
        self._char_cache: dict[tuple[int, int], object] = {}
        self._char_libraries: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # per-loop lookups
    # ------------------------------------------------------------------ #
    def body_instructions(self, label: str) -> list[Instruction]:
        return self._body_instrs[label]

    def memory_instructions(self, label: str) -> list[Instruction]:
        return self._memory_instrs[label]

    def touched_arrays(self, label: str) -> list[str]:
        return self._touched_arrays[label]

    def inner_instr_ids(self, label: str) -> set[int]:
        return self._inner_ids[label]

    def external_uses(self, label: str) -> list[int]:
        return self._external_uses[label]

    def nest_labels(self, label: str) -> list[str]:
        return self._nest_labels[label]

    def characterize(self, instr: Instruction, library) -> object:
        key = (instr.instr_id, id(library))
        char = self._char_cache.get(key)
        if char is None:
            char = library.lookup_instr(instr)
            self._char_cache[key] = char
            self._char_libraries[id(library)] = library
        return char


# --------------------------------------------------------------------------- #
# cache keys
# --------------------------------------------------------------------------- #
def _loop_directive_key(config: PragmaConfig, label: str) -> str:
    d = config.loop(label)
    return f"{label}=P{int(d.pipeline)}:I{d.ii}:U{d.unroll_factor}:F{int(d.flatten)}"


def _array_directive_key(config: PragmaConfig, name: str) -> str:
    d = config.array(name)
    return f"{name}={d.partition_type.value}:f{d.factor}:d{d.dim}"


def unit_cache_key(
    skeleton: FunctionSkeleton,
    config: PragmaConfig,
    loop: Loop,
    pipelined: bool,
    flattened_levels: int,
    library_token: str = "",
    unroll_factors: dict[str, int] | None = None,
) -> str:
    """Directive slice an inner-loop subgraph (and its loop features) depend on.

    The subgraph of a maximal inner-hierarchy unit is fully determined by the
    directives applied to the loops of its own nest and to the arrays its body
    touches: units are maximal, so no ancestor is pipelined, and unroll
    factors never propagate downward from outside the nest.  Node features
    also depend on the operator library, identified by ``library_token``
    (see :meth:`GraphConstructionCache.library_token`).

    One subtlety: bank-connection analysis resolves induction-variable
    *names*, and sibling nests may reuse a name (``i``/``j``).  When a nest
    variable resolves to a loop outside the nest, that loop's effective
    unroll factor leaks into the subgraph's memory edges, so it is folded
    into the key.
    """
    nest = skeleton.nest_labels(loop.label)
    nest_set = set(nest)
    parts = [library_token, loop.label, "p" if pipelined else "np",
             str(flattened_levels)]
    for label in nest:
        parts.append(_loop_directive_key(config, label))
        var = skeleton.loop_by_label[label].var
        resolved = skeleton.var_to_loop.get(var, "")
        if resolved and resolved not in nest_set:
            factor = (unroll_factors or {}).get(resolved, 1)
            parts.append(f"x:{var}:{resolved}:{factor}")
    for name in skeleton.touched_arrays(loop.label):
        parts.append(_array_directive_key(config, name))
    return "|".join(parts)


def outer_cache_key(
    skeleton: FunctionSkeleton,
    config: PragmaConfig,
    condense: dict[str, bool],
    unroll_factors: dict[str, int],
    library_token: str = "",
) -> str:
    """Directive slice the condensed outer graph depends on.

    The outer graph is a function of the condense map (which loops collapse
    to super nodes and whether they are pipelined), the *effective* unroll
    factor of every non-condensed loop (replication and residual trip
    counts), and the partition directives of every function array
    (memory-port banks and bank-connection analysis).  Loops inside condensed
    nests never expand into the outer graph — their unroll factors only shape
    the inner subgraph — so they are deliberately excluded: that is what lets
    configurations differing only in inner-loop deltas share one outer
    template.
    """
    condensed_away: set[str] = set()
    for label in condense:
        condensed_away.update(skeleton.nest_labels(label))
    parts = [library_token]
    parts += [f"c:{label}:{int(flag)}" for label, flag in sorted(condense.items())]
    for label in sorted(skeleton.loop_by_label):
        if label in condensed_away:
            continue
        parts.append(f"u:{label}:{unroll_factors.get(label, 1)}")
        # symmetric to the unit-key collision handling: bank-connection
        # analysis resolves this loop's induction-variable *name* first-wins,
        # which may land on a condensed-away loop whose factor the key would
        # otherwise exclude
        var = skeleton.loop_by_label[label].var
        resolved = skeleton.var_to_loop.get(var, "")
        if resolved and resolved in condensed_away:
            parts.append(f"x:{var}:{resolved}:{unroll_factors.get(resolved, 1)}")
    parts += [
        _array_directive_key(config, name)
        for name in sorted(skeleton.function.arrays)
    ]
    return "|".join(parts)


# --------------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------------- #
@dataclass
class CachedUnit:
    """A cached inner-loop subgraph plus caller-stashed derived artifacts."""

    subgraph: CDFG
    extras: dict = field(default_factory=dict)


@dataclass
class CacheStats:
    unit_hits: int = 0
    unit_misses: int = 0
    outer_hits: int = 0
    outer_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "unit_hits": self.unit_hits, "unit_misses": self.unit_misses,
            "outer_hits": self.outer_hits, "outer_misses": self.outer_misses,
        }


class GraphConstructionCache:
    """Caches skeletons and pragma-delta-keyed CDFGs across configurations.

    Entries are keyed per function *object*; the stored strong reference
    guarantees an ``id()`` can never be recycled while its entry is alive
    (same pattern as ``make_batch``'s encoded cache).
    """

    def __init__(self):
        self._skeletons: dict[int, tuple[IRFunction, FunctionSkeleton]] = {}
        self._units: dict[tuple[int, str], CachedUnit] = {}
        self._outer: dict[tuple[int, str], CDFG] = {}
        self._libraries: dict[int, object] = {}
        #: per-(function, config key) classification / unroll-factor memo,
        #: shared between decomposition_signature and decompose
        self.analysis: dict[tuple[int, str], tuple] = {}
        self.stats = CacheStats()

    def library_token(self, library) -> str:
        """A key fragment identifying ``library``; the object is pinned so a
        recycled ``id`` can never alias entries built with another library."""
        self._libraries[id(library)] = library
        return f"L{id(library)}"

    # ------------------------------------------------------------------ #
    def skeleton(self, function: IRFunction) -> FunctionSkeleton:
        entry = self._skeletons.get(id(function))
        if entry is not None and entry[0] is function:
            return entry[1]
        skeleton = FunctionSkeleton(function)
        self._skeletons[id(function)] = (function, skeleton)
        return skeleton

    # ------------------------------------------------------------------ #
    def get_unit(self, function: IRFunction, key: str) -> CachedUnit | None:
        unit = self._units.get((id(function), key))
        if unit is not None:
            self.stats.unit_hits += 1
        return unit

    def put_unit(self, function: IRFunction, key: str, subgraph: CDFG) -> CachedUnit:
        self.stats.unit_misses += 1
        unit = CachedUnit(subgraph=subgraph)
        self._units[(id(function), key)] = unit
        return unit

    # ------------------------------------------------------------------ #
    def get_outer(self, function: IRFunction, key: str) -> CDFG | None:
        """A fresh copy of the cached outer-graph template, if present."""
        template = self._outer.get((id(function), key))
        if template is None:
            return None
        self.stats.outer_hits += 1
        return template.copy()

    def put_outer(self, function: IRFunction, key: str, graph: CDFG) -> None:
        """Store a pristine template copy (callers annotate graphs in place)."""
        self.stats.outer_misses += 1
        self._outer[(id(function), key)] = graph.copy()

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        self._skeletons.clear()
        self._units.clear()
        self._outer.clear()
        self._libraries.clear()
        self.analysis.clear()
        self.stats = CacheStats()


__all__ = [
    "FunctionSkeleton", "CachedUnit", "CacheStats", "GraphConstructionCache",
    "unit_cache_key", "outer_cache_key",
]
