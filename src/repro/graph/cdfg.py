"""Control and data flow graph (CDFG) data structure.

The CDFG is the input representation for every GNN in the project.  Nodes are
operations (plus the paper's two extensions: I/O *memory-port* nodes inserted
for array arguments, and *super nodes* that stand for already-predicted inner
loops during hierarchical modeling).  Edges carry a type: data flow, control
flow, or memory (port-to-access) edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import NamedTuple

import networkx as nx
import numpy as np

from repro.flags import reference_encoding_active


class NodeKind(Enum):
    """The three node categories used during hierarchical modeling."""

    OPERATION = "operation"
    MEMORY_PORT = "memory_port"
    SUPER_NODE = "super_node"


class EdgeKind(Enum):
    """Edge categories in the CDFG."""

    DATA = "data"
    CONTROL = "control"
    MEMORY = "memory"


#: Names of the per-node numerical features, in canonical order.  These are
#: exactly the Table II features of the paper (optype is handled separately
#: with a one-hot encoding).
NODE_FEATURE_NAMES = (
    "invocations",
    "in_degree",
    "out_degree",
    "cycles",
    "delay",
    "lut",
    "dsp",
    "ff",
    # derived: cycles x invocations — the total cycle "work" a node (or a
    # condensed super node) contributes over the whole execution.
    "work",
)


@dataclass
class CDFGNode:
    """A single CDFG node.

    ``optype`` is the string fed to the one-hot encoder (IR opcode value,
    ``"ioport"`` for memory ports, ``"super_p"``/``"super_np"`` for super
    nodes).  ``features`` maps :data:`NODE_FEATURE_NAMES` entries to values.
    """

    node_id: int
    kind: NodeKind = NodeKind.OPERATION
    optype: str = "add"
    dtype: str = "i32"
    loop_label: str = ""
    array: str = ""
    instr_id: int = -1
    replica: int = 0
    features: dict[str, float] = field(default_factory=dict)

    def feature_vector(self) -> np.ndarray:
        """Numerical feature vector in :data:`NODE_FEATURE_NAMES` order."""
        return np.array(
            [float(self.features.get(name, 0.0)) for name in NODE_FEATURE_NAMES],
            dtype=np.float64,
        )


class CDFGEdge(NamedTuple):
    """A directed edge between two CDFG nodes.

    A ``NamedTuple`` rather than a dataclass: graph construction appends
    hundreds of thousands of edges on the DSE hot path and tuple creation is
    several times cheaper while staying immutable and field-addressable.
    """

    src: int
    dst: int
    kind: EdgeKind = EdgeKind.DATA


@dataclass
class LoopLevelFeatures:
    """Loop-level features attached to a (sub)graph (Section III-B.2).

    ``ii`` is the initiation-interval lower bound computed analytically,
    ``tripcount`` the (post-transform) trip count, ``pipelined`` whether loop
    pipelining applies, ``unroll_factor`` the residual unroll factor after
    graph replication and ``depth`` the number of loop levels condensed into
    this graph (flattened nests have depth > 1).
    """

    ii: float = 1.0
    tripcount: float = 1.0
    pipelined: bool = False
    unroll_factor: float = 1.0
    depth: float = 1.0

    def as_vector(self) -> np.ndarray:
        return np.array(
            [self.ii, self.tripcount, 1.0 if self.pipelined else 0.0,
             self.unroll_factor, self.depth],
            dtype=np.float64,
        )

    @staticmethod
    def feature_names() -> tuple[str, ...]:
        return ("ii", "tripcount", "pipelined", "unroll_factor", "depth")


class CDFG:
    """A control and data flow graph with typed nodes and edges.

    Edges are stored **columnar** (parallel ``edge_src``/``edge_dst``/
    ``edge_kinds`` lists): the DSE hot path appends and remaps hundreds of
    thousands of edges per sweep, and three flat lists turn replica replay,
    ``edge_index`` and ``degree_arrays`` into C-speed bulk operations.  The
    :attr:`edges` property materializes the familiar :class:`CDFGEdge` view
    on demand for analysis code and tests.
    """

    def __init__(self, name: str = "cdfg"):
        self.name = name
        self.nodes: list[CDFGNode] = []
        self.edge_src: list[int] = []
        self.edge_dst: list[int] = []
        self.edge_kinds: list[EdgeKind] = []
        self._edge_view: list[CDFGEdge] = []
        self.loop_features: LoopLevelFeatures = LoopLevelFeatures()
        #: free-form metadata (kernel name, config description, loop label...)
        self.metadata: dict[str, str] = {}

    @property
    def edges(self) -> list[CDFGEdge]:
        """Edge-object view of the columnar store (rebuilt when stale)."""
        view = self._edge_view
        if len(view) != len(self.edge_src):
            view = self._edge_view = [
                CDFGEdge(src, dst, kind)
                for src, dst, kind in zip(
                    self.edge_src, self.edge_dst, self.edge_kinds
                )
            ]
        return view

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        optype: str,
        kind: NodeKind = NodeKind.OPERATION,
        dtype: str = "i32",
        loop_label: str = "",
        array: str = "",
        instr_id: int = -1,
        replica: int = 0,
        features: dict[str, float] | None = None,
    ) -> CDFGNode:
        node = CDFGNode(
            node_id=len(self.nodes), kind=kind, optype=optype, dtype=dtype,
            loop_label=loop_label, array=array, instr_id=instr_id,
            replica=replica, features=dict(features or {}),
        )
        self.nodes.append(node)
        return node

    def add_edge(self, src: int, dst: int, kind: EdgeKind = EdgeKind.DATA) -> None:
        if src == dst:
            return
        if not (0 <= src < len(self.nodes)) or not (0 <= dst < len(self.nodes)):
            raise ValueError(
                f"edge ({src}, {dst}) references nodes outside the graph "
                f"(size {len(self.nodes)})"
            )
        self.edge_src.append(src)
        self.edge_dst.append(dst)
        self.edge_kinds.append(kind)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def in_degree(self, node_id: int) -> int:
        return self.edge_dst.count(node_id)

    def out_degree(self, node_id: int) -> int:
        return self.edge_src.count(node_id)

    def degree_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(in_degree, out_degree) arrays for all nodes, computed in one pass."""
        if not self.edge_src:
            zeros = np.zeros(self.num_nodes, dtype=np.int64)
            return zeros, zeros.copy()
        in_degree = np.bincount(
            np.array(self.edge_dst, dtype=np.int64), minlength=self.num_nodes
        )
        out_degree = np.bincount(
            np.array(self.edge_src, dtype=np.int64), minlength=self.num_nodes
        )
        return in_degree, out_degree

    def nodes_of_kind(self, kind: NodeKind) -> list[CDFGNode]:
        return [node for node in self.nodes if node.kind is kind]

    def nodes_of_optype(self, optype: str) -> list[CDFGNode]:
        return [node for node in self.nodes if node.optype == optype]

    def memory_port_nodes(self, array: str | None = None) -> list[CDFGNode]:
        ports = self.nodes_of_kind(NodeKind.MEMORY_PORT)
        if array is None:
            return ports
        return [node for node in ports if node.array == array]

    def edge_index(self) -> np.ndarray:
        """Edge list as a (2, E) integer array (PyG-style ``edge_index``)."""
        if not self.edge_src:
            return np.zeros((2, 0), dtype=np.int64)
        return np.array([self.edge_src, self.edge_dst], dtype=np.int64)

    def edge_kind_codes(self) -> np.ndarray:
        """Integer code per edge (0=data, 1=control, 2=memory)."""
        codes = {EdgeKind.DATA: 0, EdgeKind.CONTROL: 1, EdgeKind.MEMORY: 2}
        return np.array([codes[kind] for kind in self.edge_kinds], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.MultiDiGraph:
        """Convert to a networkx graph (used for analysis and visualisation)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(
                node.node_id, optype=node.optype, kind=node.kind.value,
                loop=node.loop_label, array=node.array, **node.features,
            )
        for src, dst, kind in zip(self.edge_src, self.edge_dst, self.edge_kinds):
            graph.add_edge(src, dst, kind=kind.value)
        return graph

    def subgraph(self, node_ids: list[int], name: str = "") -> "CDFG":
        """Induced subgraph over ``node_ids`` (node ids are re-numbered)."""
        keep = {old: new for new, old in enumerate(node_ids)}
        sub = CDFG(name=name or f"{self.name}.sub")
        for old_id in node_ids:
            source = self.nodes[old_id]
            sub.nodes.append(
                CDFGNode(
                    node_id=keep[old_id], kind=source.kind, optype=source.optype,
                    dtype=source.dtype, loop_label=source.loop_label,
                    array=source.array, instr_id=source.instr_id,
                    replica=source.replica, features=dict(source.features),
                )
            )
        for src, dst, kind in zip(self.edge_src, self.edge_dst, self.edge_kinds):
            if src in keep and dst in keep:
                sub.edge_src.append(keep[src])
                sub.edge_dst.append(keep[dst])
                sub.edge_kinds.append(kind)
        sub.loop_features = self.loop_features
        sub.metadata = dict(self.metadata)
        return sub

    def copy(self) -> "CDFG":
        """An independent copy sharing no mutable state with the original.

        The columnar edge store is copied shallowly (ints and enum members
        are immutable); node feature dicts are duplicated because callers
        annotate them in place (e.g. super-node QoR annotation).
        """
        clone = CDFG(name=self.name)
        new_node = CDFGNode.__new__
        nodes = clone.nodes
        for node in self.nodes:
            fields = dict(node.__dict__)
            fields["features"] = dict(fields["features"])
            duplicate = new_node(CDFGNode)
            duplicate.__dict__ = fields
            nodes.append(duplicate)
        clone.edge_src = list(self.edge_src)
        clone.edge_dst = list(self.edge_dst)
        clone.edge_kinds = list(self.edge_kinds)
        clone.loop_features = self.loop_features
        clone.metadata = dict(self.metadata)
        return clone

    def feature_matrix(self) -> np.ndarray:
        """(N, len(NODE_FEATURE_NAMES)) matrix of numerical node features."""
        if not self.nodes:
            return np.zeros((0, len(NODE_FEATURE_NAMES)))
        names = NODE_FEATURE_NAMES
        if reference_encoding_active():
            # retained reference path: one list + row assignment per node
            matrix = np.empty((len(self.nodes), len(names)), dtype=np.float64)
            for row, node in enumerate(self.nodes):
                get = node.features.get
                matrix[row] = [get(name, 0.0) for name in names]
            return matrix
        # one flat pass and a single list->array conversion for the whole
        # graph: no per-node list objects or row-wise assignments
        flat = [
            node.features.get(name, 0.0)
            for node in self.nodes for name in names
        ]
        return np.asarray(flat, dtype=np.float64).reshape(
            len(self.nodes), len(names)
        )

    def optype_list(self) -> list[str]:
        return [node.optype for node in self.nodes]

    def summary(self) -> dict[str, int]:
        """Node/edge counts by category (handy for tests and logging)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "operation_nodes": len(self.nodes_of_kind(NodeKind.OPERATION)),
            "memory_ports": len(self.nodes_of_kind(NodeKind.MEMORY_PORT)),
            "super_nodes": len(self.nodes_of_kind(NodeKind.SUPER_NODE)),
            "data_edges": self.edge_kinds.count(EdgeKind.DATA),
            "control_edges": self.edge_kinds.count(EdgeKind.CONTROL),
            "memory_edges": self.edge_kinds.count(EdgeKind.MEMORY),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CDFG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"


__all__ = [
    "CDFG", "CDFGNode", "CDFGEdge", "NodeKind", "EdgeKind",
    "LoopLevelFeatures", "NODE_FEATURE_NAMES",
]
