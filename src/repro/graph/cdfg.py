"""Control and data flow graph (CDFG) data structure.

The CDFG is the input representation for every GNN in the project.  Nodes are
operations (plus the paper's two extensions: I/O *memory-port* nodes inserted
for array arguments, and *super nodes* that stand for already-predicted inner
loops during hierarchical modeling).  Edges carry a type: data flow, control
flow, or memory (port-to-access) edges.

Storage is **columnar end to end**: edges live in parallel ``edge_src`` /
``edge_dst`` / ``edge_kinds`` lists, the Table II numerical node features
live in one growable ``(N, 9)`` float64 block (:class:`_FeatureColumns`)
whose rows are indexed by node id, and optypes are interned into a per-graph
code column.  ``node.features`` stays a dict-like object — a
:class:`_FeatureRow` view over the node's matrix row — so annotation code and
tests keep their mapping idiom, while ``feature_matrix()`` is a zero-copy
view, replica replay copies feature rows with one slice assignment, and
``copy()``/``subgraph()`` move features as single array operations.  The
pre-columnar representation (a real dict per node) is retained for the
differential guards: graphs built under
:func:`repro.flags.reference_encoding` or
:func:`repro.graph.construction.naive_emission` store their features in
per-node dicts exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import NamedTuple

import networkx as nx
import numpy as np

from repro.flags import reference_encoding_active


class NodeKind(Enum):
    """The three node categories used during hierarchical modeling."""

    OPERATION = "operation"
    MEMORY_PORT = "memory_port"
    SUPER_NODE = "super_node"


class EdgeKind(Enum):
    """Edge categories in the CDFG."""

    DATA = "data"
    CONTROL = "control"
    MEMORY = "memory"


#: Names of the per-node numerical features, in canonical order.  These are
#: exactly the Table II features of the paper (optype is handled separately
#: with a one-hot encoding).
NODE_FEATURE_NAMES = (
    "invocations",
    "in_degree",
    "out_degree",
    "cycles",
    "delay",
    "lut",
    "dsp",
    "ff",
    # derived: cycles x invocations — the total cycle "work" a node (or a
    # condensed super node) contributes over the whole execution.
    "work",
)

#: column index of each Table II feature inside the columnar block
FEATURE_COLUMN = {name: column for column, name in enumerate(NODE_FEATURE_NAMES)}

_NUM_FEATURES = len(NODE_FEATURE_NAMES)


class _FeatureColumns:
    """Growable ``(N, len(NODE_FEATURE_NAMES))`` float64 feature block.

    Row ``i`` holds node ``i``'s numerical features; unset features are 0.0
    (matching the dict path's ``get(name, 0.0)`` semantics).  Appends grow
    the backing matrix geometrically, replica replay extends it with one
    slice copy, and :meth:`view` hands out the live ``[:count]`` window
    without copying.
    """

    __slots__ = ("matrix", "count")

    def __init__(self, capacity: int = 64):
        self.matrix = np.zeros((max(1, capacity), _NUM_FEATURES), dtype=np.float64)
        self.count = 0

    def _reserve(self, extra: int) -> None:
        needed = self.count + extra
        capacity = self.matrix.shape[0]
        if needed <= capacity:
            return
        # copy()/hydration install exact-size (possibly empty) buffers, so
        # growth must restart from a non-zero capacity
        capacity = max(1, capacity)
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((capacity, _NUM_FEATURES), dtype=np.float64)
        grown[: self.count] = self.matrix[: self.count]
        self.matrix = grown

    def append_row(self) -> int:
        """Add one zeroed row; returns its index."""
        self._reserve(1)
        row = self.count
        self.count = row + 1
        return row

    def append_block(self, start: int, stop: int) -> None:
        """Bulk-append a copy of rows ``[start, stop)`` (replica replay)."""
        span = stop - start
        if span <= 0:
            return
        self._reserve(span)
        count = self.count
        self.matrix[count:count + span] = self.matrix[start:stop]
        self.count = count + span

    def view(self) -> np.ndarray:
        """The live ``(count, 9)`` window of the block (zero-copy, read-only).

        The returned slice is marked non-writeable: consumers share the
        backing block, so a stray in-place edit through one view would
        silently corrupt every other consumer's features.  Mutation goes
        through :class:`_FeatureRow` (which writes the backing ``matrix``
        directly) or an explicit :meth:`copy`.
        """
        window = self.matrix[: self.count]
        window.setflags(write=False)
        return window

    def copy(self) -> "_FeatureColumns":
        """An independent store holding a copy of the live rows."""
        clone = _FeatureColumns.__new__(_FeatureColumns)
        clone.matrix = self.matrix[: self.count].copy()
        clone.count = self.count
        return clone


class _EdgeColumns:
    """Growable int64 ``src``/``dst`` edge columns.

    Keeping the endpoints as numpy arrays (rather than Python lists) makes
    ``edge_index``, ``degree_arrays`` and the replica-replay edge copies
    zero-conversion bulk operations; edge *kinds* stay a Python list of
    :class:`EdgeKind` members (cheap to append, identity-comparable, and
    iterated by analysis code).
    """

    __slots__ = ("src", "dst", "count")

    def __init__(self, capacity: int = 64):
        self.src = np.zeros(max(1, capacity), dtype=np.int64)
        self.dst = np.zeros(max(1, capacity), dtype=np.int64)
        self.count = 0

    def _reserve(self, extra: int) -> None:
        needed = self.count + extra
        capacity = self.src.shape[0]
        if needed <= capacity:
            return
        # copy()/hydration install exact-size (possibly empty) buffers, so
        # growth must restart from a non-zero capacity
        capacity = max(1, capacity)
        while capacity < needed:
            capacity *= 2
        src = np.zeros(capacity, dtype=np.int64)
        dst = np.zeros(capacity, dtype=np.int64)
        src[: self.count] = self.src[: self.count]
        dst[: self.count] = self.dst[: self.count]
        self.src = src
        self.dst = dst

    def append(self, src: int, dst: int) -> None:
        """Add one edge's endpoints."""
        self._reserve(1)
        count = self.count
        self.src[count] = src
        self.dst[count] = dst
        self.count = count + 1

    def extend(self, src, dst) -> None:
        """Bulk-append endpoint arrays (or sequences) of equal length."""
        src = np.asarray(src, dtype=np.int64)
        length = src.shape[0]
        if not length:
            return
        self._reserve(length)
        count = self.count
        self.src[count:count + length] = src
        self.dst[count:count + length] = dst
        self.count = count + length

    def views(self) -> tuple[np.ndarray, np.ndarray]:
        """Live zero-copy ``(src, dst)`` windows (read-only)."""
        src = self.src[: self.count]
        dst = self.dst[: self.count]
        src.setflags(write=False)
        dst.setflags(write=False)
        return src, dst

    def copy(self) -> "_EdgeColumns":
        """An independent store holding a copy of the live edges."""
        clone = _EdgeColumns.__new__(_EdgeColumns)
        clone.src = self.src[: self.count].copy()
        clone.dst = self.dst[: self.count].copy()
        clone.count = self.count
        return clone


class _FeatureRow:
    """Dict-like view of one node's row in the columnar feature block.

    Supports the mapping idiom annotation code uses (``[]``, ``get``,
    ``update``, iteration, ``**`` unpacking); writes land directly in the
    shared matrix.  Only :data:`NODE_FEATURE_NAMES` entries exist — missing
    names read as their defaults and cannot be assigned.
    """

    __slots__ = ("_store", "_row")

    def __init__(self, store: _FeatureColumns, row: int):
        self._store = store
        self._row = row

    def __getitem__(self, name: str) -> float:
        column = FEATURE_COLUMN.get(name)
        if column is None:
            raise KeyError(name)
        return float(self._store.matrix[self._row, column])

    def __setitem__(self, name: str, value: float) -> None:
        column = FEATURE_COLUMN.get(name)
        if column is None:
            raise KeyError(
                f"unknown node feature {name!r}; columnar CDFGs store exactly "
                f"{NODE_FEATURE_NAMES}"
            )
        self._store.matrix[self._row, column] = value

    def get(self, name: str, default: float = 0.0) -> float:
        column = FEATURE_COLUMN.get(name)
        if column is None:
            return default
        return float(self._store.matrix[self._row, column])

    def update(self, other=(), **values) -> None:
        """Assign several features at once (mapping, pairs or kwargs)."""
        row = self._store.matrix[self._row]
        if other:
            items = other.items() if hasattr(other, "items") else other
            for name, value in items:
                row[FEATURE_COLUMN[name]] = value
        for name, value in values.items():
            row[FEATURE_COLUMN[name]] = value

    def keys(self):
        """Feature names, in canonical column order."""
        return NODE_FEATURE_NAMES

    def values(self) -> list[float]:
        """Feature values, aligned with :meth:`keys`."""
        return self._store.matrix[self._row].tolist()

    def items(self):
        """``(name, value)`` pairs in canonical column order."""
        return list(zip(NODE_FEATURE_NAMES, self._store.matrix[self._row].tolist()))

    def as_dict(self) -> dict[str, float]:
        """A plain-dict snapshot of the row."""
        return dict(self.items())

    def __contains__(self, name: str) -> bool:
        return name in FEATURE_COLUMN

    def __iter__(self):
        return iter(NODE_FEATURE_NAMES)

    def __len__(self) -> int:
        return _NUM_FEATURES

    def __eq__(self, other) -> bool:
        if isinstance(other, _FeatureRow):
            return bool(
                (self._store.matrix[self._row] == other._store.matrix[other._row])
                .all()
            )
        if isinstance(other, dict):
            return self.as_dict() == {
                name: float(value) for name, value in other.items()
            } | {
                name: 0.0 for name in NODE_FEATURE_NAMES if name not in other
            }
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_FeatureRow({self.as_dict()!r})"


@dataclass
class CDFGNode:
    """A single CDFG node.

    ``optype`` is the string fed to the one-hot encoder (IR opcode value,
    ``"ioport"`` for memory ports, ``"super_p"``/``"super_np"`` for super
    nodes).  ``features`` maps :data:`NODE_FEATURE_NAMES` entries to values —
    a plain dict on the retained reference path, a :class:`_FeatureRow` view
    into the graph's columnar feature block otherwise.
    """

    node_id: int
    kind: NodeKind = NodeKind.OPERATION
    optype: str = "add"
    dtype: str = "i32"
    loop_label: str = ""
    array: str = ""
    instr_id: int = -1
    replica: int = 0
    features: "dict[str, float] | _FeatureRow" = field(default_factory=dict)

    def feature_vector(self) -> np.ndarray:
        """Numerical feature vector in :data:`NODE_FEATURE_NAMES` order."""
        features = self.features
        if type(features) is _FeatureRow:
            return features._store.matrix[features._row].copy()
        return np.array(
            [float(features.get(name, 0.0)) for name in NODE_FEATURE_NAMES],
            dtype=np.float64,
        )


class CDFGEdge(NamedTuple):
    """A directed edge between two CDFG nodes.

    A ``NamedTuple`` rather than a dataclass: graph construction appends
    hundreds of thousands of edges on the DSE hot path and tuple creation is
    several times cheaper while staying immutable and field-addressable.
    """

    src: int
    dst: int
    kind: EdgeKind = EdgeKind.DATA


@dataclass
class LoopLevelFeatures:
    """Loop-level features attached to a (sub)graph (Section III-B.2).

    ``ii`` is the initiation-interval lower bound computed analytically,
    ``tripcount`` the (post-transform) trip count, ``pipelined`` whether loop
    pipelining applies, ``unroll_factor`` the residual unroll factor after
    graph replication and ``depth`` the number of loop levels condensed into
    this graph (flattened nests have depth > 1).
    """

    ii: float = 1.0
    tripcount: float = 1.0
    pipelined: bool = False
    unroll_factor: float = 1.0
    depth: float = 1.0

    def as_vector(self) -> np.ndarray:
        return np.array(
            [self.ii, self.tripcount, 1.0 if self.pipelined else 0.0,
             self.unroll_factor, self.depth],
            dtype=np.float64,
        )

    @staticmethod
    def feature_names() -> tuple[str, ...]:
        return ("ii", "tripcount", "pipelined", "unroll_factor", "depth")


class CDFG:
    """A control and data flow graph with typed nodes and edges.

    Storage is **columnar**: edges live in parallel ``edge_src`` /
    ``edge_dst`` / ``edge_kinds`` lists, node identity attributes in
    parallel per-attribute lists (``node_kinds``, ``node_dtypes``,
    ``node_loop_labels``, ``node_arrays``, ``node_instr_ids``,
    ``node_replicas`` plus interned ``optype_codes``), and numerical
    features in the :class:`_FeatureColumns` block.  The DSE hot path
    appends and remaps hundreds of thousands of nodes/edges per sweep, and
    flat columns turn replica replay, ``edge_index``, ``feature_matrix``
    and ``degree_arrays`` into C-speed bulk operations with no per-node
    Python objects.

    The familiar object views are materialized lazily: :attr:`nodes` builds
    :class:`CDFGNode` instances (whose ``features`` are row views into the
    feature block) on first access, :attr:`edges` the :class:`CDFGEdge`
    list.  Treat materialized node identity attributes as read-only — the
    columns are authoritative; ``features`` writes go straight to the
    shared block either way.
    """

    def __init__(self, name: str = "cdfg", *, columnar: bool | None = None):
        self.name = name
        self._edges = _EdgeColumns()
        self.edge_kinds: list[EdgeKind] = []
        self._edge_view: list[CDFGEdge] = []
        self._edge_index_cache: np.ndarray | None = None
        self.loop_features: LoopLevelFeatures = LoopLevelFeatures()
        #: free-form metadata (kernel name, config description, loop label...)
        self.metadata: dict[str, str] = {}
        #: columnar node-feature block (None on the retained dict path)
        if columnar is None:
            columnar = not reference_encoding_active()
        self.feat: _FeatureColumns | None = _FeatureColumns() if columnar else None
        #: per-graph optype interning: code per node + the code -> string table
        self.optype_codes: list[int] = []
        self._optype_index: dict[str, int] = {}
        self.optype_table: list[str] = []
        self._optype_list_cache: list[str] | None = None
        #: parallel node attribute columns (one entry per node)
        self.node_kinds: list[NodeKind] = []
        self.node_dtypes: list[str] = []
        self.node_loop_labels: list[str] = []
        self.node_arrays: list[str] = []
        self.node_instr_ids: list[int] = []
        self.node_replicas: list[int] = []
        #: eagerly-created prefix of the node-object view (always complete
        #: on the dict path; on the columnar path replica replay leaves a
        #: tail that only materializes if someone asks for `nodes`)
        self._materialized: list[CDFGNode] = []

    @property
    def columnar(self) -> bool:
        """Whether node features live in the columnar block."""
        return self.feat is not None

    def intern_optype(self, optype: str) -> int:
        """The per-graph integer code of ``optype`` (interned on first use)."""
        code = self._optype_index.get(optype)
        if code is None:
            code = len(self.optype_table)
            self._optype_index[optype] = code
            self.optype_table.append(optype)
        return code

    @property
    def nodes(self) -> list[CDFGNode]:
        """Node-object view of the columns (tail materialized when stale)."""
        nodes = self._materialized
        total = len(self.node_kinds)
        if len(nodes) != total:
            store = self.feat
            table = self.optype_table
            codes = self.optype_codes
            kinds = self.node_kinds
            dtypes = self.node_dtypes
            labels = self.node_loop_labels
            arrays = self.node_arrays
            instr_ids = self.node_instr_ids
            replicas = self.node_replicas
            for index in range(len(nodes), total):
                nodes.append(CDFGNode(
                    node_id=index, kind=kinds[index],
                    optype=table[codes[index]], dtype=dtypes[index],
                    loop_label=labels[index], array=arrays[index],
                    instr_id=instr_ids[index], replica=replicas[index],
                    features=_FeatureRow(store, index),
                ))
        return nodes

    @property
    def edge_src(self) -> np.ndarray:
        """Live zero-copy int64 view of the edge source column (read-only)."""
        view = self._edges.src[: self._edges.count]
        view.setflags(write=False)
        return view

    @property
    def edge_dst(self) -> np.ndarray:
        """Live zero-copy int64 view of the edge destination column
        (read-only)."""
        view = self._edges.dst[: self._edges.count]
        view.setflags(write=False)
        return view

    @property
    def edges(self) -> list[CDFGEdge]:
        """Edge-object view of the columnar store (rebuilt when stale)."""
        view = self._edge_view
        if len(view) != self._edges.count:
            view = self._edge_view = [
                CDFGEdge(int(src), int(dst), kind)
                for src, dst, kind in zip(
                    *self._edges.views(), self.edge_kinds
                )
            ]
        return view

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        optype: str,
        kind: NodeKind = NodeKind.OPERATION,
        dtype: str = "i32",
        loop_label: str = "",
        array: str = "",
        instr_id: int = -1,
        replica: int = 0,
        features: dict[str, float] | None = None,
    ) -> CDFGNode:
        materialized = self._materialized
        if len(materialized) != len(self.node_kinds):
            materialized = self.nodes  # close a pending replica tail first
        node_id = len(self.node_kinds)
        self.optype_codes.append(self.intern_optype(optype))
        self.node_kinds.append(kind)
        self.node_dtypes.append(dtype)
        self.node_loop_labels.append(loop_label)
        self.node_arrays.append(array)
        self.node_instr_ids.append(instr_id)
        self.node_replicas.append(replica)
        store = self.feat
        if store is None:
            node_features: dict[str, float] | _FeatureRow = dict(features or {})
        else:
            row = store.append_row()
            node_features = _FeatureRow(store, row)
            if features:
                node_features.update(features)
        node = CDFGNode(
            node_id=node_id, kind=kind, optype=optype, dtype=dtype,
            loop_label=loop_label, array=array, instr_id=instr_id,
            replica=replica, features=node_features,
        )
        materialized.append(node)
        return node

    def append_node(
        self,
        optype: str,
        kind: NodeKind = NodeKind.OPERATION,
        dtype: str = "i32",
        loop_label: str = "",
        array: str = "",
        instr_id: int = -1,
        replica: int = 0,
    ) -> int:
        """Columns-only node append: returns the node id, creates no object.

        The emission hot path uses this instead of :meth:`add_node` — node
        attributes go straight into the columns (and a zeroed feature row
        into the block) and the object view stays unmaterialized until
        someone asks for :attr:`nodes`.
        """
        node_id = len(self.node_kinds)
        self.optype_codes.append(self.intern_optype(optype))
        self.node_kinds.append(kind)
        self.node_dtypes.append(dtype)
        self.node_loop_labels.append(loop_label)
        self.node_arrays.append(array)
        self.node_instr_ids.append(instr_id)
        self.node_replicas.append(replica)
        if self.feat is not None:
            self.feat.append_row()
        return node_id

    def extend_replica_span(self, start: int, stop: int) -> None:
        """Bulk-append copies of nodes ``[start, stop)`` (replica replay).

        Every node column — identity attributes, optype codes and, on the
        columnar path, the feature rows — is extended with one C-level slice
        copy; **no node objects are created** (the object view materializes
        lazily if ever requested).  The caller rewrites the replica-
        dependent pieces (``node_replicas`` entries) afterwards.
        """
        self.optype_codes.extend(self.optype_codes[start:stop])
        self.node_kinds.extend(self.node_kinds[start:stop])
        self.node_dtypes.extend(self.node_dtypes[start:stop])
        self.node_loop_labels.extend(self.node_loop_labels[start:stop])
        self.node_arrays.extend(self.node_arrays[start:stop])
        self.node_instr_ids.extend(self.node_instr_ids[start:stop])
        self.node_replicas.extend(self.node_replicas[start:stop])
        if self.feat is not None:
            self.feat.append_block(start, stop)

    def add_edge(self, src: int, dst: int, kind: EdgeKind = EdgeKind.DATA) -> None:
        if src == dst:
            return
        num_nodes = len(self.node_kinds)
        if not (0 <= src < num_nodes) or not (0 <= dst < num_nodes):
            raise ValueError(
                f"edge ({src}, {dst}) references nodes outside the graph "
                f"(size {num_nodes})"
            )
        self._edges.append(src, dst)
        self.edge_kinds.append(kind)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.node_kinds)

    @property
    def num_edges(self) -> int:
        return self._edges.count

    def in_degree(self, node_id: int) -> int:
        return int((self.edge_dst == node_id).sum())

    def out_degree(self, node_id: int) -> int:
        return int((self.edge_src == node_id).sum())

    def degree_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(in_degree, out_degree) arrays for all nodes, computed in one pass."""
        if not self._edges.count:
            zeros = np.zeros(self.num_nodes, dtype=np.int64)
            return zeros, zeros.copy()
        src, dst = self._edges.views()
        in_degree = np.bincount(dst, minlength=self.num_nodes)
        out_degree = np.bincount(src, minlength=self.num_nodes)
        return in_degree, out_degree

    def nodes_of_kind(self, kind: NodeKind) -> list[CDFGNode]:
        return [node for node in self.nodes if node.kind is kind]

    def nodes_of_optype(self, optype: str) -> list[CDFGNode]:
        return [node for node in self.nodes if node.optype == optype]

    def memory_port_nodes(self, array: str | None = None) -> list[CDFGNode]:
        ports = self.nodes_of_kind(NodeKind.MEMORY_PORT)
        if array is None:
            return ports
        return [node for node in ports if node.array == array]

    def edge_index(self) -> np.ndarray:
        """Edge list as a (2, E) integer array (PyG-style ``edge_index``).

        Memoized per edge count: repeated calls return the **same** array
        object, which lets identity-keyed consumers (the message-passing
        edge cache, sample templates) share downstream memos.  The array is
        marked non-writeable — a mutation would desynchronise every memo
        keyed on its identity.
        """
        cached = self._edge_index_cache
        count = self._edges.count
        if cached is not None and cached.shape[1] == count:
            return cached
        if not count:
            cached = np.zeros((2, 0), dtype=np.int64)
        else:
            cached = np.empty((2, count), dtype=np.int64)
            cached[0] = self._edges.src[:count]
            cached[1] = self._edges.dst[:count]
        cached.setflags(write=False)
        self._edge_index_cache = cached
        return cached

    def edge_kind_codes(self) -> np.ndarray:
        """Integer code per edge (0=data, 1=control, 2=memory)."""
        codes = {EdgeKind.DATA: 0, EdgeKind.CONTROL: 1, EdgeKind.MEMORY: 2}
        return np.array([codes[kind] for kind in self.edge_kinds], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.MultiDiGraph:
        """Convert to a networkx graph (used for analysis and visualisation)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(
                node.node_id, optype=node.optype, kind=node.kind.value,
                loop=node.loop_label, array=node.array, **node.features,
            )
        for src, dst, kind in zip(self.edge_src, self.edge_dst, self.edge_kinds):
            graph.add_edge(src, dst, kind=kind.value)
        return graph

    def subgraph(self, node_ids: list[int], name: str = "") -> "CDFG":
        """Induced subgraph over ``node_ids`` (node ids are re-numbered)."""
        keep = {old: new for new, old in enumerate(node_ids)}
        sub = CDFG(name=name or f"{self.name}.sub", columnar=self.columnar)
        store = sub.feat
        if store is not None and node_ids:
            # one fancy-indexed copy instead of per-node feature transfers
            store.matrix = self.feature_matrix()[
                np.asarray(node_ids, dtype=np.int64)
            ].copy()
            store.count = len(node_ids)
        table = self.optype_table
        for old_id in node_ids:
            sub.optype_codes.append(
                sub.intern_optype(table[self.optype_codes[old_id]])
            )
            sub.node_kinds.append(self.node_kinds[old_id])
            sub.node_dtypes.append(self.node_dtypes[old_id])
            sub.node_loop_labels.append(self.node_loop_labels[old_id])
            sub.node_arrays.append(self.node_arrays[old_id])
            sub.node_instr_ids.append(self.node_instr_ids[old_id])
            sub.node_replicas.append(self.node_replicas[old_id])
        if store is None:
            # dict path: eagerly clone the node objects with their dicts
            for old_id in node_ids:
                source = self.nodes[old_id]
                sub._materialized.append(
                    CDFGNode(
                        node_id=keep[old_id], kind=source.kind,
                        optype=source.optype, dtype=source.dtype,
                        loop_label=source.loop_label, array=source.array,
                        instr_id=source.instr_id, replica=source.replica,
                        features=dict(source.features),
                    )
                )
        for src, dst, kind in zip(self.edge_src, self.edge_dst, self.edge_kinds):
            src = int(src)
            dst = int(dst)
            if src in keep and dst in keep:
                sub._edges.append(keep[src], keep[dst])
                sub.edge_kinds.append(kind)
        sub.loop_features = self.loop_features
        sub.metadata = dict(self.metadata)
        return sub

    def _copy_columns_into(self, clone: "CDFG") -> None:
        """Copy every node/edge column of ``self`` into ``clone``."""
        clone.optype_codes = list(self.optype_codes)
        clone.optype_table = list(self.optype_table)
        clone._optype_index = dict(self._optype_index)
        clone.node_kinds = list(self.node_kinds)
        clone.node_dtypes = list(self.node_dtypes)
        clone.node_loop_labels = list(self.node_loop_labels)
        clone.node_arrays = list(self.node_arrays)
        clone.node_instr_ids = list(self.node_instr_ids)
        clone.node_replicas = list(self.node_replicas)
        clone._edges = self._edges.copy()
        clone.edge_kinds = list(self.edge_kinds)

    def copy(self) -> "CDFG":
        """An independent copy sharing no mutable state with the original.

        On the columnar path the whole copy is a handful of C-level list
        copies plus one feature-matrix copy — **no node objects** (the
        clone's object view materializes lazily).  On the retained
        reference path node feature dicts are duplicated per node because
        callers annotate them in place (e.g. super-node QoR annotation).
        """
        clone = CDFG(name=self.name, columnar=self.columnar)
        self._copy_columns_into(clone)
        clone.loop_features = self.loop_features
        clone.metadata = dict(self.metadata)
        if self.feat is not None:
            clone.feat = self.feat.copy()
            return clone
        new_node = CDFGNode.__new__
        nodes = clone._materialized
        for node in self.nodes:
            fields = dict(node.__dict__)
            fields["features"] = dict(fields["features"])
            duplicate = new_node(CDFGNode)
            duplicate.__dict__ = fields
            nodes.append(duplicate)
        return clone

    def feature_matrix(self) -> np.ndarray:
        """(N, len(NODE_FEATURE_NAMES)) matrix of numerical node features.

        On the columnar path this is a **zero-copy, read-only view** of the
        live rows of the feature block — writes through any node's
        ``features`` are visible to every view, but the view itself is
        marked non-writeable (all views share one backing block, so an
        in-place edit would corrupt every consumer).  Consumers that need a
        mutable matrix copy it explicitly.
        """
        if self.feat is not None:
            return self.feat.view()
        if not self.nodes:
            return np.zeros((0, len(NODE_FEATURE_NAMES)))
        names = NODE_FEATURE_NAMES
        if reference_encoding_active():
            # retained reference path: one list + row assignment per node
            matrix = np.empty((len(self.nodes), len(names)), dtype=np.float64)
            for row, node in enumerate(self.nodes):
                get = node.features.get
                matrix[row] = [get(name, 0.0) for name in names]
            return matrix
        # one flat pass and a single list->array conversion for the whole
        # graph: no per-node list objects or row-wise assignments
        flat = [
            node.features.get(name, 0.0)
            for node in self.nodes for name in names
        ]
        return np.asarray(flat, dtype=np.float64).reshape(
            len(self.nodes), len(names)
        )

    def optype_list(self) -> list[str]:
        """Per-node optype strings (memoized: callers get a stable list
        object, so encoders can key per-list memos on its identity)."""
        cached = self._optype_list_cache
        if cached is None or len(cached) != len(self.optype_codes):
            table = self.optype_table
            cached = self._optype_list_cache = [
                table[code] for code in self.optype_codes
            ]
        return cached

    def optype_code_array(self) -> np.ndarray:
        """Per-node optype codes as an int64 array (memoized, read-only).

        Paired with :attr:`optype_table`, this is the columnar form of
        :meth:`optype_list`: encoders translate the (tiny) table once and
        fancy-index it with these codes instead of resolving one string per
        node (see ``OptypeEncoder.encode_sample_indices``).
        """
        cached = getattr(self, "_optype_code_cache", None)
        if cached is None or cached.shape[0] != len(self.optype_codes):
            cached = np.asarray(self.optype_codes, dtype=np.int64)
            self._optype_code_cache = cached
        return cached

    def summary(self) -> dict[str, int]:
        """Node/edge counts by category (handy for tests and logging)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "operation_nodes": len(self.nodes_of_kind(NodeKind.OPERATION)),
            "memory_ports": len(self.nodes_of_kind(NodeKind.MEMORY_PORT)),
            "super_nodes": len(self.nodes_of_kind(NodeKind.SUPER_NODE)),
            "data_edges": self.edge_kinds.count(EdgeKind.DATA),
            "control_edges": self.edge_kinds.count(EdgeKind.CONTROL),
            "memory_edges": self.edge_kinds.count(EdgeKind.MEMORY),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CDFG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"


__all__ = [
    "CDFG", "CDFGNode", "CDFGEdge", "NodeKind", "EdgeKind",
    "LoopLevelFeatures", "NODE_FEATURE_NAMES", "FEATURE_COLUMN",
]
