"""Feature extraction and annotation (Section III-B of the paper).

Node features (Table II) are annotated during graph construction; this module
adds the *loop-level* features that differentiate pipelined from
non-pipelined loops — initiation interval (II), trip count (TC) and the
pipelining flag — plus helpers for annotating super nodes with the QoR
predicted for their inner loop.
"""

from __future__ import annotations

import math

from repro.frontend.pragmas import PragmaConfig
from repro.graph.cdfg import CDFG, FEATURE_COLUMN as _COLUMN, LoopLevelFeatures
from repro.hls.directives import all_array_ports, effective_unroll_factors
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.scheduling import initiation_interval
from repro.ir.instructions import Instruction, Opcode
from repro.ir.structure import IfRegion, IRFunction, Loop, Region


def replicated_access_counts(loop: Loop, unroll_factor: int = 1) -> dict[str, int]:
    """Memory accesses per (unrolled) iteration of a pipelined loop.

    Inner loops are fully unrolled inside a pipelined loop, so their accesses
    multiply by their trip counts; the loop's own unroll factor multiplies
    everything once more.
    """
    counts: dict[str, int] = {}

    def visit(region: Region, multiplier: int) -> None:
        for item in region.items:
            if isinstance(item, Instruction):
                if item.opcode in (Opcode.LOAD, Opcode.STORE) and item.array:
                    counts[item.array] = counts.get(item.array, 0) + multiplier
            elif isinstance(item, Loop):
                visit(item.body, multiplier * max(1, item.tripcount))
            elif isinstance(item, IfRegion):
                visit(item.then_region, multiplier)
                visit(item.else_region, multiplier)

    visit(loop.body, max(1, unroll_factor))
    return counts


def analytical_ii(
    function: IRFunction,
    loop: Loop,
    config: PragmaConfig,
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    unroll_factors: dict[str, int] | None = None,
) -> int:
    """The II lower bound ``max(II_rec, II_res)`` used as a loop-level feature."""
    unroll = (
        unroll_factors if unroll_factors is not None
        else effective_unroll_factors(function, config)
    )
    factor = unroll.get(loop.label, 1)
    ports = all_array_ports(function, config)
    access_counts = replicated_access_counts(loop, factor)
    instr_by_id = {instr.instr_id: instr for instr in function.all_instructions()}
    recurrences = [
        rec for rec in function.recurrences if rec.loop_label == loop.label
    ]
    if factor > 1 and recurrences:
        recurrences = [
            type(rec)(
                loop_label=rec.loop_label, distance=rec.distance,
                chain=rec.chain * factor, kind=rec.kind, array=rec.array,
            )
            for rec in recurrences
        ]
    target = config.loop(loop.label).ii
    return initiation_interval(
        recurrences, instr_by_id, access_counts, ports,
        target_ii=target, library=library,
    )


def loop_level_features(
    function: IRFunction,
    loop: Loop,
    config: PragmaConfig,
    *,
    pipelined: bool,
    flattened_levels: int = 1,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    unroll_factors: dict[str, int] | None = None,
) -> LoopLevelFeatures:
    """Loop-level feature vector for one inner-hierarchy loop."""
    unroll = (
        unroll_factors if unroll_factors is not None
        else effective_unroll_factors(function, config)
    )
    factor = unroll.get(loop.label, 1)
    tripcount = max(1, loop.tripcount)
    residual_iterations = max(1, math.ceil(tripcount / max(1, factor)))
    if flattened_levels > 1:
        # flattened perfect nests multiply the iteration count of every level
        current = loop
        for _ in range(flattened_levels - 1):
            subs = current.sub_loops()
            if not subs:
                break
            current = subs[0]
            residual_iterations *= max(1, current.tripcount)
    ii = (
        analytical_ii(
            function, loop, config, library=library, unroll_factors=unroll
        )
        if pipelined else 1
    )
    return LoopLevelFeatures(
        ii=float(ii),
        tripcount=float(residual_iterations),
        pipelined=pipelined,
        unroll_factor=float(factor),
        depth=float(flattened_levels),
    )


def annotate_super_node(
    graph: CDFG,
    node_id: int,
    *,
    latency: float,
    lut: float,
    ff: float,
    dsp: float,
    iteration_latency: float = 0.0,
) -> None:
    """Attach predicted QoR of an inner loop to its super node (Fig. 3).

    The super node keeps the full Table II feature set; latency maps onto the
    ``cycles`` feature and the predicted resources onto ``lut``/``dsp``/``ff``.
    On the columnar path the annotation writes straight into the graph's
    feature block without touching (or materializing) any node object.
    """
    feat = graph.feat
    if feat is not None:
        row = feat.matrix[node_id]
        row[_COLUMN["cycles"]] = float(latency)
        row[_COLUMN["delay"]] = float(iteration_latency)
        row[_COLUMN["lut"]] = float(lut)
        row[_COLUMN["dsp"]] = float(dsp)
        row[_COLUMN["ff"]] = float(ff)
        invocations = float(row[_COLUMN["invocations"]])
        row[_COLUMN["work"]] = float(latency) * (
            invocations if invocations != 0.0 else 1.0
        )
        return
    node = graph.nodes[node_id]
    node.features["cycles"] = float(latency)
    node.features["delay"] = float(iteration_latency)
    node.features["lut"] = float(lut)
    node.features["dsp"] = float(dsp)
    node.features["ff"] = float(ff)
    node.features["work"] = float(latency) * float(
        node.features.get("invocations", 1.0)
    )


def scale_feature_matrix(graph: CDFG, log_scale: bool = True):
    """Return the numerical feature matrix, optionally log-compressed.

    Invocation counts, cycles and resource figures span several orders of
    magnitude; ``log1p`` compression keeps the GNN inputs well-conditioned.

    On the columnar path this is a fused two-pass op over the graph's
    feature block: one clamped copy, one in-place ``log1p`` — no per-node
    walk and no intermediate full-size temporaries.  With
    ``log_scale=False`` the columnar matrix is returned as a **zero-copy
    view** (see :meth:`repro.graph.cdfg.CDFG.feature_matrix`).
    """
    import numpy as np

    matrix = graph.feature_matrix()
    if log_scale:
        # clamp into a fresh buffer (never mutate the graph's columns),
        # then compress in place in that same buffer
        matrix = np.maximum(matrix, 0.0)
        np.log1p(matrix, out=matrix)
    return matrix


__all__ = [
    "replicated_access_counts", "analytical_ii", "loop_level_features",
    "annotate_super_node", "scale_feature_matrix",
]
