"""Graph data containers, encoders, batching and scalers.

Follows the PyTorch-Geometric conventions: a :class:`GraphSample` holds one
graph's node features, edge index and regression targets; a :class:`Batch`
concatenates several graphs into one disjoint union with a ``batch`` vector
mapping nodes back to their graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


# --------------------------------------------------------------------------- #
# samples and batches
# --------------------------------------------------------------------------- #
@dataclass
class GraphSample:
    """One training sample: an annotated graph and its QoR labels."""

    optypes: list[str]
    features: np.ndarray
    edge_index: np.ndarray
    targets: dict[str, float] = field(default_factory=dict)
    loop_features: np.ndarray = field(default_factory=lambda: np.zeros(5))
    metadata: dict[str, str] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.optypes)

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1] if self.edge_index.size else 0


@dataclass
class Batch:
    """A disjoint union of graphs ready for the GNN forward pass.

    ``feature_totals`` holds, per graph, the ``log1p`` of the column-wise sum
    of the raw (unscaled) numerical node features — a global skip connection
    that gives the readout MLPs direct access to aggregate quantities such as
    the summed per-operation LUT/FF/DSP estimates.
    """

    x: np.ndarray
    edge_index: np.ndarray
    batch: np.ndarray
    loop_features: np.ndarray
    targets: dict[str, np.ndarray]
    num_graphs: int
    feature_totals: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]


class OptypeEncoder:
    """One-hot encoder over operation-type strings.

    Unknown optypes at inference time map to a dedicated ``<unk>`` slot, so a
    model trained on one benchmark set degrades gracefully on new kernels.
    """

    UNKNOWN = "<unk>"

    def __init__(self, vocabulary: list[str] | None = None):
        self._index: dict[str, int] = {}
        if vocabulary:
            for optype in vocabulary:
                self._index.setdefault(optype, len(self._index))
            self._index.setdefault(self.UNKNOWN, len(self._index))

    def fit(self, optype_lists: list[list[str]]) -> "OptypeEncoder":
        for optypes in optype_lists:
            for optype in optypes:
                self._index.setdefault(optype, len(self._index))
        self._index.setdefault(self.UNKNOWN, len(self._index))
        return self

    @property
    def dim(self) -> int:
        return len(self._index)

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._index, key=self._index.get)

    def encode(self, optypes: list[str]) -> np.ndarray:
        unknown = self._index[self.UNKNOWN]
        columns = np.fromiter(
            (self._index.get(optype, unknown) for optype in optypes),
            dtype=np.int64, count=len(optypes),
        )
        matrix = np.zeros((len(optypes), self.dim), dtype=np.float64)
        if len(optypes):
            matrix[np.arange(len(optypes)), columns] = 1.0
        return matrix


class FeatureScaler:
    """Standardize numerical node features after ``log1p`` compression."""

    def __init__(self, log_compress: bool = True):
        self.log_compress = log_compress
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def _compress(self, matrix: np.ndarray) -> np.ndarray:
        if self.log_compress:
            return np.log1p(np.maximum(matrix, 0.0))
        return matrix

    def fit(self, matrices: list[np.ndarray]) -> "FeatureScaler":
        stacked = np.concatenate(
            [self._compress(m) for m in matrices if m.size], axis=0
        )
        self.mean_ = stacked.mean(axis=0)
        self.std_ = np.maximum(stacked.std(axis=0), 1e-6)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("FeatureScaler.transform called before fit")
        if matrix.size == 0:
            return matrix
        return (self._compress(matrix) - self.mean_) / self.std_


class TargetScaler:
    """Log-compress and standardize regression targets.

    QoR targets span several orders of magnitude across design points (for
    example latency from tens to millions of cycles), so models regress the
    standardized ``log1p`` value and predictions are mapped back with
    :meth:`inverse`.
    """

    def __init__(self):
        self.mean_ = 0.0
        self.std_ = 1.0

    def fit(self, values: np.ndarray) -> "TargetScaler":
        compressed = np.log1p(np.maximum(np.asarray(values, dtype=np.float64), 0.0))
        self.mean_ = float(compressed.mean()) if compressed.size else 0.0
        self.std_ = float(max(compressed.std(), 1e-6)) if compressed.size else 1.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        compressed = np.log1p(np.maximum(np.asarray(values, dtype=np.float64), 0.0))
        return (compressed - self.mean_) / self.std_

    def inverse(self, values: np.ndarray) -> np.ndarray:
        raw = np.asarray(values, dtype=np.float64) * self.std_ + self.mean_
        return np.expm1(np.clip(raw, -50.0, 50.0))


def make_batch(
    samples: list[GraphSample],
    encoder: OptypeEncoder,
    feature_scaler: FeatureScaler | None = None,
    target_names: tuple[str, ...] = (),
    encoded_cache: dict[int, tuple["GraphSample", np.ndarray]] | None = None,
) -> Batch:
    """Assemble a mini-batch from graph samples.

    ``encoded_cache`` (keyed by ``id(sample)``) lets callers reuse the encoded
    node-feature matrices across epochs instead of re-encoding every batch.
    The cache entries hold a reference to the sample itself so object ids can
    never be recycled while an entry is alive.
    """
    xs: list[np.ndarray] = []
    edges: list[np.ndarray] = []
    batch_vector: list[np.ndarray] = []
    loop_features: list[np.ndarray] = []
    totals: list[np.ndarray] = []
    offset = 0
    for graph_id, sample in enumerate(samples):
        entry = None if encoded_cache is None else encoded_cache.get(id(sample))
        cached = entry[1] if entry is not None and entry[0] is sample else None
        if cached is None:
            numeric = sample.features
            if feature_scaler is not None:
                numeric = feature_scaler.transform(numeric)
            encoded = encoder.encode(sample.optypes)
            cached = np.concatenate([encoded, numeric], axis=1)
            if encoded_cache is not None:
                encoded_cache[id(sample)] = (sample, cached)
        xs.append(cached)
        if sample.features.size:
            totals.append(np.log1p(np.maximum(sample.features, 0.0).sum(axis=0)))
        else:
            totals.append(np.zeros(0))
        if sample.num_edges:
            edges.append(sample.edge_index + offset)
        batch_vector.append(np.full(sample.num_nodes, graph_id, dtype=np.int64))
        loop_features.append(np.asarray(sample.loop_features, dtype=np.float64))
        offset += sample.num_nodes
    x = np.concatenate(xs, axis=0) if xs else np.zeros((0, encoder.dim))
    edge_index = (
        np.concatenate(edges, axis=1) if edges else np.zeros((2, 0), dtype=np.int64)
    )
    targets = {
        name: np.array([sample.targets.get(name, 0.0) for sample in samples])
        for name in target_names
    }
    width = max((t.shape[0] for t in totals), default=0)
    totals = [
        t if t.shape[0] == width else np.zeros(width) for t in totals
    ]
    return Batch(
        x=x,
        edge_index=edge_index,
        batch=np.concatenate(batch_vector) if batch_vector else np.zeros(0, dtype=np.int64),
        loop_features=np.stack(loop_features) if loop_features else np.zeros((0, 5)),
        targets=targets,
        num_graphs=len(samples),
        feature_totals=np.stack(totals) if totals else np.zeros((0, 0)),
    )


def chunk_by_node_budget(
    samples: list[GraphSample], max_nodes: int
) -> list[list[GraphSample]]:
    """Split ``samples`` (order preserved) into chunks of <= ``max_nodes``.

    Used to bound the memory of one disjoint-union forward pass when batching
    a whole design space; a single sample larger than the budget still forms
    its own chunk.
    """
    chunks: list[list[GraphSample]] = []
    current: list[GraphSample] = []
    current_nodes = 0
    for sample in samples:
        if current and current_nodes + sample.num_nodes > max_nodes:
            chunks.append(current)
            current = []
            current_nodes = 0
        current.append(sample)
        current_nodes += sample.num_nodes
    if current:
        chunks.append(current)
    return chunks


def iterate_minibatches(
    samples: list[GraphSample],
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
):
    """Yield lists of samples of size ``batch_size`` (last batch may be short)."""
    order = np.arange(len(samples))
    if shuffle:
        rng = rng or np.random.default_rng(0)
        rng.shuffle(order)
    for start in range(0, len(samples), batch_size):
        yield [samples[index] for index in order[start:start + batch_size]]


def train_validation_test_split(
    samples: list[GraphSample],
    fractions: tuple[float, float, float] = (0.8, 0.1, 0.1),
    rng: np.random.Generator | None = None,
) -> tuple[list[GraphSample], list[GraphSample], list[GraphSample]]:
    """Random 80/10/10 split (the paper's protocol)."""
    rng = rng or np.random.default_rng(0)
    order = np.arange(len(samples))
    rng.shuffle(order)
    n_train = int(round(fractions[0] * len(samples)))
    n_val = int(round(fractions[1] * len(samples)))
    train = [samples[i] for i in order[:n_train]]
    validation = [samples[i] for i in order[n_train:n_train + n_val]]
    test = [samples[i] for i in order[n_train + n_val:]]
    return train, validation, test


__all__ = [
    "GraphSample", "Batch", "OptypeEncoder", "FeatureScaler", "TargetScaler",
    "make_batch", "chunk_by_node_budget", "iterate_minibatches",
    "train_validation_test_split",
]
