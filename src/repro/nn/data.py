"""Graph data containers, encoders, batching and scalers.

Follows the PyTorch-Geometric conventions: a :class:`GraphSample` holds one
graph's node features, edge index and regression targets; a :class:`Batch`
concatenates several graphs into one disjoint union with a ``batch`` vector
mapping nodes back to their graph.

Batch assembly is the cold-path encoder of the whole system (every
``predict_batch`` sweep and every training minibatch funnels through
:func:`make_batch`), so it is vectorized end to end: one preallocated union
buffer for the numeric columns, fused in-place feature scaling,
``np.repeat``-based batch/edge offsets — and **no one-hot block at all**:
the union carries per-node optype codes that the model's first layer
resolves as an embedding gather from its own weights (see
:func:`repro.nn.autograd.embedding_linear`).  The per-sample implementation it
replaced is retained as :func:`make_batch_reference` — differential tests and
``benchmarks/test_perf_cold_path.py`` assert equivalence and speedup against
it (see :func:`repro.nn.autograd.reference_encoding`).  :class:`BatchCache`
adds epoch-level reuse on top: an already-assembled disjoint union is
replayed as long as the exact same samples are grouped the same way.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.flags import active_precision, reference_encoding_active


# --------------------------------------------------------------------------- #
# samples and batches
# --------------------------------------------------------------------------- #
@dataclass
class GraphSample:
    """One training sample: an annotated graph and its QoR labels.

    ``graph_codes``/``graph_table`` optionally carry the source CDFG's
    interned optype column (one small string table plus an int64 code per
    node): when present, encoders translate the table once and gather the
    codes instead of resolving one string per node.  ``optypes`` remains
    authoritative — ``table[codes[i]] == optypes[i]`` always.
    """

    optypes: list[str]
    features: np.ndarray
    edge_index: np.ndarray
    targets: dict[str, float] = field(default_factory=dict)
    loop_features: np.ndarray = field(default_factory=lambda: np.zeros(5))
    metadata: dict[str, str] = field(default_factory=dict)
    graph_codes: np.ndarray | None = None
    graph_table: list[str] | None = None

    @property
    def num_nodes(self) -> int:
        return len(self.optypes)

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1] if self.edge_index.size else 0


@dataclass
class Batch:
    """A disjoint union of graphs ready for the GNN forward pass.

    ``feature_totals`` holds, per graph, the ``log1p`` of the column-wise sum
    of the raw (unscaled) numerical node features — a global skip connection
    that gives the readout MLPs direct access to aggregate quantities such as
    the summed per-operation LUT/FF/DSP estimates.

    Two node-feature layouts exist.  The reference layout stores the dense
    ``[one-hot optype block | scaled numeric block]`` matrix in ``x`` with
    ``optype_codes`` unset.  The vectorized encoder never materializes the
    one-hot block: ``x`` holds only the scaled numeric columns while
    ``optype_codes`` carries one vocabulary index per node and ``onehot_dim``
    the width of the elided block — the first model layer turns the codes
    into an **embedding gather** from its own weight rows (see
    :func:`repro.nn.autograd.embedding_linear`), which is exactly
    ``one-hot @ W`` without ever building the one-hot matrix.
    """

    x: np.ndarray
    edge_index: np.ndarray
    batch: np.ndarray
    loop_features: np.ndarray
    targets: dict[str, np.ndarray]
    num_graphs: int
    feature_totals: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    #: vocabulary index per node (``None`` on the dense reference layout)
    optype_codes: np.ndarray | None = None
    #: width of the elided one-hot block (0 on the dense reference layout)
    onehot_dim: int = 0

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]


def batch_dense_x(batch: Batch) -> np.ndarray:
    """Materialize a batch's dense ``[one-hot | numeric]`` node matrix.

    The identity the embedding-gather layout elides: for a codes-layout
    batch this rebuilds exactly the matrix the reference encoder would have
    produced (used by differential tests and debugging; the model hot path
    never calls it).  Dense-layout batches return ``x`` unchanged.
    """
    if batch.optype_codes is None:
        return batch.x
    num_nodes = batch.x.shape[0]
    dense = np.zeros(
        (num_nodes, batch.onehot_dim + batch.x.shape[1]), dtype=batch.x.dtype
    )
    if num_nodes:
        dense[np.arange(num_nodes), batch.optype_codes] = 1.0
        dense[:, batch.onehot_dim:] = batch.x
    return dense


class OptypeEncoder:
    """One-hot encoder over operation-type strings.

    Unknown optypes at inference time map to a dedicated ``<unk>`` slot, so a
    model trained on one benchmark set degrades gracefully on new kernels.
    """

    UNKNOWN = "<unk>"

    #: bound on the per-``optypes``-list index memo (see :meth:`encode_indices`)
    MAX_MEMO_ENTRIES = 4096

    def __init__(self, vocabulary: list[str] | None = None):
        self._index: dict[str, int] = {}
        self._codes_memo: OrderedDict[int, tuple[list[str], np.ndarray]] = (
            OrderedDict()
        )
        #: per-graph-table translation memo (see :meth:`encode_sample_indices`)
        self._table_memo: OrderedDict[int, tuple[list[str], np.ndarray]] = (
            OrderedDict()
        )
        if vocabulary:
            for optype in vocabulary:
                self._index.setdefault(optype, len(self._index))
            self._index.setdefault(self.UNKNOWN, len(self._index))

    def fit(self, optype_lists: list[list[str]]) -> "OptypeEncoder":
        for optypes in optype_lists:
            for optype in optypes:
                self._index.setdefault(optype, len(self._index))
        self._index.setdefault(self.UNKNOWN, len(self._index))
        self._codes_memo.clear()
        self._table_memo.clear()
        return self

    @property
    def dim(self) -> int:
        return len(self._index)

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._index, key=self._index.get)

    def encode_indices(self, optypes: list[str]) -> np.ndarray:
        """Vocabulary index per optype (unknowns map to the ``<unk>`` slot).

        The string-to-index pass is the one part of encoding that cannot be
        vectorized, so it is memoized per ``optypes`` *list object*: samples
        derived from a shared graph template (e.g. the condensed outer graphs
        of a DSE sweep) share their optype list and pay the lookup once.  The
        memo holds a strong reference to the list, so a recycled ``id`` can
        never alias a dead list; eviction is LRU and bounded.
        """
        memo = self._codes_memo
        reference = reference_encoding_active()
        if not reference:
            entry = memo.get(id(optypes))
            if entry is not None and entry[0] is optypes:
                memo.move_to_end(id(optypes))
                return entry[1]
        unknown = self._index[self.UNKNOWN]
        columns = np.fromiter(
            (self._index.get(optype, unknown) for optype in optypes),
            dtype=np.int64, count=len(optypes),
        )
        if not reference:
            while len(memo) >= self.MAX_MEMO_ENTRIES:
                memo.popitem(last=False)
            memo[id(optypes)] = (optypes, columns)
        return columns

    def encode_sample_indices(self, sample: "GraphSample") -> np.ndarray:
        """Vocabulary index per node of ``sample``, preferring graph codes.

        When the sample carries its CDFG's interned optype column, the
        (tiny) per-graph table is translated into vocabulary indices once —
        memoized per table object — and the per-node codes gather from it,
        replacing one dict lookup per node with one fancy index.  Samples
        without codes fall back to :meth:`encode_indices`.
        """
        codes = sample.graph_codes
        if codes is None or reference_encoding_active():
            return self.encode_indices(sample.optypes)
        table = sample.graph_table
        memo = self._table_memo
        entry = memo.get(id(table))
        if entry is None or entry[0] is not table or entry[1].shape[0] != len(table):
            unknown = self._index[self.UNKNOWN]
            translation = np.fromiter(
                (self._index.get(optype, unknown) for optype in table),
                dtype=np.int64, count=len(table),
            )
            while len(memo) >= self.MAX_MEMO_ENTRIES:
                memo.popitem(last=False)
            memo[id(table)] = entry = (table, translation)
        else:
            memo.move_to_end(id(table))
        return entry[1][codes]

    def encode(self, optypes: list[str]) -> np.ndarray:
        columns = self.encode_indices(optypes)
        matrix = np.zeros((len(optypes), self.dim), dtype=np.float64)
        if len(optypes):
            matrix[np.arange(len(optypes)), columns] = 1.0
        return matrix


class FeatureScaler:
    """Standardize numerical node features after ``log1p`` compression."""

    def __init__(self, log_compress: bool = True):
        self.log_compress = log_compress
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def _compress(self, matrix: np.ndarray) -> np.ndarray:
        if self.log_compress:
            return np.log1p(np.maximum(matrix, 0.0))
        return matrix

    def fit(self, matrices: list[np.ndarray]) -> "FeatureScaler":
        stacked = np.concatenate(
            [self._compress(m) for m in matrices if m.size], axis=0
        )
        self.mean_ = stacked.mean(axis=0)
        self.std_ = np.maximum(stacked.std(axis=0), 1e-6)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("FeatureScaler.transform called before fit")
        if matrix.size == 0:
            return matrix
        return (self._compress(matrix) - self.mean_) / self.std_


class TargetScaler:
    """Log-compress and standardize regression targets.

    QoR targets span several orders of magnitude across design points (for
    example latency from tens to millions of cycles), so models regress the
    standardized ``log1p`` value and predictions are mapped back with
    :meth:`inverse`.
    """

    def __init__(self):
        self.mean_ = 0.0
        self.std_ = 1.0

    def fit(self, values: np.ndarray) -> "TargetScaler":
        compressed = np.log1p(np.maximum(np.asarray(values, dtype=np.float64), 0.0))
        self.mean_ = float(compressed.mean()) if compressed.size else 0.0
        self.std_ = float(max(compressed.std(), 1e-6)) if compressed.size else 1.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        compressed = np.log1p(np.maximum(np.asarray(values, dtype=np.float64), 0.0))
        return (compressed - self.mean_) / self.std_

    def inverse(self, values: np.ndarray) -> np.ndarray:
        raw = np.asarray(values, dtype=np.float64) * self.std_ + self.mean_
        return np.expm1(np.clip(raw, -50.0, 50.0))


def _sample_totals(sample: GraphSample) -> np.ndarray:
    """``log1p`` of the column-wise sum of the raw clamped features."""
    if not sample.features.size:
        return np.zeros(0)
    return np.log1p(np.maximum(sample.features, 0.0).sum(axis=0))


def make_batch_reference(
    samples: list[GraphSample],
    encoder: OptypeEncoder,
    feature_scaler: FeatureScaler | None = None,
    target_names: tuple[str, ...] = (),
    encoded_cache: dict | None = None,
) -> Batch:
    """The retained per-sample reference implementation of :func:`make_batch`.

    Encodes one sample at a time (Python-level one-hot assembly, per-sample
    scaling temporaries, list-append concatenation) exactly as the encoder
    worked before the vectorized cold path landed.  Differential tests and
    the cold-path benchmark run the pipeline through this function (via
    :func:`repro.nn.autograd.reference_encoding`) to assert the vectorized
    encoder's equivalence and speedup.
    """
    xs: list[np.ndarray] = []
    edges: list[np.ndarray] = []
    batch_vector: list[np.ndarray] = []
    loop_features: list[np.ndarray] = []
    totals: list[np.ndarray] = []
    offset = 0
    for graph_id, sample in enumerate(samples):
        entry = None if encoded_cache is None else encoded_cache.get(id(sample))
        # reference entries are (sample, dense rows, totals) triples; the
        # vectorized encoder's 4-tuples (numeric-only rows + codes) are not
        # valid here and are simply re-encoded
        cached = (
            entry[1]
            if entry is not None and len(entry) == 3 and entry[0] is sample
            else None
        )
        sample_totals = _sample_totals(sample)
        if cached is None:
            numeric = sample.features
            if feature_scaler is not None:
                numeric = feature_scaler.transform(numeric)
            encoded = encoder.encode(sample.optypes)
            cached = np.concatenate([encoded, numeric], axis=1)
            if encoded_cache is not None:
                encoded_cache[id(sample)] = (sample, cached, sample_totals)
        xs.append(cached)
        totals.append(sample_totals)
        if sample.num_edges:
            edges.append(sample.edge_index + offset)
        batch_vector.append(np.full(sample.num_nodes, graph_id, dtype=np.int64))
        loop_features.append(np.asarray(sample.loop_features, dtype=np.float64))
        offset += sample.num_nodes
    x = np.concatenate(xs, axis=0) if xs else np.zeros((0, encoder.dim))
    edge_index = (
        np.concatenate(edges, axis=1) if edges else np.zeros((2, 0), dtype=np.int64)
    )
    targets = {
        name: np.array([sample.targets.get(name, 0.0) for sample in samples])
        for name in target_names
    }
    width = max((t.shape[0] for t in totals), default=0)
    totals = [
        t if t.shape[0] == width else np.zeros(width) for t in totals
    ]
    return Batch(
        x=x,
        edge_index=edge_index,
        batch=np.concatenate(batch_vector) if batch_vector else np.zeros(0, dtype=np.int64),
        loop_features=np.stack(loop_features) if loop_features else np.zeros((0, 5)),
        targets=targets,
        num_graphs=len(samples),
        feature_totals=np.stack(totals) if totals else np.zeros((0, 0)),
    )


def make_batch(
    samples: list[GraphSample],
    encoder: OptypeEncoder,
    feature_scaler: FeatureScaler | None = None,
    target_names: tuple[str, ...] = (),
    encoded_cache: dict | None = None,
) -> Batch:
    """Assemble a mini-batch from graph samples in one vectorized pass.

    The union's numeric block is preallocated once and scaled **in place**
    (clamp, ``log1p``, standardize — no per-sample temporaries), and the
    batch vector / edge offsets come from ``np.repeat`` instead of
    per-sample allocations.  The one-hot optype block is never materialized:
    the batch carries one vocabulary code per node (``optype_codes``) and
    the model's first layer gathers the corresponding rows of its own weight
    matrix — value-for-value what multiplying the elided one-hot block by
    those weights would produce (see
    :func:`repro.nn.autograd.embedding_linear`).  Numerically equivalent to
    :func:`make_batch_reference` (bit-exact for the numeric block; the
    guards assert <= 1e-9 end to end).

    ``encoded_cache`` (keyed by ``id(sample)``) lets callers reuse encoded
    node-feature rows and codes across epochs instead of re-encoding every
    batch.  The cache entries hold a reference to the sample itself so
    object ids can never be recycled while an entry is alive.
    """
    if reference_encoding_active():
        return make_batch_reference(
            samples, encoder, feature_scaler, target_names, encoded_cache
        )
    num_graphs = len(samples)
    counts = np.fromiter(
        (sample.num_nodes for sample in samples), dtype=np.int64, count=num_graphs
    )
    offsets = np.zeros(num_graphs + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total_nodes = int(offsets[-1])
    numeric_width = 0
    for sample in samples:
        features = sample.features
        if features.ndim == 2 and features.shape[1]:
            numeric_width = features.shape[1]
            break
    dim = encoder.dim
    # every row is written below (cache hits and misses alike), so the
    # union buffers start uninitialized; their dtype is the context's
    # precision tier (float64 by default — bit-identical to before)
    dtype = np.dtype(active_precision())
    x = np.empty((total_nodes, numeric_width), dtype=dtype)
    codes = np.empty(total_nodes, dtype=np.int64)
    numeric = x
    totals: list[np.ndarray | None] = [None] * num_graphs
    misses: list[tuple[int, int, int]] = []
    any_hit = False
    for graph_id, sample in enumerate(samples):
        start, stop = int(offsets[graph_id]), int(offsets[graph_id + 1])
        entry = None if encoded_cache is None else encoded_cache.get(id(sample))
        # cached rows must match the union dtype — a float64-era entry is
        # simply re-encoded (and re-cached) under float32, and vice versa
        if (
            entry is not None and len(entry) == 4 and entry[0] is sample
            and entry[1].dtype == dtype
        ):
            x[start:stop] = entry[1]
            codes[start:stop] = entry[3]
            totals[graph_id] = (
                entry[2] if entry[2] is not None else _sample_totals(sample)
            )
            any_hit = True
            continue
        misses.append((graph_id, start, stop))
        if stop > start:
            codes[start:stop] = encoder.encode_sample_indices(sample)
            if numeric_width:
                numeric[start:stop] = sample.features
    # fused scaling over every uncached row: clamp, compress and standardize
    # in place in the union buffer (cached rows, already scaled, are masked
    # out); per-graph feature totals fall out of the clamped block for free
    fused = (
        misses and numeric_width and total_nodes
        and feature_scaler is not None and feature_scaler.log_compress
    )
    if fused:
        if any_hit:
            where = np.repeat(
                np.fromiter(
                    (totals[graph_id] is None for graph_id in range(num_graphs)),
                    dtype=bool, count=num_graphs,
                ),
                counts,
            )[:, None]
        else:
            where = True
        np.maximum(numeric, 0.0, out=numeric, where=where)
        for graph_id, start, stop in misses:
            if stop > start and samples[graph_id].features.size:
                totals[graph_id] = np.log1p(numeric[start:stop].sum(axis=0))
            else:
                totals[graph_id] = _sample_totals(samples[graph_id])
        np.log1p(numeric, out=numeric, where=where)
        np.subtract(numeric, feature_scaler.mean_, out=numeric, where=where)
        np.divide(numeric, feature_scaler.std_, out=numeric, where=where)
    elif misses:
        for graph_id, start, stop in misses:
            sample = samples[graph_id]
            totals[graph_id] = _sample_totals(sample)
            if numeric_width and stop > start and feature_scaler is not None:
                numeric[start:stop] = feature_scaler.transform(sample.features)
    if encoded_cache is not None:
        for graph_id, start, stop in misses:
            sample = samples[graph_id]
            encoded_cache[id(sample)] = (
                sample, x[start:stop].copy(), totals[graph_id],
                codes[start:stop].copy(),
            )
    edge_counts = np.fromiter(
        (sample.num_edges for sample in samples), dtype=np.int64, count=num_graphs
    )
    edge_parts = [
        sample.edge_index for sample in samples if sample.num_edges
    ]
    if edge_parts:
        edge_index = np.concatenate(edge_parts, axis=1)
        edge_index += np.repeat(offsets[:-1], edge_counts)[None, :]
        # order the union's edges by destination (stable, so each graph's
        # internal order is preserved and per-graph results stay
        # batch-invariant): every scatter over the destination rows then
        # takes the sequential sorted-segment reduceat path instead of a
        # random-access bincount
        destinations = edge_index[1]
        if destinations.size > 1 and (np.diff(destinations) < 0).any():
            edge_index = edge_index[:, np.argsort(destinations, kind="stable")]
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)
    targets = {
        name: np.array([sample.targets.get(name, 0.0) for sample in samples])
        for name in target_names
    }
    width = max((t.shape[0] for t in totals), default=0)
    stacked_totals = (
        np.stack([
            t if t.shape[0] == width else np.zeros(width) for t in totals
        ])
        if totals else np.zeros((0, 0))
    )
    return Batch(
        x=x,
        edge_index=edge_index,
        batch=np.repeat(np.arange(num_graphs, dtype=np.int64), counts),
        loop_features=(
            np.stack([
                np.asarray(sample.loop_features, dtype=dtype)
                for sample in samples
            ])
            if samples else np.zeros((0, 5))
        ),
        targets=targets,
        num_graphs=num_graphs,
        feature_totals=stacked_totals,
        optype_codes=codes,
        onehot_dim=dim,
    )


class BatchCache:
    """Replays assembled disjoint unions across training epochs.

    Keyed by the ordered identity fingerprint of the sample group (the tuple
    of member ``id``\\ s, with every member pinned by a strong reference so a
    recycled ``id`` can never alias a dead sample).  Samples are immutable
    once created, so the same group in the same order always produces the
    same union — any *regrouping* (e.g. a reshuffled epoch under
    ``regroup_each_epoch``) changes the key and misses cleanly instead of
    returning a stale union.  Bounded both by entry count and by total cached
    union nodes; eviction is LRU.
    """

    def __init__(self, max_entries: int = 256, max_cached_nodes: int = 1_000_000):
        self.max_entries = max_entries
        self.max_cached_nodes = max_cached_nodes
        self._entries: OrderedDict[
            tuple[int, ...], tuple[tuple[GraphSample, ...], Batch]
        ] = OrderedDict()
        self._cached_nodes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(samples: list[GraphSample]) -> tuple:
        # the precision tier is part of the key: a float64 union replayed
        # under float32 (or vice versa) must miss, and both tiers' unions
        # may coexist for the same sample grouping
        return (active_precision(), *map(id, samples))

    def get(self, samples: list[GraphSample]) -> Batch | None:
        """The cached union for exactly this sample grouping, else ``None``."""
        key = self._key(samples)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        pinned, batch = entry
        if len(pinned) != len(samples) or any(
            cached is not live for cached, live in zip(pinned, samples)
        ):
            # defence in depth: the pinned members guarantee live ids cannot
            # be recycled, but never serve a union whose identity drifted
            self._drop(key)
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return batch

    def put(self, samples: list[GraphSample], batch: Batch) -> None:
        """Insert an assembled union, evicting LRU entries past the bounds."""
        if self.max_entries <= 0:
            return
        key = self._key(samples)
        if key in self._entries:
            self._drop(key)
        self._entries[key] = (tuple(samples), batch)
        self._cached_nodes += batch.num_nodes
        while self._entries and (
            len(self._entries) > self.max_entries
            or self._cached_nodes > self.max_cached_nodes
        ):
            oldest = next(iter(self._entries))
            if oldest == key and len(self._entries) == 1:
                break
            self._drop(oldest)
            self.evictions += 1

    def _drop(self, key: tuple[int, ...]) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._cached_nodes -= entry[1].num_nodes

    def clear(self) -> None:
        """Drop every cached union and reset the counters."""
        self._entries.clear()
        self._cached_nodes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "batch_cache_hits": self.hits,
            "batch_cache_misses": self.misses,
            "batch_cache_evictions": self.evictions,
            "batch_cache_entries": len(self._entries),
            "batch_cache_nodes": self._cached_nodes,
        }


def chunk_by_node_budget(
    samples: list[GraphSample], max_nodes: int
) -> list[list[GraphSample]]:
    """Split ``samples`` (order preserved) into chunks of <= ``max_nodes``.

    Used to bound the memory of one disjoint-union forward pass when batching
    a whole design space; a single sample larger than the budget still forms
    its own chunk.
    """
    chunks: list[list[GraphSample]] = []
    current: list[GraphSample] = []
    current_nodes = 0
    for sample in samples:
        if current and current_nodes + sample.num_nodes > max_nodes:
            chunks.append(current)
            current = []
            current_nodes = 0
        current.append(sample)
        current_nodes += sample.num_nodes
    if current:
        chunks.append(current)
    return chunks


def iterate_minibatches(
    samples: list[GraphSample],
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
):
    """Yield lists of samples of size ``batch_size`` (last batch may be short)."""
    order = np.arange(len(samples))
    if shuffle:
        rng = rng or np.random.default_rng(0)
        rng.shuffle(order)
    for start in range(0, len(samples), batch_size):
        yield [samples[index] for index in order[start:start + batch_size]]


def train_validation_test_split(
    samples: list[GraphSample],
    fractions: tuple[float, float, float] = (0.8, 0.1, 0.1),
    rng: np.random.Generator | None = None,
) -> tuple[list[GraphSample], list[GraphSample], list[GraphSample]]:
    """Random 80/10/10 split (the paper's protocol)."""
    rng = rng or np.random.default_rng(0)
    order = np.arange(len(samples))
    rng.shuffle(order)
    n_train = int(round(fractions[0] * len(samples)))
    n_val = int(round(fractions[1] * len(samples)))
    train = [samples[i] for i in order[:n_train]]
    validation = [samples[i] for i in order[n_train:n_train + n_val]]
    test = [samples[i] for i in order[n_train + n_val:]]
    return train, validation, test


__all__ = [
    "GraphSample", "Batch", "OptypeEncoder", "FeatureScaler", "TargetScaler",
    "make_batch", "make_batch_reference", "batch_dense_x", "BatchCache",
    "chunk_by_node_budget", "iterate_minibatches",
    "train_validation_test_split",
]
