"""Message-passing (graph convolution) layers.

Numpy implementations of the five propagation layers evaluated by the paper:
GCN [11], GAT [12], GraphSAGE [13], TransformerConv [14] and PNA [15].  All
layers share the PyTorch-Geometric calling convention
``layer(x, edge_index)`` where ``edge_index`` is a ``(2, E)`` integer array of
``(source, target)`` pairs, and messages flow from source to target.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

import numpy as np

from repro.flags import reference_encoding_active
from repro.nn.autograd import (
    SCATTER_INDEX_CACHE,
    Tensor,
    concat,
    gather_scatter_sum,
    linear_sum,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn.layers import Linear, Module


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Append one self-loop edge per node."""
    loops = np.arange(num_nodes, dtype=np.int64)
    loops = np.stack([loops, loops])
    if edge_index.size == 0:
        return loops
    return np.concatenate([edge_index, loops], axis=1)


class _EdgeComputationCache:
    """Memoizes per-``(edge_index, num_nodes)`` graph quantities.

    A model forward pass (and, during DSE, many forward passes over the same
    batch) hands the *same* ``edge_index`` array to every propagation layer;
    re-deriving self-loops, degrees and normalization columns in each layer
    dominates the cost of small-graph inference.  Training-batch replay (see
    :class:`repro.nn.data.BatchCache`) additionally reuses the same arrays
    across epochs, so eviction is LRU — a long-lived working set of minibatch
    edge indices stays resident instead of being flushed wholesale.  Entries
    are keyed by ``id(edge_index)`` and validated through a weak reference so
    a recycled ``id`` can never alias a dead array.
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, tuple[weakref.ref, int, dict]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def payload(self, edge_index: np.ndarray, num_nodes: int) -> dict:
        """The mutable memo dict for this ``(edge_index, num_nodes)`` pair."""
        entry = self._entries.get(id(edge_index))
        if entry is not None:
            ref, cached_nodes, payload = entry
            if ref() is edge_index and cached_nodes == num_nodes:
                self.hits += 1
                self._entries.move_to_end(id(edge_index))
                return payload
        self.misses += 1
        payload: dict = {}
        try:
            ref = weakref.ref(edge_index)
        except TypeError:  # pragma: no cover - ndarrays are weakref-able
            return payload
        # purge entries whose array died on every insert so large self-loop
        # and norm payloads never outlive their batch, then evict the least
        # recently used survivors once the table is full
        entries = self._entries
        for key in [k for k, value in entries.items() if value[0]() is None]:
            del entries[key]
        while len(entries) >= self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1
        entries[id(edge_index)] = (ref, num_nodes, payload)
        return payload

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "edge_cache_hits": self.hits,
            "edge_cache_misses": self.misses,
            "edge_cache_evictions": self.evictions,
            "edge_cache_entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: process-wide cache shared by every propagation layer
EDGE_CACHE = _EdgeComputationCache()


def _cached_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    payload = EDGE_CACHE.payload(edge_index, num_nodes)
    edges = payload.get("self_loops")
    if edges is None:
        edges = add_self_loops(edge_index, num_nodes)
        edges.setflags(write=False)
        payload["self_loops"] = edges
    return edges


def _cached_rows(
    edge_index: np.ndarray, num_nodes: int, *, self_loops: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Stable ``(src, dst)`` row views of the (possibly loop-augmented) edges.

    Returning the *same* view objects on every call (instead of slicing
    fresh ones) lets downstream per-array memos — most importantly the
    scatter-index cache in :mod:`repro.nn.autograd` — key on the row arrays
    across layers, forward passes and replayed epochs.  Outside the
    reference pipeline the loop-augmented edges are re-sorted by destination
    (stable, once per edge index), so scatters over them keep the sorted
    fast path that :func:`repro.nn.data.make_batch` establishes for the raw
    union edges.
    """
    payload = EDGE_CACHE.payload(edge_index, num_nodes)
    if not self_loops:
        key = "rows"
    elif reference_encoding_active():
        key = "loop_rows"
    else:
        key = "loop_rows_sorted"
    rows = payload.get(key)
    if rows is None:
        edges = (
            _cached_self_loops(edge_index, num_nodes) if self_loops
            else edge_index
        )
        if key == "loop_rows_sorted":
            destinations = edges[1]
            if destinations.size > 1 and (np.diff(destinations) < 0).any():
                edges = edges[:, np.argsort(destinations, kind="stable")]
                edges.setflags(write=False)
        rows = (edges[0], edges[1])
        payload[key] = rows
    return rows


def _cached_degree(
    edge_index: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    dtype: np.dtype = np.dtype(np.float64),
) -> np.ndarray:
    """In-degree (self-loop-augmented, clamped to >= 1) per node."""
    payload = EDGE_CACHE.payload(edge_index, num_nodes)
    degree = payload.get(("degree", dtype.char))
    if degree is None:
        degree = np.bincount(dst, minlength=num_nodes).astype(dtype)
        degree = np.maximum(degree, 1.0)
        degree.setflags(write=False)
        payload[("degree", dtype.char)] = degree
    return degree


class MessagePassingLayer(Module):
    """Common base: subclasses implement :meth:`forward(x, edge_index)`."""

    def __init__(self, in_features: int, out_features: int):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features


class GCNConv(MessagePassingLayer):
    """Graph convolution with symmetric degree normalization (Kipf & Welling)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__(in_features, out_features)
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        src, dst = _cached_rows(edge_index, num_nodes, self_loops=True)
        transformed = self.linear(x)
        dtype = transformed.data.dtype
        payload = EDGE_CACHE.payload(edge_index, num_nodes)
        # keyed by the row pair's identity: the reference and vectorized
        # pipelines order the loop-augmented edges differently, so each row
        # ordering owns its own (aligned) per-edge norm column — and by
        # dtype, so float32 inference never mixes in a float64 column
        norm = payload.get(("gcn_norm", id(dst), dtype.char))
        if norm is None:
            degree = _cached_degree(edge_index, dst, num_nodes, dtype)
            norm = (1.0 / np.sqrt(degree[src] * degree[dst]))[:, None]
            norm.setflags(write=False)
            payload[("gcn_norm", id(dst), dtype.char)] = norm
        fused = gather_scatter_sum(
            transformed, src, dst, num_nodes, weights=norm
        )
        if fused is not None:
            return fused
        messages = transformed.gather_rows(src) * Tensor(norm)
        return segment_sum(messages, dst, num_nodes)


class SAGEConv(MessagePassingLayer):
    """GraphSAGE with mean aggregation: ``W_self x || W_neigh mean(x_N)``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__(in_features, out_features)
        self.linear_self = Linear(in_features, out_features, rng=rng)
        self.linear_neighbor = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        if edge_index.size == 0:
            return self.linear_self(x)
        src, dst = _cached_rows(edge_index, num_nodes, self_loops=False)
        # mean aggregation as one weighted CSR product: the cached per-edge
        # 1/degree weights make the fused operator compute the neighbor
        # mean directly (equal within float rounding to scaling the sum)
        weights = (
            None if reference_encoding_active()
            else SCATTER_INDEX_CACHE.mean_edge_weights(
                dst, num_nodes, x.data.dtype
            )
        )
        neighbor_mean = gather_scatter_sum(x, src, dst, num_nodes, weights=weights)
        if neighbor_mean is not None:
            # one fused node for self + neighbor: same values and gradients
            # as the composed linears, one union-sized allocation fewer
            return linear_sum(
                x, self.linear_self.weight, self.linear_self.bias,
                neighbor_mean, self.linear_neighbor.weight,
                self.linear_neighbor.bias,
            )
        neighbor_mean = segment_mean(x.gather_rows(src), dst, num_nodes)
        return self.linear_self(x) + self.linear_neighbor(neighbor_mean)


class GATConv(MessagePassingLayer):
    """Graph attention (single- or multi-head, concatenated heads)."""

    def __init__(self, in_features: int, out_features: int, heads: int = 2,
                 negative_slope: float = 0.2,
                 rng: np.random.Generator | None = None):
        if out_features % heads != 0:
            raise ValueError("out_features must be divisible by heads")
        super().__init__(in_features, out_features)
        self.heads = heads
        self.head_dim = out_features // heads
        self.negative_slope = negative_slope
        self.projections = [
            Linear(in_features, self.head_dim, rng=rng) for _ in range(heads)
        ]
        self.att_src = [
            Linear(self.head_dim, 1, bias=False, rng=rng) for _ in range(heads)
        ]
        self.att_dst = [
            Linear(self.head_dim, 1, bias=False, rng=rng) for _ in range(heads)
        ]

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        src, dst = _cached_rows(edge_index, num_nodes, self_loops=True)
        head_outputs = []
        for head in range(self.heads):
            projected = self.projections[head](x)
            alpha_src = self.att_src[head](projected)
            alpha_dst = self.att_dst[head](projected)
            scores = (
                alpha_src.gather_rows(src) + alpha_dst.gather_rows(dst)
            ).leaky_relu(self.negative_slope)
            attention = segment_softmax(scores, dst, num_nodes)
            messages = projected.gather_rows(src) * attention
            head_outputs.append(segment_sum(messages, dst, num_nodes))
        if len(head_outputs) == 1:
            return head_outputs[0]
        return concat(head_outputs, axis=1)


class TransformerConv(MessagePassingLayer):
    """UniMP-style transformer convolution with scaled dot-product attention."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__(in_features, out_features)
        self.query = Linear(in_features, out_features, rng=rng)
        self.key = Linear(in_features, out_features, rng=rng)
        self.value = Linear(in_features, out_features, rng=rng)
        self.skip = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        src, dst = _cached_rows(edge_index, num_nodes, self_loops=True)
        queries = self.query(x).gather_rows(dst)
        keys = self.key(x).gather_rows(src)
        values = self.value(x).gather_rows(src)
        scale = 1.0 / np.sqrt(self.out_features)
        scores = (queries * keys).sum(axis=1, keepdims=True) * scale
        attention = segment_softmax(scores, dst, num_nodes)
        aggregated = segment_sum(values * attention, dst, num_nodes)
        return aggregated + self.skip(x)


class PNAConv(MessagePassingLayer):
    """Principal Neighbourhood Aggregation (mean/max/sum aggregators with
    degree scalers), simplified to a single tower."""

    def __init__(self, in_features: int, out_features: int,
                 average_degree: float = 4.0,
                 rng: np.random.Generator | None = None):
        super().__init__(in_features, out_features)
        self.pre = Linear(in_features, out_features, rng=rng)
        # 3 aggregators x 3 scalers + self features
        self.post = Linear(out_features * 9 + in_features, out_features, rng=rng)
        self.log_average_degree = float(np.log(average_degree + 1.0))

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        src, dst = _cached_rows(edge_index, num_nodes, self_loops=True)
        transformed = self.pre(x)
        messages = transformed.gather_rows(src)
        aggregated = [
            segment_mean(messages, dst, num_nodes),
            segment_max(messages, dst, num_nodes),
            segment_sum(messages, dst, num_nodes),
        ]
        dtype = transformed.data.dtype
        payload = EDGE_CACHE.payload(edge_index, num_nodes)
        scalers = payload.get(("pna_scalers", self.log_average_degree, dtype.char))
        if scalers is None:
            degree = _cached_degree(edge_index, dst, num_nodes, dtype)
            log_degree = np.log(degree + 1.0)
            scalers = (
                (log_degree / self.log_average_degree)[:, None],
                (self.log_average_degree / log_degree)[:, None],
            )
            for scaler in scalers:
                scaler.setflags(write=False)
            payload[("pna_scalers", self.log_average_degree, dtype.char)] = scalers
        amplification, attenuation = scalers
        scaled = []
        for aggregate in aggregated:
            scaled.append(aggregate)
            scaled.append(aggregate * Tensor(amplification))
            scaled.append(aggregate * Tensor(attenuation))
        return self.post(concat(scaled + [x], axis=1))


#: registry keyed by the names used in Table III
CONV_REGISTRY: dict[str, type[MessagePassingLayer]] = {
    "gcn": GCNConv,
    "gat": GATConv,
    "graphsage": SAGEConv,
    "sage": SAGEConv,
    "transformer": TransformerConv,
    "pna": PNAConv,
}


def make_conv(name: str, in_features: int, out_features: int,
              rng: np.random.Generator | None = None) -> MessagePassingLayer:
    """Instantiate a propagation layer by its Table III name."""
    key = name.lower()
    if key not in CONV_REGISTRY:
        raise KeyError(
            f"unknown GNN type {name!r}; available: {sorted(set(CONV_REGISTRY))}"
        )
    return CONV_REGISTRY[key](in_features, out_features, rng=rng)


__all__ = [
    "add_self_loops", "EDGE_CACHE", "MessagePassingLayer", "GCNConv",
    "SAGEConv", "GATConv", "TransformerConv", "PNAConv", "CONV_REGISTRY",
    "make_conv",
]
