"""Graph-level pooling (readout) layers.

The paper concatenates sum pooling and max pooling of node embeddings to form
the graph-level representation fed to the MLP heads.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concat, segment_max, segment_mean, segment_sum


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node embeddings per graph."""
    return segment_sum(x, batch, num_graphs)


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node embeddings per graph."""
    return segment_mean(x, batch, num_graphs)


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph maximum over node embeddings."""
    return segment_max(x, batch, num_graphs)


def sum_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """The readout used by the paper: ``[sum-pool || max-pool]``."""
    return concat(
        [global_sum_pool(x, batch, num_graphs), global_max_pool(x, batch, num_graphs)],
        axis=1,
    )


__all__ = ["global_sum_pool", "global_mean_pool", "global_max_pool", "sum_max_pool"]
