"""Neural-network building blocks: modules, linear layers and MLPs."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, linear


class Parameter(Tensor):
    """A tensor updated by the optimizer."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing parameter discovery and train/eval switching."""

    def __init__(self):
        self.training = True

    def parameters(self) -> list[Parameter]:
        found: list[Parameter] = []
        seen: set[int] = set()

        def collect(obj) -> None:
            if isinstance(obj, Parameter):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for value in obj:
                    collect(value)
            elif isinstance(obj, dict):
                for value in obj.values():
                    collect(value)

        collect(self)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter index to value (for serialization)."""
        return {
            f"param_{index}": parameter.data.copy()
            for index, parameter in enumerate(self.parameters())
        }

    def load_state_dict(
        self, state: dict[str, np.ndarray], dtype: np.dtype = np.dtype(np.float64)
    ) -> None:
        """Load a flat parameter mapping, casting to ``dtype`` (float64 default).

        Passing ``np.float32`` is how a model enters the float32 inference
        tier: weights are cast once here and every kernel then propagates
        their dtype (see :mod:`repro.nn.autograd`).
        """
        parameters = self.parameters()
        if len(state) != len(parameters):
            raise ValueError(
                f"state has {len(state)} entries, model has {len(parameters)} parameters"
            )
        for index, parameter in enumerate(parameters):
            value = state[f"param_{index}"]
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {index} shape mismatch: "
                    f"{value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.astype(dtype).copy()
            parameter.grad = None

    def num_parameters(self) -> int:
        return sum(parameter.data.size for parameter in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def glorot(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """A dense layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return linear(x, self.weight, self.bias)


class Dropout(Module):
    """Inverted dropout (identity in eval mode)."""

    def __init__(self, rate: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate <= 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class MLP(Module):
    """A multi-layer perceptron with ReLU activations between layers."""

    def __init__(
        self,
        dims: list[int],
        *,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        rng = rng or np.random.default_rng(0)
        self.layers = [
            Linear(dims[index], dims[index + 1], rng=rng)
            for index in range(len(dims) - 1)
        ]
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index < len(self.layers) - 1:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        return x


__all__ = ["Parameter", "Module", "Linear", "Dropout", "MLP", "glorot"]
