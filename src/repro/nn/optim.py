"""Gradient-descent optimizers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base class: hold parameters, clear gradients, apply updates."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Clip the global gradient norm; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1 ** self._step_count
        bias_correction2 = 1.0 - beta2 ** self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            self._m[index] = beta1 * self._m[index] + (1.0 - beta1) * grad
            self._v[index] = beta2 * self._v[index] + (1.0 - beta2) * grad * grad
            m_hat = self._m[index] / bias_correction1
            v_hat = self._v[index] / bias_correction2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data = parameter.data - self.lr * update


__all__ = ["Optimizer", "SGD", "Adam"]
