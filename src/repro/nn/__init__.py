"""A small numpy-based neural-network framework with graph support.

Replaces PyTorch Geometric for the reproduction: reverse-mode autograd,
dense/MLP layers, the five message-passing layers used in the paper, graph
pooling, losses and optimizers.
"""

from repro.nn.autograd import (
    Tensor,
    concat,
    reference_encoding,
    reference_encoding_active,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    stack_rows,
)
from repro.nn.data import (
    Batch,
    BatchCache,
    FeatureScaler,
    GraphSample,
    OptypeEncoder,
    TargetScaler,
    iterate_minibatches,
    make_batch,
    make_batch_reference,
    train_validation_test_split,
)
from repro.nn.layers import MLP, Dropout, Linear, Module, Parameter, glorot
from repro.nn.losses import huber_loss, mae_loss, mape, mse_loss, rmse
from repro.nn.message_passing import (
    CONV_REGISTRY,
    GATConv,
    GCNConv,
    MessagePassingLayer,
    PNAConv,
    SAGEConv,
    TransformerConv,
    add_self_loops,
    make_conv,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.pooling import (
    global_max_pool,
    global_mean_pool,
    global_sum_pool,
    sum_max_pool,
)

__all__ = [
    "Tensor", "concat", "segment_max", "segment_mean", "segment_softmax",
    "segment_sum", "stack_rows", "reference_encoding",
    "reference_encoding_active",
    "Batch", "BatchCache", "FeatureScaler", "GraphSample", "OptypeEncoder",
    "TargetScaler", "iterate_minibatches", "make_batch",
    "make_batch_reference", "train_validation_test_split",
    "MLP", "Dropout", "Linear", "Module", "Parameter", "glorot",
    "huber_loss", "mae_loss", "mape", "mse_loss", "rmse",
    "CONV_REGISTRY", "GATConv", "GCNConv", "MessagePassingLayer", "PNAConv",
    "SAGEConv", "TransformerConv", "add_self_loops", "make_conv",
    "SGD", "Adam", "Optimizer",
    "global_max_pool", "global_mean_pool", "global_sum_pool", "sum_max_pool",
]
