"""A small reverse-mode automatic differentiation engine on numpy arrays.

This replaces PyTorch for the purposes of the reproduction: it provides the
minimal set of differentiable primitives needed to express MLPs and the five
message-passing GNN architectures used in the paper (GCN, GAT, GraphSAGE,
TransformerConv, PNA), including the segment (scatter/gather) operations that
graph message passing is built from.

Design notes
------------
* A :class:`Tensor` wraps an ``np.ndarray`` (``float64`` or ``float32`` — the
  precision *tier*, see :mod:`repro.flags`; float64 is the bit-identical
  default), remembers the tensors it was computed from and a closure that
  accumulates gradients into them.  Kernels propagate the dtype of their
  inputs; the ``precision`` context governs only arrays created from scalars
  or lists, so mixing tiers by accident is impossible.
* Broadcasting in ``+``/``*``/``-``/``/`` is supported; gradients are summed
  over the broadcast axes.
* ``backward()`` runs a topological sort and applies the chain rule; only
  tensors created with ``requires_grad=True`` (parameters) and intermediate
  results keep gradients.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Callable, Iterable

import numpy as np

from repro.flags import (
    active_precision,
    precision,
    reference_encoding,
    reference_encoding_active,
)

try:  # optional: the scatter ops fall back to pure numpy without scipy
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy is present in CI and dev envs
    _scipy_sparse = None

Array = np.ndarray

#: numpy dtype per precision tier (see :mod:`repro.flags`)
PRECISION_DTYPES = {"float64": np.dtype(np.float64), "float32": np.dtype(np.float32)}

_FLOAT_DTYPES = tuple(PRECISION_DTYPES.values())


def active_dtype() -> np.dtype:
    """The numpy dtype of the context's precision tier."""
    return PRECISION_DTYPES[active_precision()]


def _as_array(value) -> Array:
    # float32/float64 arrays (and numpy float scalars, e.g. a float32
    # ``.sum()`` result) keep their dtype: weights are cast once at load and
    # inputs propagate.  Everything else — python scalars, lists, integer
    # arrays — adopts the context's precision tier (float64 by default,
    # bit-identical to the pre-tiered behavior).
    if isinstance(value, (np.ndarray, np.floating)):
        value = np.asarray(value)
        if value.dtype in _FLOAT_DTYPES:
            return value
        return value.astype(PRECISION_DTYPES[active_precision()], copy=False)
    return np.asarray(value, dtype=PRECISION_DTYPES[active_precision()])


def _scalar_operand(value, dtype: np.dtype) -> "Tensor":
    """Wrap a non-Tensor binary-op operand, matching the Tensor's dtype.

    Python scalars and lists adopt the other operand's dtype so a float32
    graph is never silently upcast to float64 by a literal like ``+ 1e-12``.
    For float64 operands this is exactly the old ``Tensor(other)`` behavior.
    """
    return Tensor(np.asarray(value, dtype=dtype))


class _ScatterIndexCache:
    """Memoizes per-segment-id-array quantities used by the scatter ops.

    A GNN forward pass scatters along the *same* destination-row array once
    per layer (and once more per layer on the backward pass), and replayed
    training batches reuse their arrays across epochs, so everything
    derivable from the id array alone — the flat ``ids * num_cols + col``
    index of the bincount path, the segment boundaries of the sorted
    ``reduceat`` fast path, the per-segment counts of :func:`segment_mean` —
    is paid many times per array.  Entries are keyed by ``id(ids)`` (plus a
    discriminator) and validated through a weak reference so a recycled
    ``id`` can never alias a dead array; eviction is LRU.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, tuple[weakref.ref, object]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _freeze(value):
        """Mark memoized buffers read-only so shared-cache mutation fails loudly.

        Cached arrays are handed to many forward passes; a caller writing
        into one would silently corrupt every later sweep.  Freezing costs
        nothing on the hot path (consumers only read) and turns that
        corruption into an immediate ``ValueError``.
        """
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, np.ndarray):
                    item.setflags(write=False)
        elif _scipy_sparse is not None and _scipy_sparse.issparse(value):
            value.data.setflags(write=False)
        return value

    def _memo(self, ids: Array, key: tuple, compute):
        if reference_encoding_active():
            # the reference pipeline recomputes everything — it must not
            # profit from entries a vectorized run left behind
            return compute()
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is ids:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self.misses += 1
        value = self._freeze(compute())
        try:
            ref = weakref.ref(ids)
        except TypeError:  # pragma: no cover - ndarrays are weakref-able
            return value
        entries = self._entries
        for stale_key in [k for k, v in entries.items() if v[0]() is None]:
            del entries[stale_key]
        while len(entries) >= self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = (ref, value)
        return value

    def flat_ids(self, ids: Array, num_cols: int) -> Array:
        """The flat scatter index for ``ids`` over ``num_cols`` columns."""
        return self._memo(
            ids, (id(ids), "flat", num_cols),
            lambda: (ids[:, None] * num_cols + np.arange(num_cols)[None, :]).ravel(),
        )

    def sorted_segments(self, ids: Array):
        """``(starts, present)`` for ascending ``ids``, else ``None``.

        ``starts`` are the first row of each run of equal ids (the offsets
        handed to ``np.add.reduceat`` / ``np.maximum.reduceat``) and
        ``present`` the segment id of each run.  Sorted segment ids — batch
        vectors always, edge destinations once ``make_batch`` orders the
        union edges — turn a scatter into one sequential ``reduceat`` pass
        with no flat-index construction and no random-access writes.
        """
        def compute():
            if ids.size == 0 or not bool((ids[1:] >= ids[:-1]).all()):
                return None
            starts = np.flatnonzero(np.diff(ids, prepend=-1))
            return starts, ids[starts]

        return self._memo(ids, (id(ids), "sorted"), compute)

    def segment_counts(
        self, ids: Array, num_segments: int, dtype: np.dtype = np.dtype(np.float64)
    ) -> Array:
        """Clamped-to->=1 member count per segment (for :func:`segment_mean`)."""
        return self._memo(
            ids, (id(ids), "counts", num_segments, dtype.char),
            lambda: np.maximum(
                np.bincount(ids, minlength=num_segments).astype(dtype), 1.0
            ),
        )

    def mean_edge_weights(
        self, ids: Array, num_segments: int, dtype: np.dtype = np.dtype(np.float64)
    ) -> Array:
        """Per-edge ``1 / count(dst)`` weights, memoized per id array.

        Folding these into the fused gather-scatter operator turns SAGE's
        mean aggregation into a single weighted CSR product — the division
        happens per *edge* inside the accumulation instead of per node
        afterwards (same value within float rounding), removing one
        union-sized multiply and temporary per layer.
        """
        return self._memo(
            ids, (id(ids), "mean_weights", num_segments, dtype.char),
            lambda: (1.0 / self.segment_counts(ids, num_segments, dtype))[ids],
        )

    def scatter_matrix(
        self, ids: Array, num_segments: int, dtype: np.dtype = np.dtype(np.float64)
    ):
        """Sparse ``(num_segments, len(ids))`` row-gather operator, or ``None``.

        ``matrix @ values`` performs the scatter-add as one CSR
        matrix-multiply — 2-3x faster than the flat bincount and
        **bit-identical** to it: the CSR column indices enumerate each
        segment's rows in their original order (a stable grouping), so every
        output element accumulates its contributions in exactly the
        bincount scan order.  Requires scipy; callers fall back to the flat
        path when it is absent.
        """
        if _scipy_sparse is None:
            return None

        def compute():
            length = ids.shape[0]
            counts = np.bincount(ids, minlength=num_segments)
            indptr = np.zeros(num_segments + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            if bool((ids[1:] >= ids[:-1]).all()):
                indices = np.arange(length, dtype=np.int64)
            else:
                indices = np.argsort(ids, kind="stable").astype(np.int64)
            return _scipy_sparse.csr_matrix(
                (np.ones(length, dtype=dtype), indices, indptr),
                shape=(num_segments, length),
            )

        return self._memo(ids, (id(ids), "csr", num_segments, dtype.char), compute)

    def adjacency(
        self,
        src: Array,
        dst: Array,
        num_segments: int,
        num_sources: int,
        weights: Array | None = None,
        dtype: np.dtype = np.dtype(np.float64),
    ):
        """Cached fused gather-scatter operator, or ``None`` without scipy.

        The returned dict's ``"forward"`` entry is the
        ``(num_segments, num_sources)`` CSR matrix whose product with ``x``
        equals ``segment_sum(x.gather_rows(src) [* weights], dst)`` —
        bit-identically, because duplicate ``(src, dst)`` pairs are kept as
        separate entries in edge order.  The backward transpose is built
        lazily under the ``"transpose"`` key by the op's backward closure.
        """
        if _scipy_sparse is None:
            return None
        key = (
            id(dst), "adj", id(src), num_segments, num_sources,
            -1 if weights is None else id(weights), dtype.char,
        )

        def compute():
            length = dst.shape[0]
            counts = np.bincount(dst, minlength=num_segments)
            indptr = np.zeros(num_segments + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            data = np.ones(length, dtype=dtype) if weights is None else np.array(
                weights, dtype=dtype
            ).reshape(length)
            if length and not bool((dst[1:] >= dst[:-1]).all()):
                order = np.argsort(dst, kind="stable")
                indices = src[order].astype(np.int64)
                data = data[order]
            else:
                indices = np.asarray(src, dtype=np.int64)
            matrices = {
                "forward": _scipy_sparse.csr_matrix(
                    (data, indices, indptr), shape=(num_segments, num_sources)
                )
            }
            # the enclosing tuple hides the CSR from _freeze; freeze its
            # data buffer here (same shared-cache-mutation guarantee)
            matrices["forward"].data.setflags(write=False)
            # the memo validates only the keying (dst) array; pin the other
            # participants with their own weak references so a recycled src
            # or weights id can be detected below
            return (
                weakref.ref(src),
                None if weights is None else weakref.ref(weights),
                matrices,
            )

        ref_src, ref_weights, matrices = self._memo(dst, key, compute)
        if ref_src() is not src or (
            ref_weights is not None and ref_weights() is not weights
        ):
            self._entries.pop(key, None)
            ref_src, ref_weights, matrices = self._memo(dst, key, compute)
        return matrices

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "scatter_index_hits": self.hits,
            "scatter_index_misses": self.misses,
            "scatter_index_evictions": self.evictions,
            "scatter_index_entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: process-wide memo shared by every scatter-add call
SCATTER_INDEX_CACHE = _ScatterIndexCache()


def _scatter_add(ids: Array, values: Array, num_segments: int) -> Array:
    """Scatter-add rows of ``values`` into ``num_segments`` buckets.

    Implemented as one flat-index ``bincount`` over ``ids * num_cols + col``
    (much faster than ``np.add.at`` and than a per-column Python loop): the
    whole (rows, features) block collapses into a single C-level pass.  Shared
    by :meth:`Tensor.gather_rows`'s backward and every ``segment_*`` op.  The
    flat index array is memoized per ``(ids, num_cols)`` (see
    :class:`_ScatterIndexCache`), leaving the steady state with no index
    temporaries at all.
    """
    if values.ndim == 1:
        # bincount accumulates in float64; cast back so float32 graphs stay
        # float32 end to end (no-op copy for float64 inputs)
        return np.bincount(ids, weights=values, minlength=num_segments).astype(
            values.dtype, copy=False
        )
    num_cols = int(np.prod(values.shape[1:]))
    if num_cols == 0 or ids.size == 0:
        return np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    if not reference_encoding_active() and values.ndim == 2:
        matrix = SCATTER_INDEX_CACHE.scatter_matrix(ids, num_segments, values.dtype)
        if matrix is not None:
            return matrix @ values
    flat_ids = SCATTER_INDEX_CACHE.flat_ids(ids, num_cols)
    out = np.bincount(
        flat_ids,
        weights=values.reshape(ids.shape[0], num_cols).ravel(),
        minlength=num_segments * num_cols,
    )
    return out.reshape((num_segments,) + values.shape[1:]).astype(
        values.dtype, copy=False
    )


def _stable_matmul(a: Array, b: Array) -> Array:
    """``a @ b`` with batch-size-invariant floating-point results.

    BLAS dispatches degenerate products — a single left-hand row (M = 1) or
    a single right-hand column (N = 1, e.g. the scalar regression heads) —
    to GEMV-style kernels whose accumulation order differs from the GEMM
    kernels used for M, N >= 2, so the *same* row can produce
    last-ulp-different results depending on how many rows it is batched
    with.  Batched inference relies on per-graph results being independent
    of batch composition (a design predicted alone, in a worker's shard, or
    in a full-space union must yield identical bits — see
    :mod:`repro.dse.sharding`), so degenerate shapes are routed through the
    general kernel by duplicating the lone row/column and discarding the
    copy.  For M, N >= 2 each output element is already batch-invariant.
    """
    if a.ndim != 2 or b.ndim != 2:
        return a @ b
    pad_m = a.shape[0] == 1
    pad_n = b.shape[1] == 1
    if not pad_m and not pad_n:
        return a @ b
    left = np.concatenate([a, a], axis=0) if pad_m else a
    right = np.concatenate([b, b], axis=1) if pad_n else b
    out = left @ right
    if pad_m:
        out = out[:1]
    if pad_n:
        out = out[:, :1]
    return out


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # sum over leading extra dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were size 1 in the original shape
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[Array], None] | None = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Array | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> Array:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: Array) -> None:
        if reference_encoding_active():
            if self.grad is None:
                self.grad = np.zeros_like(self.data)
            self.grad = self.grad + grad
            return
        # first contribution: copy instead of zero-fill + add (one pass, one
        # temporary fewer); later contributions accumulate in place into the
        # owned buffer
        if self.grad is None:
            if grad.shape == self.data.shape:
                self.grad = grad.copy()
            else:
                self.grad = np.zeros_like(self.data) + grad
        else:
            self.grad += grad

    @property
    def _needs_graph(self) -> bool:
        return self.requires_grad or bool(self._parents)

    def backward(self, grad: Array | None = None) -> None:
        """Back-propagate from this tensor (must be scalar if ``grad`` absent)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar output")
            grad = np.ones_like(self.data)
        # topological order of the computation graph
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        if not isinstance(other, Tensor):
            other = _scalar_operand(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other._needs_graph:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor(out_data, _parents=(self, other), _backward=backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(-grad)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def __sub__(self, other) -> "Tensor":
        if not isinstance(other, Tensor):
            other = _scalar_operand(other, self.data.dtype)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return _scalar_operand(other, self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        if not isinstance(other, Tensor):
            other = _scalar_operand(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other._needs_graph:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor(out_data, _parents=(self, other), _backward=backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if not isinstance(other, Tensor):
            other = _scalar_operand(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other._needs_graph:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor(out_data, _parents=(self, other), _backward=backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _scalar_operand(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        out_data = _stable_matmul(self.data, other.data)

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad @ other.data.T)
            if other._needs_graph:
                other._accumulate(self.data.T @ grad)

        return Tensor(out_data, _parents=(self, other), _backward=backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * out_data)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-12))

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad / np.maximum(self.data, 1e-12))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * sign)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def relu(self) -> "Tensor":
        if reference_encoding_active():
            mask = (self.data > 0).astype(self.data.dtype)
            out_data = self.data * mask

            def backward(grad: Array) -> None:
                if self._needs_graph:
                    self._accumulate(grad * mask)

            return Tensor(out_data, _parents=(self,), _backward=backward)
        # single clamp pass; the mask is only materialized on backward, so
        # inference pays one allocation instead of three
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * (self.data > 0))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        # np.where over two python scalars yields float64; pin the mask to
        # the input dtype so float32 attention graphs stay float32
        mask = np.where(self.data > 0, 1.0, negative_slope).astype(
            self.data.dtype, copy=False
        )
        out_data = self.data * mask

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * mask)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    # ------------------------------------------------------------------ #
    # reductions / shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: Array) -> None:
            if not self._needs_graph:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original_shape = self.shape

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad.reshape(original_shape))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(grad.T)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def gather_rows(self, index: Array) -> "Tensor":
        """Select rows: ``out[i] = self[index[i]]`` (differentiable)."""
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]

        def backward(grad: Array) -> None:
            if self._needs_graph:
                self._accumulate(_scatter_add(index, grad, self.data.shape[0]))

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def slice_cols(self, start: int, stop: int) -> "Tensor":
        out_data = self.data[:, start:stop]

        def backward(grad: Array) -> None:
            if self._needs_graph:
                accumulated = np.zeros_like(self.data)
                accumulated[:, start:stop] = grad
                self._accumulate(accumulated)

        return Tensor(out_data, _parents=(self,), _backward=backward)


# --------------------------------------------------------------------------- #
# free functions
# --------------------------------------------------------------------------- #
def concat(tensors: Iterable[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: Array) -> None:
        offset = 0
        for tensor, size in zip(tensors, sizes):
            if tensor._needs_graph:
                slicer: list = [slice(None)] * grad.ndim
                slicer[axis] = slice(offset, offset + size)
                tensor._accumulate(grad[tuple(slicer)])
            offset += size

    return Tensor(out_data, _parents=tuple(tensors), _backward=backward)


def segment_sum(values: Tensor, segment_ids: Array, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets (scatter-add)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = _scatter_add(segment_ids, values.data, num_segments)

    def backward(grad: Array) -> None:
        if values._needs_graph:
            values._accumulate(grad[segment_ids])

    return Tensor(out_data, _parents=(values,), _backward=backward)


def gather_scatter_sum(
    x: Tensor,
    src: Array,
    dst: Array,
    num_segments: int,
    weights: Array | None = None,
) -> Tensor | None:
    """Fused ``segment_sum(x.gather_rows(src) [* weights], dst)``.

    One cached CSR matrix-multiply replaces the gather copy, the optional
    per-edge weighting temporary and the scatter — the dominant per-layer
    memory traffic of message passing — with bit-identical results (entries
    are ordered exactly as the unfused accumulation visits them).  The
    backward pass is the transposed operator (built lazily, so
    inference-only sweeps never pay for it).  Returns ``None`` when the
    fused path is unavailable (reference mode, no scipy, or non-2D
    features); callers fall back to the composed ops.
    """
    if reference_encoding_active() or _scipy_sparse is None or x.data.ndim != 2:
        return None
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    matrices = SCATTER_INDEX_CACHE.adjacency(
        src, dst, num_segments, x.data.shape[0], weights, x.data.dtype
    )
    if matrices is None:
        return None
    out_data = matrices["forward"] @ x.data

    def backward(grad: Array) -> None:
        if x._needs_graph:
            transpose = matrices.get("transpose")
            if transpose is None:
                transpose = matrices["forward"].T.tocsr()
                matrices["transpose"] = transpose
            x._accumulate(transpose @ grad)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def embedding_linear(
    codes: Array,
    numeric: Array,
    weight: Tensor,
    bias: Tensor | None,
    split: int,
) -> Tensor:
    """First-layer encoding as an embedding gather folded into ``weight``.

    Computes ``dense @ weight (+ bias)`` where ``dense`` is the elided
    ``[one-hot(codes, split) | numeric]`` node matrix — without ever
    materializing the one-hot block: rows ``weight[:split]`` act as the
    ``(n_optypes, hidden)`` embedding table (one gather per node replaces
    each node's one-hot product, since a one-hot row times a matrix *is* a
    row lookup), and the numeric block multiplies ``weight[split:]`` as a
    small GEMM accumulated in place on top of the gathered rows.

    ``numeric`` is a plain array (union buffers never require gradients);
    gradients flow to ``weight`` — a scatter-add over the codes for the
    table rows, ``numericᵀ @ grad`` for the rest — and to ``bias``, exactly
    the expressions the dense product would produce.
    """
    codes = np.asarray(codes, dtype=np.int64)
    weight_data = weight.data
    # the numeric block follows the weight dtype so a float32 model never
    # silently runs its first-layer GEMM in float64
    if numeric.dtype != weight_data.dtype:
        numeric = numeric.astype(weight_data.dtype)
    out_data = weight_data[codes]
    if numeric.shape[1]:
        np.add(out_data, _stable_matmul(numeric, weight_data[split:]), out=out_data)
    if bias is not None:
        np.add(out_data, bias.data, out=out_data)

    def backward(grad: Array) -> None:
        if weight._needs_graph:
            weight_grad = np.zeros_like(weight_data)
            if codes.size:
                weight_grad[:split] = _scatter_add(codes, grad, split)
            if numeric.shape[1]:
                weight_grad[split:] = numeric.T @ grad
            weight._accumulate(weight_grad)
        if bias is not None and bias._needs_graph:
            bias._accumulate(_unbroadcast(grad, bias.data.shape))

    parents = (weight,) if bias is None else (weight, bias)
    return Tensor(out_data, _parents=parents, _backward=backward)


def linear_sum(
    a: Tensor, weight_a: Tensor, bias_a: Tensor | None,
    b: Tensor, weight_b: Tensor, bias_b: Tensor | None,
) -> Tensor:
    """``linear(a, Wa, ba) + linear(b, Wb, bb)`` as one fused node.

    Value-for-value the composed expression — both addends are computed
    exactly as :func:`linear` would and summed in the same association — but
    the sum accumulates in place into the first addend's buffer, saving one
    full-size output allocation per call (the SAGE ``self + neighbor``
    combination, once per layer per forward).
    """
    out_data = _stable_matmul(a.data, weight_a.data)
    if bias_a is not None:
        np.add(out_data, bias_a.data, out=out_data)
    other = _stable_matmul(b.data, weight_b.data)
    if bias_b is not None:
        np.add(other, bias_b.data, out=other)
    np.add(out_data, other, out=out_data)

    def backward(grad: Array) -> None:
        if a._needs_graph:
            a._accumulate(grad @ weight_a.data.T)
        if weight_a._needs_graph:
            weight_a._accumulate(a.data.T @ grad)
        if bias_a is not None and bias_a._needs_graph:
            bias_a._accumulate(_unbroadcast(grad, bias_a.data.shape))
        if b._needs_graph:
            b._accumulate(grad @ weight_b.data.T)
        if weight_b._needs_graph:
            weight_b._accumulate(b.data.T @ grad)
        if bias_b is not None and bias_b._needs_graph:
            bias_b._accumulate(_unbroadcast(grad, bias_b.data.shape))

    parents = tuple(
        tensor for tensor in (a, weight_a, bias_a, b, weight_b, bias_b)
        if tensor is not None
    )
    return Tensor(out_data, _parents=parents, _backward=backward)


def relu_add(y: Tensor, x: Tensor) -> Tensor:
    """``y.relu() + x`` as one fused node (the residual connection).

    Identical values to the composed ops — the clamp happens first, into a
    fresh buffer, and the skip input is added in place into that same
    buffer — with the same gradient expressions (masked into ``y``, full
    into ``x``).  Saves one full-size temporary per propagation layer.
    """
    out_data = np.maximum(y.data, 0.0)
    np.add(out_data, x.data, out=out_data)

    def backward(grad: Array) -> None:
        if y._needs_graph:
            y._accumulate(grad * (y.data > 0))
        if x._needs_graph:
            x._accumulate(grad)

    return Tensor(out_data, _parents=(y, x), _backward=backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None) -> Tensor:
    """``x @ weight (+ bias)`` as one fused node (in-place bias add).

    Identical bits to ``x.matmul(weight) + bias`` — the bias is added in
    place into the freshly-allocated matmul output instead of allocating a
    second full-size tensor — with the same gradient expressions.  Reference
    mode composes the original two ops.
    """
    if reference_encoding_active():
        out = x.matmul(weight)
        return out + bias if bias is not None else out
    out_data = _stable_matmul(x.data, weight.data)
    if bias is not None:
        np.add(out_data, bias.data, out=out_data)

    def backward(grad: Array) -> None:
        if x._needs_graph:
            x._accumulate(grad @ weight.data.T)
        if weight._needs_graph:
            weight._accumulate(x.data.T @ grad)
        if bias is not None and bias._needs_graph:
            bias._accumulate(_unbroadcast(grad, bias.data.shape))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor(out_data, _parents=parents, _backward=backward)


def segment_mean(values: Tensor, segment_ids: Array, num_segments: int) -> Tensor:
    """Average rows of ``values`` per segment (empty segments give zero)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if reference_encoding_active():
        counts = np.bincount(segment_ids, minlength=num_segments).astype(
            values.data.dtype
        )
        counts = np.maximum(counts, 1.0)
    else:
        counts = SCATTER_INDEX_CACHE.segment_counts(
            segment_ids, num_segments, values.data.dtype
        )
    counts = counts.reshape((num_segments,) + (1,) * (values.ndim - 1))
    return segment_sum(values, segment_ids, num_segments) * Tensor(1.0 / counts)


def segment_max(values: Tensor, segment_ids: Array, num_segments: int) -> Tensor:
    """Per-segment maximum; gradients flow to the arg-max rows only."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    feature_shape = values.data.shape[1:]
    out_data = np.full(
        (num_segments,) + feature_shape, -np.inf, dtype=values.data.dtype
    )
    segments = (
        SCATTER_INDEX_CACHE.sorted_segments(segment_ids)
        if not reference_encoding_active() and segment_ids.size and values.data.ndim >= 2
        else None
    )
    if segments is not None:
        starts, present = segments
        out_data[present] = np.maximum.reduceat(values.data, starts, axis=0)
    else:
        np.maximum.at(out_data, segment_ids, values.data)
    empty = np.isneginf(out_data)
    out_data = np.where(empty, 0.0, out_data)
    # rows achieving the maximum (ties share the gradient); outside the
    # reference pipeline the mask is derived lazily on the first backward
    # call, so inference-only passes skip it entirely
    state: dict = {}
    if reference_encoding_active():
        state["is_max"] = (
            np.isclose(values.data, out_data[segment_ids]) & ~empty[segment_ids]
        )

    def backward(grad: Array) -> None:
        if values._needs_graph:
            is_max = state.get("is_max")
            if is_max is None:
                is_max = (
                    np.isclose(values.data, out_data[segment_ids])
                    & ~empty[segment_ids]
                )
                state["is_max"] = is_max
            values._accumulate(grad[segment_ids] * is_max)

    return Tensor(out_data, _parents=(values,), _backward=backward)


def segment_softmax(scores: Tensor, segment_ids: Array, num_segments: int) -> Tensor:
    """Softmax over the entries of each segment (used for attention)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    maxima = segment_max(scores, segment_ids, num_segments)
    shifted = scores - maxima.gather_rows(segment_ids)
    exped = shifted.exp()
    denominators = segment_sum(exped, segment_ids, num_segments)
    return exped / (denominators.gather_rows(segment_ids) + 1e-12)


def stack_rows(tensors: list[Tensor]) -> Tensor:
    """Stack 1-D tensors into a matrix (row per tensor)."""
    out_data = np.stack([t.data for t in tensors])

    def backward(grad: Array) -> None:
        for row, tensor in enumerate(tensors):
            if tensor._needs_graph:
                tensor._accumulate(grad[row])

    return Tensor(out_data, _parents=tuple(tensors), _backward=backward)


__all__ = [
    "Tensor", "concat", "segment_sum", "segment_mean", "segment_max",
    "segment_softmax", "stack_rows", "gather_scatter_sum", "linear",
    "linear_sum", "relu_add", "embedding_linear", "reference_encoding",
    "reference_encoding_active", "SCATTER_INDEX_CACHE",
    "precision", "active_precision", "active_dtype", "PRECISION_DTYPES",
]
