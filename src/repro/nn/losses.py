"""Regression losses and evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    difference = prediction - target
    return (difference * difference).mean()


def mae_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, robust to occasional large label values."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    difference = (prediction - target).abs()
    quadratic = difference * difference * 0.5
    linear = difference * delta - 0.5 * delta * delta
    mask = (difference.data <= delta).astype(np.float64)
    combined = quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)
    return combined.mean()


def mape(prediction: np.ndarray, target: np.ndarray, epsilon: float = 1.0) -> float:
    """Mean absolute percentage error (the paper's accuracy metric).

    QoR targets are counts (cycles, LUTs, DSPs, ...), so the denominator is
    floored at ``epsilon = 1`` to keep zero-valued targets (e.g. a design
    using no DSP blocks) from producing unbounded percentages.
    """
    prediction = np.asarray(prediction, dtype=np.float64).reshape(-1)
    target = np.asarray(target, dtype=np.float64).reshape(-1)
    denominator = np.maximum(np.abs(target), epsilon)
    return float(np.mean(np.abs(prediction - target) / denominator) * 100.0)


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    prediction = np.asarray(prediction, dtype=np.float64).reshape(-1)
    target = np.asarray(target, dtype=np.float64).reshape(-1)
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


__all__ = ["mse_loss", "mae_loss", "huber_loss", "mape", "rmse"]
