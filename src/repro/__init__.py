"""repro — Hierarchical source-to-post-route QoR prediction for FPGA HLS.

A from-scratch Python reproduction of "Hierarchical Source-to-Post-Route QoR
Prediction in High-Level Synthesis with GNNs" (DATE 2024): an HLS-C front-end
and IR, pragma-aware CDFG construction, an HLS + place-and-route flow
simulator for ground-truth labels, a numpy GNN framework, the hierarchical
GNNp/GNNnp/GNNg prediction pipeline, comparison baselines and a design-space
exploration engine.

Quick start::

    from repro.kernels import load_kernel
    from repro.frontend import PragmaConfig, LoopDirective
    from repro.hls import run_full_flow

    gemm = load_kernel("gemm")
    config = PragmaConfig.from_dicts(loops={"L0_0_0": LoopDirective(pipeline=True)})
    print(run_full_flow(gemm, config).as_dict())

See ``examples/quickstart.py`` for the full train-and-predict loop.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
