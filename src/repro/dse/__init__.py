"""Design-space exploration: space enumeration, Pareto analysis, explorers."""

from repro.dse.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    SweepCheckpoint,
    load_checkpoint,
    save_checkpoint,
    space_fingerprint,
)
from repro.dse.explorer import (
    DSEResult,
    FunnelDSEResult,
    FunnelExplorer,
    GroundTruthSpace,
    ModelGuidedExplorer,
    exhaustive_ground_truth,
    oracle_dse,
    qor_objectives,
    resource_cost,
)
from repro.dse.pareto import (
    DesignPoint,
    ParetoFront,
    adrs,
    dominates,
    fronts_bit_equal,
    hypervolume_2d,
    merge_fronts,
    normalize_objectives,
    pareto_front,
)
from repro.dse.sharding import (
    SHARD_STRATEGIES,
    ShardedDSEResult,
    ShardedExplorer,
    ShardSpec,
    fronts_equivalent,
    fronts_match,
    partition_space,
    predicted_front,
)
from repro.dse.space import (
    UNROLL_FACTORS,
    DedupedSpace,
    DesignClass,
    DesignSpace,
    LoopChain,
    enumerate_design_space,
    loop_chains,
    sample_design_space,
)

__all__ = [
    "CHECKPOINT_VERSION", "CheckpointWriter", "SweepCheckpoint",
    "load_checkpoint", "save_checkpoint", "space_fingerprint",
    "DSEResult", "FunnelDSEResult", "FunnelExplorer", "GroundTruthSpace",
    "ModelGuidedExplorer",
    "exhaustive_ground_truth", "oracle_dse", "qor_objectives", "resource_cost",
    "DesignPoint", "ParetoFront", "adrs", "dominates", "fronts_bit_equal",
    "hypervolume_2d", "merge_fronts", "normalize_objectives", "pareto_front",
    "SHARD_STRATEGIES", "ShardedDSEResult", "ShardedExplorer", "ShardSpec",
    "fronts_equivalent", "fronts_match", "partition_space", "predicted_front",
    "UNROLL_FACTORS", "DedupedSpace", "DesignClass", "DesignSpace",
    "LoopChain", "enumerate_design_space", "loop_chains",
    "sample_design_space",
]
