"""Design-space exploration: space enumeration, Pareto analysis, explorers."""

from repro.dse.explorer import (
    DSEResult,
    GroundTruthSpace,
    ModelGuidedExplorer,
    exhaustive_ground_truth,
    oracle_dse,
    qor_objectives,
    resource_cost,
)
from repro.dse.pareto import (
    DesignPoint,
    adrs,
    dominates,
    hypervolume_2d,
    normalize_objectives,
    pareto_front,
)
from repro.dse.space import (
    UNROLL_FACTORS,
    LoopChain,
    enumerate_design_space,
    loop_chains,
    sample_design_space,
)

__all__ = [
    "DSEResult", "GroundTruthSpace", "ModelGuidedExplorer",
    "exhaustive_ground_truth", "oracle_dse", "qor_objectives", "resource_cost",
    "DesignPoint", "adrs", "dominates", "hypervolume_2d",
    "normalize_objectives", "pareto_front",
    "UNROLL_FACTORS", "LoopChain", "enumerate_design_space", "loop_chains",
    "sample_design_space",
]
