"""Pareto-front utilities and the ADRS metric.

DSE quality is measured with the average distance from reference set (ADRS):
the mean, over points of the exact Pareto front, of the distance to the
closest point of the approximate front found by a method.  Lower is better.

Two front representations live here:

* :func:`pareto_front` — a one-shot function over a list of points, used by
  the explorers and the evaluation bookkeeping;
* :class:`ParetoFront` — an **incremental, mergeable** front used by the
  sharded DSE engine (:mod:`repro.dse.sharding`).  Its result is a pure
  function of the *set* of points fed to it — insertion order, chunking and
  shard boundaries never change the outcome — which is what makes the
  multi-worker Pareto merge deterministic (see the class docstring for the
  exact tie-break and ordering rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its configuration key and objective values.

    Objectives are minimized.  For the paper's DSE we use latency and a
    resource cost; any number of objectives is supported.
    """

    key: str
    objectives: tuple[float, ...]
    metadata: dict = field(default_factory=dict, hash=False, compare=False)


def dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated subset of ``points`` (duplicates collapse to one)."""
    front: list[DesignPoint] = []
    seen: set[tuple[float, ...]] = set()
    for candidate in points:
        if any(
            dominates(other.objectives, candidate.objectives)
            for other in points
            if other is not candidate
        ):
            continue
        if candidate.objectives in seen:
            continue
        seen.add(candidate.objectives)
        front.append(candidate)
    return front


class ParetoFront:
    """Incremental Pareto front with a deterministic merge.

    Points are added with a stable integer ``order`` (the sharded engine
    uses the configuration id assigned by
    :class:`~repro.dse.space.DesignSpace`).  The front maintains three
    invariants that together make it **order-independent**:

    * a point is kept iff no other added point Pareto-dominates it;
    * of several points with *identical* objective vectors, the one with the
      smallest ``order`` is kept (the deterministic tie-break);
    * :meth:`points` returns members sorted lexicographically by
      ``(objectives, order)``.

    Because each rule depends only on the multiset of ``(objectives,
    order)`` pairs ever added, any partition of a point set into shards,
    reduced per shard and combined with :meth:`merge` (or
    :func:`merge_fronts`), yields a front *identical* — same members, same
    tie-break winners, same output order — to feeding every point through a
    single front.  This is the determinism guarantee the multi-worker DSE
    coordinator relies on.
    """

    __slots__ = ("_entries", "_auto_order")

    def __init__(self) -> None:
        self._entries: list[tuple[tuple[float, ...], int, DesignPoint]] = []
        self._auto_order = 0

    @classmethod
    def from_points(
        cls, points: Iterable[DesignPoint], orders: Iterable[int] | None = None
    ) -> "ParetoFront":
        """Build a front from points (``orders`` defaults to enumeration)."""
        front = cls()
        if orders is None:
            for point in points:
                front.add(point)
        else:
            for point, order in zip(points, orders):
                front.add(point, order)
        return front

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self.points())

    def add(self, point: DesignPoint, order: int | None = None) -> bool:
        """Offer one point to the front; returns True if it was retained.

        ``order`` is the point's stable identity for tie-breaking.  When
        omitted, an insertion counter is used — fine within one process, but
        callers that need cross-process determinism (the sharded engine)
        must pass an id that is stable across any partition of the points.
        """
        if order is None:
            order = self._auto_order
        self._auto_order = max(self._auto_order, order) + 1
        objectives = point.objectives
        for index, (existing, existing_order, _) in enumerate(self._entries):
            if existing == objectives:
                if order < existing_order:
                    self._entries[index] = (objectives, order, point)
                    return True
                return False
            if dominates(existing, objectives):
                return False
        self._entries = [
            entry for entry in self._entries if not dominates(objectives, entry[0])
        ]
        self._entries.append((objectives, order, point))
        return True

    def merge(self, other: "ParetoFront") -> "ParetoFront":
        """Fold another front into this one (in place); returns ``self``.

        ``front(A) ∪ front(B)`` reduced again equals ``front(A ∪ B)``:
        dropping dominated points inside a shard can never discard a member
        of the global front, so merging per-shard fronts loses nothing.
        """
        for objectives, order, point in other._entries:
            self.add(point, order)
        return self

    def points(self) -> list[DesignPoint]:
        """Front members in canonical ``(objectives, order)`` order."""
        return [
            point
            for _, _, point in sorted(self._entries, key=lambda e: (e[0], e[1]))
        ]

    def orders(self) -> list[int]:
        """Stable orders of the members, aligned with :meth:`points`."""
        return [
            order
            for _, order, _ in sorted(self._entries, key=lambda e: (e[0], e[1]))
        ]


def merge_fronts(fronts: Iterable[ParetoFront]) -> ParetoFront:
    """Merge per-shard fronts into one (deterministic, order-independent).

    The result equals the :class:`ParetoFront` of the union of all points
    ever offered to any of the inputs — see the class docstring for why.
    """
    merged = ParetoFront()
    for front in fronts:
        merged.merge(front)
    return merged


def fronts_bit_equal(a: list[DesignPoint], b: list[DesignPoint]) -> bool:
    """True when two fronts are *bit-identical*: same length, and pairwise
    equal keys and objective vectors (``==`` on floats, no tolerance).

    This is the tightened cross-process guarantee: with effective-directive
    canonicalization, every process scores a duplicate design through one
    canonical signature, so equivalent design points can no longer produce
    ulp-level different objectives — coordinator and single-process fronts
    must match exactly, not merely within tolerance.
    """
    if len(a) != len(b):
        return False
    return all(
        pa.key == pb.key and pa.objectives == pb.objectives
        for pa, pb in zip(a, b)
    )


def _normalized_distance(
    reference: tuple[float, ...], candidate: tuple[float, ...]
) -> float:
    """Relative worst-dimension gap of ``candidate`` vs ``reference``.

    The standard ADRS distance ``f(gamma, omega)``: the maximum over
    objectives of the relative degradation, clipped at zero (a candidate that
    is better in one dimension is not rewarded for it).
    """
    worst = 0.0
    for ref_value, cand_value in zip(reference, candidate):
        denominator = abs(ref_value) if abs(ref_value) > 1e-12 else 1.0
        worst = max(worst, (cand_value - ref_value) / denominator)
    return max(0.0, worst)


def adrs(exact_front: list[DesignPoint], approx_front: list[DesignPoint]) -> float:
    """Average distance from reference set, as a fraction (0.069 = 6.91 %)."""
    if not exact_front:
        return 0.0
    if not approx_front:
        return float("inf")
    total = 0.0
    for reference in exact_front:
        total += min(
            _normalized_distance(reference.objectives, candidate.objectives)
            for candidate in approx_front
        )
    return total / len(exact_front)


def hypervolume_2d(
    front: list[DesignPoint], reference_point: tuple[float, float]
) -> float:
    """2-D hypervolume of a front w.r.t. a reference point (minimization)."""
    if not front:
        return 0.0
    points = sorted(
        {p.objectives[:2] for p in front
         if p.objectives[0] <= reference_point[0]
         and p.objectives[1] <= reference_point[1]}
    )
    if not points:
        return 0.0
    volume = 0.0
    previous_y = reference_point[1]
    for x, y in points:
        if y < previous_y:
            volume += (reference_point[0] - x) * (previous_y - y)
            previous_y = y
    return volume


def normalize_objectives(points: list[DesignPoint]) -> list[DesignPoint]:
    """Scale every objective to [0, 1] over the given set of points."""
    if not points:
        return []
    matrix = np.array([p.objectives for p in points], dtype=np.float64)
    minima = matrix.min(axis=0)
    maxima = matrix.max(axis=0)
    span = np.maximum(maxima - minima, 1e-12)
    normalized = (matrix - minima) / span
    return [
        DesignPoint(key=p.key, objectives=tuple(row), metadata=p.metadata)
        for p, row in zip(points, normalized)
    ]


__all__ = [
    "DesignPoint", "dominates", "pareto_front", "ParetoFront", "merge_fronts",
    "fronts_bit_equal", "adrs", "hypervolume_2d", "normalize_objectives",
]
