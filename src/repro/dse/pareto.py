"""Pareto-front utilities and the ADRS metric.

DSE quality is measured with the average distance from reference set (ADRS):
the mean, over points of the exact Pareto front, of the distance to the
closest point of the approximate front found by a method.  Lower is better.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its configuration key and objective values.

    Objectives are minimized.  For the paper's DSE we use latency and a
    resource cost; any number of objectives is supported.
    """

    key: str
    objectives: tuple[float, ...]
    metadata: dict = field(default_factory=dict, hash=False, compare=False)


def dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated subset of ``points`` (duplicates collapse to one)."""
    front: list[DesignPoint] = []
    seen: set[tuple[float, ...]] = set()
    for candidate in points:
        if any(
            dominates(other.objectives, candidate.objectives)
            for other in points
            if other is not candidate
        ):
            continue
        if candidate.objectives in seen:
            continue
        seen.add(candidate.objectives)
        front.append(candidate)
    return front


def _normalized_distance(
    reference: tuple[float, ...], candidate: tuple[float, ...]
) -> float:
    """Relative worst-dimension gap of ``candidate`` vs ``reference``.

    The standard ADRS distance ``f(gamma, omega)``: the maximum over
    objectives of the relative degradation, clipped at zero (a candidate that
    is better in one dimension is not rewarded for it).
    """
    worst = 0.0
    for ref_value, cand_value in zip(reference, candidate):
        denominator = abs(ref_value) if abs(ref_value) > 1e-12 else 1.0
        worst = max(worst, (cand_value - ref_value) / denominator)
    return max(0.0, worst)


def adrs(exact_front: list[DesignPoint], approx_front: list[DesignPoint]) -> float:
    """Average distance from reference set, as a fraction (0.069 = 6.91 %)."""
    if not exact_front:
        return 0.0
    if not approx_front:
        return float("inf")
    total = 0.0
    for reference in exact_front:
        total += min(
            _normalized_distance(reference.objectives, candidate.objectives)
            for candidate in approx_front
        )
    return total / len(exact_front)


def hypervolume_2d(
    front: list[DesignPoint], reference_point: tuple[float, float]
) -> float:
    """2-D hypervolume of a front w.r.t. a reference point (minimization)."""
    if not front:
        return 0.0
    points = sorted(
        {p.objectives[:2] for p in front
         if p.objectives[0] <= reference_point[0]
         and p.objectives[1] <= reference_point[1]}
    )
    if not points:
        return 0.0
    volume = 0.0
    previous_y = reference_point[1]
    for x, y in points:
        if y < previous_y:
            volume += (reference_point[0] - x) * (previous_y - y)
            previous_y = y
    return volume


def normalize_objectives(points: list[DesignPoint]) -> list[DesignPoint]:
    """Scale every objective to [0, 1] over the given set of points."""
    if not points:
        return []
    matrix = np.array([p.objectives for p in points], dtype=np.float64)
    minima = matrix.min(axis=0)
    maxima = matrix.max(axis=0)
    span = np.maximum(maxima - minima, 1e-12)
    normalized = (matrix - minima) / span
    return [
        DesignPoint(key=p.key, objectives=tuple(row), metadata=p.metadata)
        for p, row in zip(points, normalized)
    ]


__all__ = [
    "DesignPoint", "dominates", "pareto_front", "adrs", "hypervolume_2d",
    "normalize_objectives",
]
