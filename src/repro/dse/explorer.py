"""Design-space exploration engines (Section IV-D).

Three explorers are provided:

* :func:`exhaustive_ground_truth` — runs the complete C-to-bitstream flow for
  every configuration; its (simulated) tool runtime is what the paper reports
  as the "Vivado" DSE time, and its Pareto front is the exact reference set;
* :class:`ModelGuidedExplorer` — queries a QoR prediction function for every
  configuration, selects the predicted-Pareto-optimal configurations, and is
  evaluated by the ADRS between the *true* QoR of its selections and the
  exact front;
* :class:`FunnelExplorer` — a two-stage funnel: a cheap boosted-tree
  surrogate (distilled from the hierarchical model's own predictions on a
  small sample) scores the *whole* space, only the Pareto-plausible
  candidates it surfaces are re-ranked by the full hierarchical model.  The
  surrogate's measured fit error sets how wide the funnel opens, so a sloppy
  surrogate automatically keeps more candidates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dse.pareto import DesignPoint, adrs, pareto_front
from repro.frontend.pragmas import PragmaConfig
from repro.hls.flow import run_full_flow
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.reports import QoRResult
from repro.ir.structure import IRFunction

#: relative LUT-equivalent weights used to fold LUT/FF/DSP into one area cost
_DSP_LUT_EQUIVALENT = 100.0
_FF_LUT_EQUIVALENT = 0.5


def resource_cost(metrics: dict[str, float]) -> float:
    """Scalar area objective combining LUT, FF and DSP usage."""
    return (
        float(metrics.get("lut", 0.0))
        + _FF_LUT_EQUIVALENT * float(metrics.get("ff", 0.0))
        + _DSP_LUT_EQUIVALENT * float(metrics.get("dsp", 0.0))
    )


def qor_objectives(metrics: dict[str, float]) -> tuple[float, float]:
    """The two DSE objectives: latency and area cost (both minimized)."""
    return (float(metrics.get("latency", 0.0)), resource_cost(metrics))


@dataclass
class GroundTruthSpace:
    """Exhaustively evaluated design space of one kernel."""

    kernel: str
    configs: list[PragmaConfig]
    results: dict[str, QoRResult]
    simulated_tool_seconds: float

    @property
    def num_configs(self) -> int:
        """Number of evaluated configurations in the space."""
        return len(self.configs)

    def design_points(self) -> list[DesignPoint]:
        """Every configuration as a :class:`DesignPoint` with true QoR."""
        return [
            DesignPoint(
                key=config.key(),
                objectives=qor_objectives(self.results[config.key()].as_dict()),
                metadata={"config": config},
            )
            for config in self.configs
        ]

    def exact_front(self) -> list[DesignPoint]:
        """The reference Pareto front over the true (flow-simulated) QoR."""
        return pareto_front(self.design_points())

    def true_front_of(self, selected_keys: list[str]) -> list[DesignPoint]:
        """Pareto front of the *true* QoR of a selected subset of designs.

        The evaluation step shared by every explorer: a model selects
        configurations (by key), and its quality is judged on the front
        their ground-truth QoR forms — which :func:`~repro.dse.pareto.adrs`
        then compares against :meth:`exact_front`.
        """
        return pareto_front([
            DesignPoint(
                key=key, objectives=qor_objectives(self.results[key].as_dict())
            )
            for key in selected_keys
        ])


def exhaustive_ground_truth(
    function: IRFunction,
    configs: list[PragmaConfig],
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> GroundTruthSpace:
    """Evaluate every configuration with the full flow (the reference DSE)."""
    results: dict[str, QoRResult] = {}
    tool_seconds = 0.0
    for config in configs:
        qor = run_full_flow(function, config, library=library)
        results[config.key()] = qor
        tool_seconds += qor.total_flow_runtime
    return GroundTruthSpace(
        kernel=function.name, configs=list(configs), results=results,
        simulated_tool_seconds=tool_seconds,
    )


@dataclass
class DSEResult:
    """Outcome of one model-guided exploration.

    ``model_seconds`` covers *model prediction only* (graph construction +
    forward passes); Pareto bookkeeping is excluded so ``configs_per_second``
    measures the inference engine itself.  ``explore_seconds`` is the full
    exploration wall time (prediction + Pareto selection) and is what
    :attr:`speedup` compares against the exhaustive flow.
    """

    kernel: str
    num_configs: int
    adrs: float
    model_seconds: float
    simulated_tool_seconds: float
    selected_keys: list[str] = field(default_factory=list)
    exact_front: list[DesignPoint] = field(default_factory=list)
    approx_front: list[DesignPoint] = field(default_factory=list)
    #: whether the batched prediction path produced the QoR estimates
    batched: bool = False
    #: total exploration wall time; 0 means "not measured" (falls back to
    #: ``model_seconds`` in :attr:`speedup`)
    explore_seconds: float = 0.0
    #: inference-cache counters captured after the sweep (empty when the
    #: explorer was not given a ``cache_stats_fn``) — lets callers see how
    #: much of a sweep was served from warm state (e.g. ``--warm-cache``)
    cache_stats: dict = field(default_factory=dict)

    @property
    def adrs_percent(self) -> float:
        """ADRS as a percentage (the unit the paper reports)."""
        return self.adrs * 100.0

    @property
    def configs_per_second(self) -> float:
        """Prediction throughput of the exploration (configs / model second)."""
        if self.model_seconds <= 0:
            return float("inf")
        return self.num_configs / self.model_seconds

    @property
    def speedup(self) -> float:
        """Exhaustive tool time divided by model-guided exploration time."""
        denominator = self.explore_seconds if self.explore_seconds > 0 else self.model_seconds
        if denominator <= 0:
            return float("inf")
        return self.simulated_tool_seconds / denominator


class ModelGuidedExplorer:
    """DSE driven by a QoR prediction function.

    ``predict_fn(function, config)`` must return a dict with at least
    ``latency``, ``lut``, ``ff`` and ``dsp`` (predicted values).  When a
    ``predict_batch_fn(function, configs) -> list[dict]`` is supplied (e.g.
    :meth:`HierarchicalQoRModel.predict_batch`), the whole space is scored in
    a handful of disjoint-union forward passes instead of one model call per
    configuration.  The explorer ranks all configurations by predicted
    Pareto-optimality and returns the selected set; ADRS is computed against
    the exact front using the *actual* QoR of the selected configurations.
    """

    def __init__(
        self,
        predict_fn: Callable[[IRFunction, PragmaConfig], dict[str, float]] | None = None,
        name: str = "model",
        *,
        predict_batch_fn: Callable[
            [IRFunction, list[PragmaConfig]], list[dict[str, float]]
        ] | None = None,
        cache_stats_fn: Callable[[], dict] | None = None,
    ):
        if predict_fn is None and predict_batch_fn is None:
            raise ValueError("provide predict_fn and/or predict_batch_fn")
        self.predict_fn = predict_fn
        self.predict_batch_fn = predict_batch_fn
        self.cache_stats_fn = cache_stats_fn
        self.name = name

    def explore(
        self,
        function: IRFunction,
        space: GroundTruthSpace,
    ) -> DSEResult:
        """Explore one kernel's design space guided by the model.

        Scores every configuration of ``space`` (batched when a
        ``predict_batch_fn`` is available), selects the predicted-Pareto
        set, and evaluates it against the exact front: the returned
        :class:`DSEResult` carries the ADRS of the selections (computed on
        their *true* QoR), prediction-only and end-to-end timings, and the
        speedup over the exhaustive flow.
        """
        # time model prediction only; Pareto bookkeeping happens off the clock
        batched = self.predict_batch_fn is not None
        start = time.perf_counter()
        if batched:
            metrics_list = self.predict_batch_fn(function, space.configs)
        else:
            metrics_list = [
                self.predict_fn(function, config) for config in space.configs
            ]
        model_seconds = time.perf_counter() - start

        predicted_points = [
            DesignPoint(
                key=config.key(),
                objectives=qor_objectives(metrics),
                metadata={"config": config},
            )
            for config, metrics in zip(space.configs, metrics_list)
        ]
        predicted_front = pareto_front(predicted_points)
        selected_keys = [point.key for point in predicted_front]
        # the exploration a deployed user pays for ends here: what follows
        # (true-QoR lookups, exact front, ADRS) is evaluation bookkeeping
        explore_seconds = time.perf_counter() - start
        # the approximate reference set is the TRUE QoR of the selected designs
        approx_front = space.true_front_of(selected_keys)
        exact_front = space.exact_front()
        return DSEResult(
            kernel=space.kernel,
            num_configs=space.num_configs,
            adrs=adrs(exact_front, approx_front),
            model_seconds=model_seconds,
            simulated_tool_seconds=space.simulated_tool_seconds,
            selected_keys=selected_keys,
            exact_front=exact_front,
            approx_front=approx_front,
            batched=batched,
            explore_seconds=explore_seconds,
            cache_stats=dict(self.cache_stats_fn()) if self.cache_stats_fn else {},
        )


@dataclass
class FunnelDSEResult(DSEResult):
    """Outcome of one surrogate-first funnel exploration.

    Extends :class:`DSEResult` with the funnel's own accounting: how many
    configurations actually reached the full hierarchical model
    (``full_model_configs``, including the distillation sample), how many the
    surrogate filtered away (``configs_saved``), the candidate budget
    (``keep``) and whether it was chosen adaptively, and the surrogate's
    measured fit error in normalized objective units (``surrogate_spread``)
    that sized the adaptive budget.  ``configs_per_second`` inherited from the base class is
    the *effective* throughput: the whole space divided by total funnel time
    (surrogate fit + surrogate sweep + full-model re-rank).
    """

    surrogate_seconds: float = 0.0
    full_model_configs: int = 0
    configs_saved: int = 0
    keep: int = 0
    adaptive_keep: bool = True
    surrogate_spread: float = 0.0
    #: surrogate refit rounds the active-learning loop ran (0 = degenerate)
    rounds: int = 0


def _plausibility_regret(normalized: np.ndarray) -> np.ndarray:
    """Distance of each row to Pareto-plausibility, in normalized space.

    ``normalized`` is an objective matrix min-max scaled to [0, 1] per
    column; each row's regret is the smallest worst-dimension gap to any
    member of the (normalized) Pareto front — exactly the ADRS point
    distance, but measured on the surrogate's predicted objectives.  Front
    members score 0; the further a point sits behind the front, the larger
    its regret.
    """
    count = normalized.shape[0]
    front_mask = np.ones(count, dtype=bool)
    for index in range(count):
        others = np.delete(normalized, index, axis=0)
        dominated = np.any(
            np.all(others <= normalized[index], axis=1)
            & np.any(others < normalized[index], axis=1)
        )
        front_mask[index] = not dominated
    front = normalized[front_mask]
    # regret = min over front members of the worst-dimension shortfall
    gaps = normalized[:, None, :] - front[None, :, :]
    return np.maximum(gaps.max(axis=2), 0.0).min(axis=1)


def _funnel_features(
    function: IRFunction, configs: list[PragmaConfig]
) -> np.ndarray:
    """Config-resolved feature matrix for the funnel surrogate.

    Unlike :func:`repro.baselines.gbm.extract_features` — which profiles the
    *code* and summarizes pragmas into kernel-level aggregates — these rows
    must separate configurations of one fixed kernel, so they spell out
    every pragma site individually: per-loop effective unroll factor (log2),
    pipeline and flatten bits, and per-array partition bank count.  Loops
    and arrays are visited in sorted order, so the row layout is identical
    for every configuration of a kernel.

    Configurations are canonicalized to their effective form first, so
    HLS-equivalent design points get identical surrogate rows — the ridge
    fit cannot be told apart by directives HLS ignores, and its ranking is
    consistent with the full model's (which canonicalizes the same way).
    """
    from repro.flags import canonical_directives_active
    from repro.hls.directives import (
        canonicalize_config,
        effective_unroll_factors,
        partition_banks,
    )
    from repro.ir.passes import loop_nest_analysis

    labels = sorted(loop_nest_analysis(function))
    arrays = sorted(function.arrays)
    rows = np.empty((len(configs), 3 * len(labels) + len(arrays)))
    for index, config in enumerate(configs):
        if canonical_directives_active():
            config = canonicalize_config(function, config)
        unroll = effective_unroll_factors(function, config)
        row = []
        for label in labels:
            directive = config.loop(label)
            row.append(np.log2(float(max(1, unroll.get(label, 1)))))
            row.append(float(bool(directive.pipeline)))
            row.append(float(bool(directive.flatten)))
        for name in arrays:
            row.append(float(
                partition_banks(function.arrays[name], config.array(name))
            ))
        rows[index] = row
    return rows


#: adaptive funnel budget: never fewer full-model scores than this (small
#: spaces are cheap to score well), never more than this fraction of the
#: space (large spaces are where the funnel pays)
_MIN_FUNNEL_BUDGET = 96
_FUNNEL_KEEP_FRACTION = 0.5


def _quadratic_design(features: np.ndarray) -> np.ndarray:
    """Quadratic ridge design matrix: intercept, features, all products.

    Pairwise products capture exactly the structure of the underlying QoR
    surfaces — latency and resources are near-multiplicative in unroll
    factors, pipeline toggles and partition banks, so in log-objective space
    the interaction of two pragma sites is (to first order) a product term.
    """
    count, width = features.shape
    columns = [np.ones((count, 1)), features]
    for i in range(width):
        columns.append(features[:, i:] * features[:, i:i + 1])
    return np.concatenate(columns, axis=1)


def _ridge_solve(
    design: np.ndarray, targets: np.ndarray, lam: float = 1e-3
) -> np.ndarray:
    """Ridge-regularized least squares (normal equations; tiny systems)."""
    gram = design.T @ design + lam * np.eye(design.shape[1])
    return np.linalg.solve(gram, design.T @ targets)


class FunnelExplorer:
    """Surrogate-first DSE funnel: filter with a ridge model, score with the GNN.

    An active-learning funnel over one kernel's design space.  A strided
    sample of configurations is scored by ``predict_batch_fn`` (the full
    hierarchical model); a quadratic ridge surrogate — log-space
    least-squares on config-resolved pragma features
    (:func:`_funnel_features`), microseconds to fit — is distilled from
    those scores and sweeps the *whole* space for free.  Each round, the
    unscored configurations that the surrogate still ranks Pareto-plausible
    (normalized regret behind the surrogate front within ``margin_scale``
    times the surrogate's out-of-fold fit error) are scored with the full
    model and fed back into the surrogate, which sharpens exactly where the
    front lives.  The funnel closes when no unscored configuration is
    plausible — or when the budget cap (an explicit ``keep``, else
    ``max(96, half the space)``) is spent.  The final front is selected from
    full-model scores only; the surrogate decides what to *score*, never
    what to *select*.

    ``surrogate="gbm"`` swaps the ridge for the
    :class:`~repro.baselines.gbm.GradientBoostingRegressor` boosted trees
    (the Zhong-et-al.-style baseline regressor) — same funnel, ~100x the
    distillation cost; useful for comparing surrogate families, not for
    beating the matmul floor.

    ``predict_batch_fn(function, configs) -> list[dict]`` is the only model
    interface required (e.g. ``QoRPredictor.predict_batch`` or a lambda that
    pins a precision tier).  No ground-truth labels are consumed anywhere.
    """

    def __init__(
        self,
        predict_batch_fn: Callable[
            [IRFunction, list[PragmaConfig]], list[dict[str, float]]
        ],
        *,
        keep: int | None = None,
        sample_size: int | None = None,
        margin_scale: float = 2.0,
        min_keep: int = 8,
        max_rounds: int = 12,
        surrogate: str = "ridge",
        name: str = "funnel",
        cache_stats_fn: Callable[[], dict] | None = None,
    ):
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        if sample_size is not None and sample_size < 2:
            raise ValueError(f"sample_size must be >= 2, got {sample_size}")
        if surrogate not in ("ridge", "gbm"):
            raise ValueError(f"unknown surrogate {surrogate!r}; "
                             "available: 'ridge', 'gbm'")
        self.predict_batch_fn = predict_batch_fn
        #: explicit full-model budget; None = adaptive (max(96, half the space))
        self.keep = keep
        #: None = adaptive: an eighth of the space, at least 16 configs
        self.sample_size = sample_size
        self.margin_scale = margin_scale
        self.min_keep = max(1, min_keep)
        self.max_rounds = max(1, max_rounds)
        self.surrogate = surrogate
        self.name = name
        self.cache_stats_fn = cache_stats_fn

    # ------------------------------------------------------------------ #
    def _surrogate_sweep(
        self,
        design: np.ndarray,
        labeled_indices: np.ndarray,
        labeled_objectives: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fit the surrogate on the labeled rows; score every row.

        Returns the surrogate's objective matrix for the whole space and its
        *out-of-fold* absolute errors on the labeled rows (two alternating
        folds, each predicted by a model fitted on the other).  Out-of-fold
        rather than training error: both surrogate families nearly
        interpolate a few dozen points, so the training residual would
        flatter the surrogate and close the funnel on true-front members it
        actually misplaces.
        """
        targets = np.log1p(np.maximum(labeled_objectives, 0.0))
        train_rows = design[labeled_indices]
        folds = np.arange(len(labeled_indices)) % 2

        if self.surrogate == "ridge":
            coef = _ridge_solve(train_rows, targets)
            predicted = np.expm1(design @ coef)
            out_of_fold = np.empty_like(targets)
            for fold in (0, 1):
                held_out = folds == fold
                half = _ridge_solve(train_rows[~held_out], targets[~held_out])
                out_of_fold[held_out] = train_rows[held_out] @ half
        else:
            from repro.baselines.gbm import GradientBoostingRegressor

            def boosted(rows: np.ndarray, values: np.ndarray):
                model = GradientBoostingRegressor(
                    n_estimators=60, learning_rate=0.15,
                    max_depth=3, min_samples_leaf=2,
                )
                return model.fit(rows, values)

            predicted = np.empty((design.shape[0], targets.shape[1]))
            out_of_fold = np.empty_like(targets)
            for column in range(targets.shape[1]):
                model = boosted(train_rows, targets[:, column])
                predicted[:, column] = np.expm1(model.predict(design))
                for fold in (0, 1):
                    held_out = folds == fold
                    half = boosted(
                        train_rows[~held_out], targets[~held_out, column]
                    )
                    out_of_fold[held_out, column] = half.predict(
                        train_rows[held_out]
                    )
        fit_errors = np.abs(np.expm1(out_of_fold) - labeled_objectives)
        return predicted, fit_errors

    def explore(
        self, function: IRFunction, space: GroundTruthSpace
    ) -> FunnelDSEResult:
        """Run the active-learning funnel over one kernel's design space.

        Returns a :class:`FunnelDSEResult` whose ADRS is computed — exactly
        as for :class:`ModelGuidedExplorer` — on the true QoR of the
        selected configurations against the exact front, so the two engines
        are directly comparable.  Spaces no bigger than the full-model
        budget skip the surrogate entirely (every configuration is
        full-model scored, nothing is saved).
        """
        configs = space.configs
        total = len(configs)
        if self.keep is not None:
            budget = min(self.keep, total)
        else:
            budget = min(
                max(_MIN_FUNNEL_BUDGET,
                    int(np.ceil(_FUNNEL_KEEP_FRACTION * total))),
                total,
            )
        start = time.perf_counter()
        surrogate_seconds = 0.0
        spread = 0.0
        rounds = 0
        if budget >= total:
            # degenerate funnel: the budget covers the space
            metrics_by_index: dict[int, dict[str, float]] = dict(
                enumerate(self.predict_batch_fn(function, list(configs)))
            )
        else:
            sample_count = min(
                self.sample_size or max(16, total // 8), budget
            )
            # strided distillation sample: deterministic, and with the space
            # enumerated as a nested pragma product it touches every factor
            sample_indices = np.unique(
                np.linspace(0, total - 1, sample_count).astype(int)
            )
            sample_metrics = self.predict_batch_fn(
                function, [configs[i] for i in sample_indices]
            )
            metrics_by_index = {
                int(i): m for i, m in zip(sample_indices, sample_metrics)
            }
            surrogate_start = time.perf_counter()
            design = _quadratic_design(_funnel_features(function, configs))
            surrogate_seconds += time.perf_counter() - surrogate_start
            while len(metrics_by_index) < budget and rounds < self.max_rounds:
                rounds += 1
                surrogate_start = time.perf_counter()
                labeled_indices = np.array(sorted(metrics_by_index))
                labeled_objectives = np.array([
                    qor_objectives(metrics_by_index[int(i)])
                    for i in labeled_indices
                ])
                predicted, fit_errors = self._surrogate_sweep(
                    design, labeled_indices, labeled_objectives
                )
                # regret and fit error share one normalization (the
                # per-objective span of the surrogate sweep), so the margin
                # below compares like with like; the median keeps the few
                # worst-placed extreme points from setting the margin for
                # the whole funnel
                minima = predicted.min(axis=0)
                span = np.maximum(predicted.max(axis=0) - minima, 1e-12)
                regret = _plausibility_regret((predicted - minima) / span)
                spread = float(np.median((fit_errors / span).max(axis=1)))
                margin = self.margin_scale * spread
                candidates = [
                    int(i) for i in np.argsort(regret, kind="stable")
                    if int(i) not in metrics_by_index and regret[i] <= margin
                ]
                surrogate_seconds += time.perf_counter() - surrogate_start
                if not candidates:
                    break
                # geometric batch growth: each round may score as many new
                # configs as are already labeled, so the funnel converges in
                # O(log(budget)) rounds of surrogate refits
                batch = candidates[:min(
                    max(self.min_keep, len(metrics_by_index)),
                    budget - len(metrics_by_index),
                )]
                batch_metrics = self.predict_batch_fn(
                    function, [configs[i] for i in batch]
                )
                metrics_by_index.update(zip(batch, batch_metrics))
        scored_indices = sorted(metrics_by_index)
        model_seconds = time.perf_counter() - start

        # the predicted front is selected from FULL-model scores only (the
        # surrogate decided what to score, never what to select)
        predicted_points = [
            DesignPoint(
                key=configs[i].key(),
                objectives=qor_objectives(metrics_by_index[i]),
                metadata={"config": configs[i]},
            )
            for i in scored_indices
        ]
        selected_keys = [p.key for p in pareto_front(predicted_points)]
        explore_seconds = time.perf_counter() - start
        approx_front = space.true_front_of(selected_keys)
        exact_front = space.exact_front()
        full_model_configs = len(metrics_by_index)
        return FunnelDSEResult(
            kernel=space.kernel,
            num_configs=total,
            adrs=adrs(exact_front, approx_front),
            model_seconds=model_seconds,
            simulated_tool_seconds=space.simulated_tool_seconds,
            selected_keys=selected_keys,
            exact_front=exact_front,
            approx_front=approx_front,
            batched=True,
            explore_seconds=explore_seconds,
            cache_stats=dict(self.cache_stats_fn()) if self.cache_stats_fn else {},
            surrogate_seconds=surrogate_seconds,
            full_model_configs=full_model_configs,
            configs_saved=total - full_model_configs,
            keep=int(budget),
            adaptive_keep=self.keep is None,
            surrogate_spread=spread,
            rounds=rounds,
        )


def oracle_dse(space: GroundTruthSpace) -> DSEResult:
    """DSE with perfect knowledge (ADRS = 0); useful as a sanity baseline."""
    exact = space.exact_front()
    return DSEResult(
        kernel=space.kernel, num_configs=space.num_configs, adrs=0.0,
        model_seconds=0.0, simulated_tool_seconds=space.simulated_tool_seconds,
        selected_keys=[point.key for point in exact],
        exact_front=exact, approx_front=exact,
    )


__all__ = [
    "resource_cost", "qor_objectives", "GroundTruthSpace",
    "exhaustive_ground_truth", "DSEResult", "ModelGuidedExplorer",
    "FunnelDSEResult", "FunnelExplorer", "oracle_dse",
]
