"""Design-space exploration engines (Section IV-D).

Two explorers are provided:

* :func:`exhaustive_ground_truth` — runs the complete C-to-bitstream flow for
  every configuration; its (simulated) tool runtime is what the paper reports
  as the "Vivado" DSE time, and its Pareto front is the exact reference set;
* :class:`ModelGuidedExplorer` — queries a QoR prediction function for every
  configuration, selects the predicted-Pareto-optimal configurations, and is
  evaluated by the ADRS between the *true* QoR of its selections and the
  exact front.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.dse.pareto import DesignPoint, adrs, pareto_front
from repro.frontend.pragmas import PragmaConfig
from repro.hls.flow import run_full_flow
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.reports import QoRResult
from repro.ir.structure import IRFunction

#: relative LUT-equivalent weights used to fold LUT/FF/DSP into one area cost
_DSP_LUT_EQUIVALENT = 100.0
_FF_LUT_EQUIVALENT = 0.5


def resource_cost(metrics: dict[str, float]) -> float:
    """Scalar area objective combining LUT, FF and DSP usage."""
    return (
        float(metrics.get("lut", 0.0))
        + _FF_LUT_EQUIVALENT * float(metrics.get("ff", 0.0))
        + _DSP_LUT_EQUIVALENT * float(metrics.get("dsp", 0.0))
    )


def qor_objectives(metrics: dict[str, float]) -> tuple[float, float]:
    """The two DSE objectives: latency and area cost (both minimized)."""
    return (float(metrics.get("latency", 0.0)), resource_cost(metrics))


@dataclass
class GroundTruthSpace:
    """Exhaustively evaluated design space of one kernel."""

    kernel: str
    configs: list[PragmaConfig]
    results: dict[str, QoRResult]
    simulated_tool_seconds: float

    @property
    def num_configs(self) -> int:
        """Number of evaluated configurations in the space."""
        return len(self.configs)

    def design_points(self) -> list[DesignPoint]:
        """Every configuration as a :class:`DesignPoint` with true QoR."""
        return [
            DesignPoint(
                key=config.key(),
                objectives=qor_objectives(self.results[config.key()].as_dict()),
                metadata={"config": config},
            )
            for config in self.configs
        ]

    def exact_front(self) -> list[DesignPoint]:
        """The reference Pareto front over the true (flow-simulated) QoR."""
        return pareto_front(self.design_points())

    def true_front_of(self, selected_keys: list[str]) -> list[DesignPoint]:
        """Pareto front of the *true* QoR of a selected subset of designs.

        The evaluation step shared by every explorer: a model selects
        configurations (by key), and its quality is judged on the front
        their ground-truth QoR forms — which :func:`~repro.dse.pareto.adrs`
        then compares against :meth:`exact_front`.
        """
        return pareto_front([
            DesignPoint(
                key=key, objectives=qor_objectives(self.results[key].as_dict())
            )
            for key in selected_keys
        ])


def exhaustive_ground_truth(
    function: IRFunction,
    configs: list[PragmaConfig],
    *,
    library: OperatorLibrary = DEFAULT_LIBRARY,
) -> GroundTruthSpace:
    """Evaluate every configuration with the full flow (the reference DSE)."""
    results: dict[str, QoRResult] = {}
    tool_seconds = 0.0
    for config in configs:
        qor = run_full_flow(function, config, library=library)
        results[config.key()] = qor
        tool_seconds += qor.total_flow_runtime
    return GroundTruthSpace(
        kernel=function.name, configs=list(configs), results=results,
        simulated_tool_seconds=tool_seconds,
    )


@dataclass
class DSEResult:
    """Outcome of one model-guided exploration.

    ``model_seconds`` covers *model prediction only* (graph construction +
    forward passes); Pareto bookkeeping is excluded so ``configs_per_second``
    measures the inference engine itself.  ``explore_seconds`` is the full
    exploration wall time (prediction + Pareto selection) and is what
    :attr:`speedup` compares against the exhaustive flow.
    """

    kernel: str
    num_configs: int
    adrs: float
    model_seconds: float
    simulated_tool_seconds: float
    selected_keys: list[str] = field(default_factory=list)
    exact_front: list[DesignPoint] = field(default_factory=list)
    approx_front: list[DesignPoint] = field(default_factory=list)
    #: whether the batched prediction path produced the QoR estimates
    batched: bool = False
    #: total exploration wall time; 0 means "not measured" (falls back to
    #: ``model_seconds`` in :attr:`speedup`)
    explore_seconds: float = 0.0
    #: inference-cache counters captured after the sweep (empty when the
    #: explorer was not given a ``cache_stats_fn``) — lets callers see how
    #: much of a sweep was served from warm state (e.g. ``--warm-cache``)
    cache_stats: dict = field(default_factory=dict)

    @property
    def adrs_percent(self) -> float:
        """ADRS as a percentage (the unit the paper reports)."""
        return self.adrs * 100.0

    @property
    def configs_per_second(self) -> float:
        """Prediction throughput of the exploration (configs / model second)."""
        if self.model_seconds <= 0:
            return float("inf")
        return self.num_configs / self.model_seconds

    @property
    def speedup(self) -> float:
        """Exhaustive tool time divided by model-guided exploration time."""
        denominator = self.explore_seconds if self.explore_seconds > 0 else self.model_seconds
        if denominator <= 0:
            return float("inf")
        return self.simulated_tool_seconds / denominator


class ModelGuidedExplorer:
    """DSE driven by a QoR prediction function.

    ``predict_fn(function, config)`` must return a dict with at least
    ``latency``, ``lut``, ``ff`` and ``dsp`` (predicted values).  When a
    ``predict_batch_fn(function, configs) -> list[dict]`` is supplied (e.g.
    :meth:`HierarchicalQoRModel.predict_batch`), the whole space is scored in
    a handful of disjoint-union forward passes instead of one model call per
    configuration.  The explorer ranks all configurations by predicted
    Pareto-optimality and returns the selected set; ADRS is computed against
    the exact front using the *actual* QoR of the selected configurations.
    """

    def __init__(
        self,
        predict_fn: Callable[[IRFunction, PragmaConfig], dict[str, float]] | None = None,
        name: str = "model",
        *,
        predict_batch_fn: Callable[
            [IRFunction, list[PragmaConfig]], list[dict[str, float]]
        ] | None = None,
        cache_stats_fn: Callable[[], dict] | None = None,
    ):
        if predict_fn is None and predict_batch_fn is None:
            raise ValueError("provide predict_fn and/or predict_batch_fn")
        self.predict_fn = predict_fn
        self.predict_batch_fn = predict_batch_fn
        self.cache_stats_fn = cache_stats_fn
        self.name = name

    def explore(
        self,
        function: IRFunction,
        space: GroundTruthSpace,
    ) -> DSEResult:
        """Explore one kernel's design space guided by the model.

        Scores every configuration of ``space`` (batched when a
        ``predict_batch_fn`` is available), selects the predicted-Pareto
        set, and evaluates it against the exact front: the returned
        :class:`DSEResult` carries the ADRS of the selections (computed on
        their *true* QoR), prediction-only and end-to-end timings, and the
        speedup over the exhaustive flow.
        """
        # time model prediction only; Pareto bookkeeping happens off the clock
        batched = self.predict_batch_fn is not None
        start = time.perf_counter()
        if batched:
            metrics_list = self.predict_batch_fn(function, space.configs)
        else:
            metrics_list = [
                self.predict_fn(function, config) for config in space.configs
            ]
        model_seconds = time.perf_counter() - start

        predicted_points = [
            DesignPoint(
                key=config.key(),
                objectives=qor_objectives(metrics),
                metadata={"config": config},
            )
            for config, metrics in zip(space.configs, metrics_list)
        ]
        predicted_front = pareto_front(predicted_points)
        selected_keys = [point.key for point in predicted_front]
        # the exploration a deployed user pays for ends here: what follows
        # (true-QoR lookups, exact front, ADRS) is evaluation bookkeeping
        explore_seconds = time.perf_counter() - start
        # the approximate reference set is the TRUE QoR of the selected designs
        approx_front = space.true_front_of(selected_keys)
        exact_front = space.exact_front()
        return DSEResult(
            kernel=space.kernel,
            num_configs=space.num_configs,
            adrs=adrs(exact_front, approx_front),
            model_seconds=model_seconds,
            simulated_tool_seconds=space.simulated_tool_seconds,
            selected_keys=selected_keys,
            exact_front=exact_front,
            approx_front=approx_front,
            batched=batched,
            explore_seconds=explore_seconds,
            cache_stats=dict(self.cache_stats_fn()) if self.cache_stats_fn else {},
        )


def oracle_dse(space: GroundTruthSpace) -> DSEResult:
    """DSE with perfect knowledge (ADRS = 0); useful as a sanity baseline."""
    exact = space.exact_front()
    return DSEResult(
        kernel=space.kernel, num_configs=space.num_configs, adrs=0.0,
        model_seconds=0.0, simulated_tool_seconds=space.simulated_tool_seconds,
        selected_keys=[point.key for point in exact],
        exact_front=exact, approx_front=exact,
    )


__all__ = [
    "resource_cost", "qor_objectives", "GroundTruthSpace",
    "exhaustive_ground_truth", "DSEResult", "ModelGuidedExplorer", "oracle_dse",
]
