"""Checkpoint/resume for sharded DSE sweeps.

A production-scale sweep is hours of fleet time; a coordinator crash must
not throw the scored half away.  The coordinator therefore periodically
persists its progress — every scored canonical config id with its exact
prediction — and a restarted fleet (``ShardedExplorer(checkpoint=...,
resume=True)``) skips everything the checkpoint already covers.

**Why resume is bit-equal.**  Predictions are *not* pure down to the last
ulp: ``predict_batch`` output varies at the final bit with batch
composition, because BLAS picks different (equally correct) kernels for
different disjoint-union sizes.  The coordinator therefore preserves chunk
compositions instead of relying on purity: the resuming sweep partitions
the **full** wanted set exactly as a clean run would, drops
already-checkpointed work only in *whole chunks* of that canonical layout
(checkpoint records are chunk-granular because results stream per whole
chunk), and recovers missing work one original chunk per batch — so every
``predict_batch`` call that still runs sees the same composition the
uninterrupted sweep gave it.  Predictions persist through JSON, whose
``repr``-based float encoding round-trips float64 exactly, and the merged
Pareto front is a pure function of the ``(objectives, config_id)``
multiset — so feeding checkpointed predictions into the merge next to
freshly scored ones reproduces the uninterrupted front bit for bit
(:func:`~repro.dse.pareto.fronts_bit_equal`).

**File format.**  One JSON document ``{"body": ..., "digest": ...}``:
``digest`` is a sha256 prefix over the canonically-serialized body, so any
torn write or bit rot is detected; the body carries a format version, the
**space fingerprint** (kernel + source + every config key), the **model
digest** (:func:`~repro.core.serialization.model_weights_digest` of the
exact weights) and the inference ``precision``, binding the checkpoint to
the one sweep it can resume; and the ``scored`` table of ``[config_id,
metrics]`` pairs.  Writes are atomic (tmp + ``os.replace``, same pattern as
``save_model``), so a crash mid-checkpoint leaves the previous valid
checkpoint in place.  A checkpoint that fails *any* check — unreadable,
bad digest, wrong version/space/model/precision — is discarded with a
:class:`RuntimeWarning` and the sweep restarts from zero; it never crashes
the run and never leaks stale predictions into a front.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.dse.space import DesignSpace

#: format version of the checkpoint payload; bump on layout change
CHECKPOINT_VERSION = 1

#: newly scored configurations between periodic checkpoint writes
DEFAULT_CHECKPOINT_INTERVAL = 64


def space_fingerprint(space: DesignSpace) -> str:
    """Content digest identifying a design space exactly.

    Covers the kernel name, the source text and every configuration's
    canonical key *in enumeration order* — config ids are positions in that
    order, so two spaces with equal fingerprints agree on what every id in
    a checkpoint means.  Construction is deterministic for a seed, so the
    re-enumerated space of a restarted CLI run fingerprints identically.
    """
    digest = hashlib.sha256()
    digest.update(space.kernel.encode("utf-8"))
    digest.update(space.source.encode("utf-8"))
    for config in space.configs:
        digest.update(config.key().encode("utf-8"))
    return digest.hexdigest()[:16]


def _payload_digest(body: dict) -> str:
    """Integrity digest over the canonically-serialized checkpoint body."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class SweepCheckpoint:
    """Progress snapshot of one sharded sweep.

    ``scored`` maps config ids (of the space identified by
    ``space_fingerprint``) to their exact predictions; ``complete`` marks a
    finished sweep, whose resume scores nothing and reassembles the result
    from the table alone.
    """

    space_fingerprint: str
    model_digest: str
    precision: str
    scored: dict[int, dict[str, float]] = field(default_factory=dict)
    complete: bool = False


def save_checkpoint(path: str | Path, checkpoint: SweepCheckpoint) -> Path:
    """Atomically persist a checkpoint (tmp file + ``os.replace``).

    The scored table is emitted in config-id order, so identical progress
    produces byte-identical files regardless of delivery order.
    """
    path = Path(path)
    body = {
        "version": CHECKPOINT_VERSION,
        "space_fingerprint": checkpoint.space_fingerprint,
        "model_digest": checkpoint.model_digest,
        "precision": checkpoint.precision,
        "complete": checkpoint.complete,
        "scored": [
            [config_id, checkpoint.scored[config_id]]
            for config_id in sorted(checkpoint.scored)
        ],
    }
    payload = {"body": body, "digest": _payload_digest(body)}
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(path.name + ".tmp")
    try:
        staging.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(staging, path)
    finally:
        if staging.exists():
            staging.unlink()
    return path


def _discard(path: Path, reason: str) -> None:
    """Warn that a checkpoint is unusable (the sweep restarts from zero)."""
    warnings.warn(
        f"discarding checkpoint {path}: {reason}; restarting sweep from zero",
        RuntimeWarning,
        stacklevel=3,
    )


def load_checkpoint(
    path: str | Path,
    *,
    expected_space: str,
    expected_model: str,
    expected_precision: str,
) -> SweepCheckpoint | None:
    """Load and verify a checkpoint; ``None`` (with a warning) if unusable.

    Verification order: readability and JSON well-formedness, then the
    payload digest (catches truncation and bit flips), then the binding
    checks — format version, space fingerprint, model weights digest and
    precision tier must all match the sweep being resumed.  Any failure
    discards the checkpoint with a :class:`RuntimeWarning`; a missing file
    is silent (a first run simply has no checkpoint yet).
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        body = payload["body"]
        digest = payload["digest"]
    except (OSError, ValueError, KeyError, TypeError):
        _discard(path, "unreadable or not a checkpoint")
        return None
    if not isinstance(body, dict) or _payload_digest(body) != digest:
        _discard(path, "integrity digest mismatch (truncated or corrupted)")
        return None
    if body.get("version") != CHECKPOINT_VERSION:
        _discard(
            path,
            f"format version {body.get('version')!r} != {CHECKPOINT_VERSION}",
        )
        return None
    if body.get("space_fingerprint") != expected_space:
        _discard(path, "design-space fingerprint mismatch")
        return None
    if body.get("model_digest") != expected_model:
        _discard(path, "model weights digest mismatch")
        return None
    if body.get("precision") != expected_precision:
        _discard(
            path,
            f"precision tier {body.get('precision')!r} != "
            f"{expected_precision!r}",
        )
        return None
    try:
        scored = {
            int(config_id): {
                str(name): float(value) for name, value in metrics.items()
            }
            for config_id, metrics in body.get("scored", [])
        }
    except (ValueError, TypeError, AttributeError):
        _discard(path, "malformed scored table")
        return None
    return SweepCheckpoint(
        space_fingerprint=body["space_fingerprint"],
        model_digest=body["model_digest"],
        precision=body["precision"],
        scored=scored,
        complete=bool(body.get("complete", False)),
    )


class CheckpointWriter:
    """Accumulates scored predictions and persists them periodically.

    The coordinator calls :meth:`record` for every prediction it folds in
    (streamed, recovered or resumed-from-checkpoint alike); every
    ``interval`` *newly* recorded configurations trigger an atomic
    :func:`save_checkpoint`.  ``on_save`` is the fault-injection hook: it
    runs after each persisted write with the running save count, so a test
    can kill the coordinator at a point where a valid checkpoint is
    guaranteed to exist on disk.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        space_fingerprint: str,
        model_digest: str,
        precision: str,
        interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        prior: dict[int, dict[str, float]] | None = None,
        on_save=None,
    ):
        self.path = Path(path)
        self.interval = max(1, interval)
        self.scored: dict[int, dict[str, float]] = dict(prior or {})
        self.saves = 0
        self._space_fingerprint = space_fingerprint
        self._model_digest = model_digest
        self._precision = precision
        self._since_save = 0
        self._on_save = on_save

    def record(self, config_id: int, metrics: dict[str, float]) -> None:
        """Fold one scored configuration in; persist every ``interval``."""
        if config_id in self.scored:
            return
        self.scored[config_id] = metrics
        self._since_save += 1
        if self._since_save >= self.interval:
            self.save()

    def save(self, *, complete: bool = False) -> None:
        """Persist the current scored table now (atomic write)."""
        save_checkpoint(
            self.path,
            SweepCheckpoint(
                space_fingerprint=self._space_fingerprint,
                model_digest=self._model_digest,
                precision=self._precision,
                scored=self.scored,
                complete=complete,
            ),
        )
        self.saves += 1
        self._since_save = 0
        if self._on_save is not None:
            self._on_save(self.saves)


__all__ = [
    "CHECKPOINT_VERSION", "DEFAULT_CHECKPOINT_INTERVAL", "SweepCheckpoint",
    "space_fingerprint", "save_checkpoint", "load_checkpoint",
    "CheckpointWriter",
]
