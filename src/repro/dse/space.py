"""Design-space construction (Section IV-D experimental protocol).

The space of one kernel is built the way the paper describes: loop
pipelining, loop flattening and loop unrolling are applied iteratively from
inner to outer loops with unroll factors from ``{1, 2, 4, 8, 16}``, and array
partitioning factors are kept consistent with the unroll factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.frontend.pragmas import (
    ArrayDirective,
    LoopDirective,
    PartitionType,
    PragmaConfig,
)
from repro.ir.structure import IRFunction, Loop

#: unroll factors explored by the paper
UNROLL_FACTORS: tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class LoopChain:
    """One top-level loop nest described as a chain of nesting levels.

    ``labels`` go from the outermost level to the innermost level; for nests
    with sibling loops, the chain follows the first sub-loop at each level
    (pragma choices for siblings are shared, which keeps the space close to
    the paper's per-kernel sizes).
    """

    labels: tuple[str, ...]
    tripcounts: tuple[int, ...]
    perfect: bool


def loop_chains(function: IRFunction) -> list[LoopChain]:
    """One chain per top-level loop nest."""
    chains: list[LoopChain] = []
    for top in function.top_level_loops():
        labels: list[str] = []
        tripcounts: list[int] = []
        current: Loop | None = top
        while current is not None:
            labels.append(current.label)
            tripcounts.append(max(1, current.tripcount))
            subs = current.sub_loops()
            current = subs[0] if subs else None
        chains.append(
            LoopChain(
                labels=tuple(labels), tripcounts=tuple(tripcounts),
                perfect=top.is_perfect_nest(),
            )
        )
    return chains


def _factors_for(tripcount: int) -> tuple[int, ...]:
    """Unroll factors applicable to a loop of the given trip count."""
    return tuple(f for f in UNROLL_FACTORS if f <= tripcount)


def _chain_options(chain: LoopChain) -> list[dict[str, LoopDirective]]:
    """All pragma assignments for one loop nest."""
    depth = len(chain.labels)
    options: list[dict[str, LoopDirective]] = []
    # choice of pipeline level: none, or any level (inner levels then unroll fully)
    for pipeline_level in [None] + list(range(depth)):
        flatten_choices = [False]
        if (
            pipeline_level is not None
            and pipeline_level == depth - 1
            and depth >= 2
            and chain.perfect
        ):
            flatten_choices = [False, True]
        for flatten in flatten_choices:
            # unroll factors are chosen for the pipelined level and the levels
            # outside (above) it; deeper levels are fully unrolled implicitly.
            free_levels = (
                list(range(depth)) if pipeline_level is None
                else list(range(pipeline_level + 1))
            )
            factor_sets = [_factors_for(chain.tripcounts[lv]) for lv in free_levels]
            for combo in product(*factor_sets):
                directives: dict[str, LoopDirective] = {}
                for level, factor in zip(free_levels, combo):
                    pipeline_here = pipeline_level is not None and level == pipeline_level
                    flatten_here = flatten and level < depth - 1
                    if factor == 1 and not pipeline_here and not flatten_here:
                        continue
                    directives[chain.labels[level]] = LoopDirective(
                        pipeline=pipeline_here,
                        unroll_factor=factor,
                        flatten=flatten_here,
                    )
                if flatten:
                    # flattening must be requested on every intermediate level
                    for level in range(depth - 1):
                        label = chain.labels[level]
                        existing = directives.get(label, LoopDirective())
                        directives[label] = LoopDirective(
                            pipeline=existing.pipeline,
                            ii=existing.ii,
                            unroll_factor=existing.unroll_factor,
                            flatten=True,
                        )
                options.append(directives)
    # remove duplicates introduced by factor-1 skipping
    unique: dict[str, dict[str, LoopDirective]] = {}
    for directives in options:
        key = ";".join(
            f"{label}:{d.describe()}" for label, d in sorted(directives.items())
        )
        unique.setdefault(key, directives)
    return list(unique.values())


def _partition_directives(
    function: IRFunction, loop_directives: dict[str, LoopDirective]
) -> dict[str, ArrayDirective]:
    """Array partitioning consistent with the chosen unroll factors.

    The partition factor of every accessed array follows the maximum
    parallelism requested by the loop directives (the paper keeps partition
    factors consistent with unroll factors); arrays are partitioned
    cyclically along their innermost dimension.
    """
    max_factor = 1
    for directive in loop_directives.values():
        max_factor = max(max_factor, directive.unroll_factor)
        if directive.pipeline:
            max_factor = max(max_factor, 2)
    if max_factor <= 1:
        return {}
    directives: dict[str, ArrayDirective] = {}
    for name, info in function.arrays.items():
        factor = min(max_factor, max(info.dims))
        if factor <= 1:
            continue
        directives[name] = ArrayDirective(
            partition_type=PartitionType.CYCLIC, factor=factor, dim=len(info.dims)
        )
    return directives


def enumerate_design_space(
    function: IRFunction,
    *,
    max_configs: int = 4096,
    rng: np.random.Generator | None = None,
) -> list[PragmaConfig]:
    """Enumerate the pragma design space of one kernel.

    The cross product over independent loop nests can exceed ``max_configs``;
    in that case a deterministic subsample is returned (the baseline
    configuration is always kept).
    """
    chains = loop_chains(function)
    per_chain = [_chain_options(chain) for chain in chains]
    configs: list[PragmaConfig] = []
    for combo in product(*per_chain):
        loops: dict[str, LoopDirective] = {}
        for directives in combo:
            loops.update(directives)
        arrays = _partition_directives(function, loops)
        configs.append(PragmaConfig.from_dicts(loops, arrays))
    # dedupe on the canonical key
    unique: dict[str, PragmaConfig] = {}
    for config in configs:
        unique.setdefault(config.key(), config)
    configs = list(unique.values())
    if len(configs) > max_configs:
        rng = rng or np.random.default_rng(7)
        keep = rng.choice(len(configs), size=max_configs, replace=False)
        kept = [configs[i] for i in sorted(keep)]
        if all(c.describe() != "baseline" for c in kept):
            kept[0] = PragmaConfig()
        configs = kept
    return configs


def sample_design_space(
    function: IRFunction,
    count: int,
    *,
    rng: np.random.Generator | None = None,
) -> list[PragmaConfig]:
    """A random subset of the design space (used for dataset generation)."""
    rng = rng or np.random.default_rng(0)
    configs = enumerate_design_space(function, rng=rng)
    if len(configs) <= count:
        return configs
    indices = rng.choice(len(configs), size=count, replace=False)
    return [configs[i] for i in sorted(indices)]


@dataclass
class DesignSpace:
    """An enumerated design space with stable configuration ids.

    Wraps the configuration list of one kernel together with everything a
    worker process needs to re-create its half of the work from scratch:

    * ``source`` — the kernel's HLS-C text.  Lowering is deterministic, so a
      worker that re-lowers the source gets an IR whose content fingerprint
      (and therefore every cache key) matches the coordinator's;
    * ``configs`` — the enumeration order is the canonical order.  A
      configuration's **id** is its index in this tuple; ids are what shards
      carry, what workers stream back, and what the deterministic Pareto
      tie-break (:class:`~repro.dse.pareto.ParetoFront`) breaks ties on.

    Instances are cheap to pickle (the lazily-lowered IR is excluded), which
    is what keeps spawn-based worker bootstrap viable.
    """

    kernel: str
    source: str
    configs: tuple[PragmaConfig, ...]

    def __post_init__(self) -> None:
        self.configs = tuple(self.configs)
        self._function: IRFunction | None = None

    @staticmethod
    def from_kernel(
        name: str, num_configs: int = 100, *, seed: int = 0
    ) -> "DesignSpace":
        """Build the space of a registry kernel (deterministic for a seed)."""
        from repro.kernels import kernel_source, load_kernel

        configs = sample_design_space(
            load_kernel(name), num_configs, rng=np.random.default_rng(seed)
        )
        return DesignSpace(
            kernel=name, source=kernel_source(name), configs=tuple(configs)
        )

    @staticmethod
    def from_source(
        source: str, num_configs: int = 100, *, seed: int = 0
    ) -> "DesignSpace":
        """Build the space of an arbitrary HLS-C kernel given as text."""
        from repro.ir.builder import lower_source

        function = lower_source(source)
        configs = sample_design_space(
            function, num_configs, rng=np.random.default_rng(seed)
        )
        return DesignSpace.from_lowered(function, source, configs)

    @staticmethod
    def from_lowered(
        function: IRFunction, source: str, configs
    ) -> "DesignSpace":
        """Wrap an already-lowered kernel and its configuration list.

        Seeds the lazy IR so this process skips the re-lowering; ``source``
        must be the text ``function`` was lowered from (workers re-lower it
        and rely on the fingerprints agreeing).
        """
        space = DesignSpace(
            kernel=function.name, source=source, configs=tuple(configs)
        )
        space._function = function
        return space

    def function(self) -> IRFunction:
        """The lowered kernel (lazy; memoized per space object)."""
        if self._function is None:
            from repro.ir.builder import lower_source

            self._function = lower_source(self.source)
        return self._function

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def items(self) -> list[tuple[int, PragmaConfig]]:
        """``(config_id, config)`` pairs in canonical (id) order."""
        return list(enumerate(self.configs))

    def config(self, config_id: int) -> PragmaConfig:
        """The configuration with the given stable id."""
        return self.configs[config_id]

    def key_of(self, config_id: int) -> str:
        """Canonical key string of one configuration (for reports)."""
        return self.configs[config_id].key()

    def shards(self, num_shards: int, strategy: str = "pragma-locality"):
        """Partition the space into balanced shards (list of ``ShardSpec``).

        Delegates to :func:`repro.dse.sharding.partition_space`; see there
        for the available strategies and their balance guarantees.
        """
        from repro.dse.sharding import partition_space

        return partition_space(self, num_shards, strategy)

    def dedup(self) -> "DedupedSpace":
        """Partition the space into HLS-equivalence classes.

        Two configurations are equivalent when they canonicalize
        (:func:`repro.hls.directives.canonicalize_config`) to the same
        effective form — HLS resolves them to identical designs, the model
        predicts them bit-identically, so one *representative* per class is
        enough to sweep.  The representative is the member with the smallest
        config id, which makes the choice deterministic across processes
        (ids are enumeration order, and enumeration is deterministic for a
        seed) and keeps the Pareto tie-break exact: the front over
        representatives equals the front over all ids bit-for-bit, because
        :class:`~repro.dse.pareto.ParetoFront` keeps the smallest id on
        exact objective ties and every non-representative member has a
        larger id than its representative.
        """
        function = self.function()
        from repro.hls.directives import canonicalize_config

        by_signature: dict[str, list[int]] = {}
        for config_id, config in enumerate(self.configs):
            signature = canonicalize_config(function, config).key()
            by_signature.setdefault(signature, []).append(config_id)
        classes = tuple(
            DesignClass(
                signature=signature,
                representative=members[0],
                members=tuple(members),
            )
            for signature, members in sorted(
                by_signature.items(), key=lambda item: item[1][0]
            )
        )
        return DedupedSpace(space=self, classes=classes)

    def __getstate__(self) -> dict:
        # the lowered IR holds cross-referencing objects that are expensive
        # (and pointless) to pickle: workers re-lower from source instead
        return {
            "kernel": self.kernel, "source": self.source, "configs": self.configs
        }

    def __setstate__(self, state: dict) -> None:
        self.kernel = state["kernel"]
        self.source = state["source"]
        self.configs = tuple(state["configs"])
        self._function = None


@dataclass(frozen=True)
class DesignClass:
    """One HLS-equivalence class of a design space.

    ``signature`` is the canonical (effective-form) key shared by every
    member; ``members`` are the config ids in ascending order and
    ``representative`` is the smallest of them — the one configuration that
    is actually swept.
    """

    signature: str
    representative: int
    members: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class DedupedSpace:
    """A design space partitioned into equivalence classes (dedup algebra).

    The sweep contract: score the representatives (``representative_ids``),
    then :meth:`fan_out` copies each representative's prediction to every
    member of its class.  Because class members predict bit-identically,
    the fanned-out result equals a full sweep exactly — at the cost of
    ``num_classes`` forward passes instead of ``len(space)``.
    """

    space: DesignSpace
    classes: tuple[DesignClass, ...]

    def __post_init__(self) -> None:
        self.classes = tuple(self.classes)

    @property
    def num_classes(self) -> int:
        """Number of equivalence classes (= configs actually swept)."""
        return len(self.classes)

    @property
    def num_configs(self) -> int:
        """Raw configuration count of the underlying space."""
        return len(self.space)

    @property
    def dedup_ratio(self) -> float:
        """Raw configurations per class (1.0 means no duplicates)."""
        return self.num_configs / max(1, self.num_classes)

    def representative_ids(self) -> list[int]:
        """Config ids to actually sweep, in ascending order."""
        return sorted(cls.representative for cls in self.classes)

    def class_of(self, config_id: int) -> DesignClass:
        """The equivalence class containing ``config_id``."""
        for cls in self.classes:
            if config_id in cls.members:
                return cls
        raise KeyError(f"config id {config_id} not in space")

    def fan_out(self, predictions: dict[int, dict]) -> dict[int, dict]:
        """Expand representative predictions to every class member.

        ``predictions`` maps representative ids to prediction dicts; the
        result maps *every* config id in the space to a (per-member copied)
        dict.  Representatives missing from ``predictions`` are skipped, so
        partial sweeps fan out partially.
        """
        full: dict[int, dict] = {}
        for cls in self.classes:
            prediction = predictions.get(cls.representative)
            if prediction is None:
                continue
            for member in cls.members:
                full[member] = dict(prediction)
        return full


__all__ = [
    "UNROLL_FACTORS", "LoopChain", "loop_chains", "enumerate_design_space",
    "sample_design_space", "DesignSpace", "DesignClass", "DedupedSpace",
]
