"""Sharded multi-worker design-space exploration.

The batched inference engine (:meth:`HierarchicalQoRModel.predict_batch`)
scores a whole design space in one process; this module scales it across
worker **processes**:

1. :func:`partition_space` splits a :class:`~repro.dse.space.DesignSpace`
   into balanced shards (``round-robin`` or ``pragma-locality``);
2. each shard runs in a worker process (:func:`shard_worker`, a module-level
   — hence spawn-safe — entrypoint) that bootstraps its *own*
   :class:`~repro.core.predictor.QoRPredictor` from a saved model file,
   re-lowers the kernel source, and scores its configurations with
   ``predict_batch`` chunk by chunk, streaming ``(config_id, prediction)``
   pairs back over a queue;
3. the coordinator (:class:`ShardedExplorer`) folds each shard's stream into
   a per-shard :class:`~repro.dse.pareto.ParetoFront` and merges the fronts
   with :func:`~repro.dse.pareto.merge_fronts`.

**Determinism guarantee.**  Two layers, guarded separately:

* the *merge* is bit-exact: :class:`~repro.dse.pareto.ParetoFront` is a pure
  function of the ``(objectives, config_id)`` multiset, so shard count,
  shard strategy, chunk size and message arrival order cannot change the
  merged front — it is identical, member for member and in the same
  canonical order, to one front fed every prediction directly;
* the *predictions* agree with the single-process batched engine to within
  1e-9 relative (typically <= 1e-12).  Workers load the same weights and
  run the same deterministic numpy arithmetic; the residual last-ulp
  variation comes from BLAS choosing different (equally correct) kernels
  for different disjoint-union sizes.  The degenerate single-row /
  single-column dispatch — by far the largest such effect — is removed at
  the source (see ``repro.nn.autograd._stable_matmul``).  Dominance gaps
  between distinct designs are macroscopic, so this noise cannot flip front
  membership; the differential harness asserts identical membership and
  ordering against the single-process front.

**Failure handling.**  A worker that dies mid-shard (crash, OOM-kill) simply
stops streaming: the coordinator notices the process is gone without a
completion message, drains whatever the worker did deliver, and re-scores
the missing configurations in-process, so the sweep always completes with
the exact same front.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.predictor import QoRPredictor
from repro.dse.explorer import qor_objectives
from repro.dse.pareto import DesignPoint, ParetoFront, merge_fronts
from repro.dse.space import DesignSpace
from repro.frontend.pragmas import PragmaConfig
from repro.graph.cache import GraphConstructionCache
from repro.graph.hierarchy import decomposition_signature
from repro.ir.builder import lower_source

#: the shard strategies understood by :func:`partition_space`
SHARD_STRATEGIES: tuple[str, ...] = ("round-robin", "pragma-locality")

#: configurations scored (and streamed) per worker chunk
DEFAULT_CHUNK_SIZE = 32

#: relative agreement guaranteed between worker-process and single-process
#: predictions (see the determinism notes in the module docstring); the
#: differential tests and the sharded benchmark guard exactly this bound
PREDICTION_TOLERANCE = 1e-9


def max_prediction_error(
    a: list[dict[str, float]], b: list[dict[str, float]]
) -> float:
    """Worst per-metric relative deviation between two prediction lists.

    The quantity the sharded-vs-single-process guards compare against
    :data:`PREDICTION_TOLERANCE` (denominators are clamped at 1.0 so
    near-zero metrics do not inflate the ratio).  Misaligned inputs are an
    error — a truncating comparison could pass vacuously.
    """
    if len(a) != len(b):
        raise ValueError(
            f"prediction lists differ in length: {len(a)} vs {len(b)}"
        )
    worst = 0.0
    for left, right in zip(a, b):
        for name in left:
            scale = max(abs(left[name]), 1.0)
            worst = max(worst, abs(left[name] - right[name]) / scale)
    return worst


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a design space: a stable id and the config ids it owns.

    ``config_ids`` are ids into the canonical order of the
    :class:`~repro.dse.space.DesignSpace` the shard was cut from, sorted
    ascending; every id of the space belongs to exactly one shard.
    """

    shard_id: int
    config_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.config_ids)


def _round_robin_blocks(count: int, num_shards: int) -> list[tuple[int, ...]]:
    """Deal config ids ``0..count-1`` round-robin into ``num_shards`` piles."""
    return [tuple(range(i, count, num_shards)) for i in range(num_shards)]


def _pragma_locality_blocks(
    space: DesignSpace, num_shards: int
) -> list[tuple[int, ...]]:
    """Contiguous balanced blocks over the pragma-delta locality order.

    Configurations are ordered by their decomposition signature (the
    inner-unit and outer-graph cache keys of
    :func:`~repro.graph.hierarchy.decomposition_signature`), which places
    configurations that share pragma deltas — and therefore graph
    construction work — next to each other; cutting the order into
    contiguous blocks maximizes each worker's construction-cache hit rate.
    Signature computation builds no graphs, so sharding stays cheap.
    """
    cache = GraphConstructionCache()
    function = space.function()
    signatures = []
    for config_id, config in space.items():
        outer_key, unit_keys = decomposition_signature(function, config, cache)
        signatures.append((unit_keys, outer_key, config_id))
    order = [config_id for _, _, config_id in sorted(signatures)]
    base, extra = divmod(len(order), num_shards)
    blocks: list[tuple[int, ...]] = []
    position = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        blocks.append(tuple(sorted(order[position:position + size])))
        position += size
    return blocks


def partition_space(
    space: DesignSpace, num_shards: int, strategy: str = "round-robin"
) -> list[ShardSpec]:
    """Partition a design space into at most ``num_shards`` balanced shards.

    Strategies (shard sizes always differ by at most one):

    * ``round-robin`` — config id ``i`` goes to shard ``i % num_shards``;
      cheap and delta-agnostic;
    * ``pragma-locality`` — configurations sharing pragma deltas are grouped
      onto the same shard so each worker's construction cache sees maximal
      reuse (see :func:`_pragma_locality_blocks`).

    Empty shards (more workers than configurations) are dropped.  The
    partition is deterministic: same space, count and strategy — same shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; available: {SHARD_STRATEGIES}"
        )
    if strategy == "pragma-locality":
        blocks = _pragma_locality_blocks(space, num_shards)
    else:
        blocks = _round_robin_blocks(len(space), num_shards)
    return [
        ShardSpec(shard_id=index, config_ids=block)
        for index, block in enumerate(blocks)
        if block
    ]


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def shard_worker(
    shard_id: int,
    model_path: str,
    source: str,
    warm_caches: bool,
    items: list[tuple[int, PragmaConfig]],
    results: multiprocessing.Queue,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    fail_after: int | None = None,
) -> None:
    """Worker-process entrypoint: score one shard and stream results back.

    Module-level (importable by name), with picklable arguments only, so it
    runs under any multiprocessing start method including ``spawn``.  The
    worker owns its whole pipeline: it loads a
    :class:`~repro.core.predictor.QoRPredictor` once from ``model_path``
    (optionally adopting the persisted warm caches), re-lowers ``source``
    (deterministic, so cache fingerprints agree with every other process),
    and scores its configurations in chunks of ``chunk_size`` through
    ``predict_batch`` — the construction cache persists across chunks, so
    chunking costs no repeated graph building.  The vectorized encoding
    pipeline rides along for free: each worker shares the single
    ``make_batch`` union encoder with cold sweeps and training, and its
    outer-graph sample templates and unit samples likewise persist across
    chunks (the ``outer_templates`` counter in the streamed cache stats
    shows how many deltas each worker captured).

    Messages on ``results``: ``("results", shard_id, [(config_id, metrics),
    ...])`` per chunk, then ``("done", shard_id, cache_stats)``; on an
    internal error, ``("error", shard_id, traceback_text)`` and a non-zero
    exit.  ``fail_after`` is a test hook: the worker hard-exits (no "done",
    as a real crash would) once that many configurations are scored.
    """
    try:
        predictor = QoRPredictor.load(model_path, warm_caches=warm_caches)
        function = lower_source(source)
        completed = 0
        for start in range(0, len(items), max(1, chunk_size)):
            if fail_after is not None and completed >= fail_after:
                os._exit(3)  # simulate a hard crash: nothing is flushed
            chunk = items[start:start + max(1, chunk_size)]
            metrics_list = predictor.predict_batch(
                function, [config for _, config in chunk]
            )
            results.put((
                "results", shard_id,
                [
                    (config_id, metrics)
                    for (config_id, _), metrics in zip(chunk, metrics_list)
                ],
            ))
            completed += len(chunk)
        results.put(("done", shard_id, predictor.cache_stats()))
    except BaseException:
        results.put(("error", shard_id, traceback.format_exc()))
        raise


# --------------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------------- #
@dataclass
class ShardReport:
    """What one worker contributed to a sharded sweep."""

    shard_id: int
    num_configs: int
    #: configurations whose predictions the worker actually delivered
    completed: int
    #: configurations re-scored by the coordinator after a worker failure
    recovered: int = 0
    #: the worker's final cache counters (empty if it died before reporting)
    cache_stats: dict = field(default_factory=dict)
    #: True when the worker exited without a completion message
    failed: bool = False
    error: str = ""


@dataclass
class ShardedDSEResult:
    """Outcome of one sharded exploration.

    ``predictions`` is aligned with the canonical configuration order of the
    explored space; ``front`` is the merged predicted-Pareto front in the
    canonical ``(objectives, config_id)`` order — bit-identical to
    :func:`predicted_front` over ``predictions``, and identical in
    membership and order to the single-process engine's front (see the
    module docstring for the exact guarantee).
    """

    kernel: str
    num_configs: int
    num_workers: int
    shard_strategy: str
    predictions: list[dict[str, float]]
    front: list[DesignPoint]
    model_seconds: float
    shards: list[ShardReport] = field(default_factory=list)
    #: configurations recovered in-process after worker failures
    recovered_configs: int = 0
    #: per-worker cache counters summed fleet-wide
    cache_stats: dict = field(default_factory=dict)
    #: multiprocessing start method the sweep actually used
    mp_context: str = ""

    @property
    def configs_per_second(self) -> float:
        """End-to-end sharded throughput (spawn + load + predict + merge)."""
        if self.model_seconds <= 0:
            return float("inf")
        return self.num_configs / self.model_seconds


def predicted_front(
    space: DesignSpace, predictions: list[dict[str, float]]
) -> ParetoFront:
    """Single-process reference front over a space's predictions.

    Feeds every ``(config_id, prediction)`` pair through one
    :class:`~repro.dse.pareto.ParetoFront` — the differential harness
    compares the sharded engine's merged front against exactly this.
    """
    front = ParetoFront()
    for config_id, metrics in enumerate(predictions):
        front.add(
            DesignPoint(
                key=space.key_of(config_id),
                objectives=qor_objectives(metrics),
                metadata={
                    "config": space.config(config_id), "config_id": config_id
                },
            ),
            config_id,
        )
    return front


def fronts_match(
    a: list[DesignPoint],
    b: list[DesignPoint],
    *,
    rel_tolerance: float = PREDICTION_TOLERANCE,
) -> bool:
    """True when two fronts are the same set of designs in the same order.

    Membership and ordering are compared exactly (by key); objective values
    are compared within ``rel_tolerance`` relative, absorbing the last-ulp
    BLAS kernel-dispatch variation described in the module docstring.  This
    is the comparison the differential tests and the sharded benchmark
    guard.
    """
    if len(a) != len(b):
        return False
    for point_a, point_b in zip(a, b):
        if point_a.key != point_b.key:
            return False
        for value_a, value_b in zip(point_a.objectives, point_b.objectives):
            scale = max(abs(value_a), abs(value_b), 1.0)
            if abs(value_a - value_b) > rel_tolerance * scale:
                return False
    return True


def _default_mp_context() -> str:
    """``fork`` where available (cheap bootstrap), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardedExplorer:
    """Coordinator for multi-worker DSE over a saved model.

    Partitions a :class:`~repro.dse.space.DesignSpace` with
    :func:`partition_space`, runs one worker process per shard
    (:func:`shard_worker`), folds the streamed results into per-shard
    Pareto fronts and merges them deterministically.  See the module
    docstring for the equivalence and failure-handling guarantees.

    Parameters:

    * ``model_path`` — a model saved with :meth:`QoRPredictor.save` /
      :func:`repro.core.serialization.save_model`; validated eagerly so a
      missing or untrained model fails before any process is spawned;
    * ``num_workers`` — worker processes (= maximum shard count);
    * ``shard_strategy`` — ``"round-robin"`` or ``"pragma-locality"``;
    * ``warm_caches`` — workers adopt the warm caches persisted in the model
      file (read-only: worker caches are not written back);
    * ``mp_context`` — multiprocessing start method; defaults to ``fork``
      where available, ``spawn`` otherwise (the worker entrypoint is safe
      under both);
    * ``worker_timeout`` — a *stall* timeout: seconds without any message
      from any worker before the remaining workers are deemed wedged,
      terminated, and their outstanding work recovered in-process.  An
      actively-streaming fleet never trips it, however long the sweep.
    """

    def __init__(
        self,
        model_path: str | Path,
        *,
        num_workers: int = 2,
        shard_strategy: str = "pragma-locality",
        warm_caches: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        mp_context: str | None = None,
        worker_timeout: float = 300.0,
        _fault_injection: dict[int, int] | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {shard_strategy!r}; "
                f"available: {SHARD_STRATEGIES}"
            )
        self.model_path = Path(model_path)
        self.num_workers = num_workers
        self.shard_strategy = shard_strategy
        self.warm_caches = warm_caches
        self.chunk_size = max(1, chunk_size)
        self.mp_context = mp_context or _default_mp_context()
        self.worker_timeout = worker_timeout
        #: test hook: shard_id -> configs to score before simulating a crash
        self._fault_injection = dict(_fault_injection or {})
        self._validate_model()

    def _validate_model(self) -> None:
        """Fail fast — before spawning anything — on a bad model file."""
        from repro.core.serialization import peek_manifest

        manifest = peek_manifest(self.model_path)
        if "g" not in manifest:
            raise ValueError(
                f"model at {self.model_path} has no trained global model; "
                "train and save it before sharded exploration"
            )

    # ------------------------------------------------------------------ #
    def explore(self, space: DesignSpace) -> ShardedDSEResult:
        """Score every configuration of ``space`` across the worker fleet.

        Returns predictions aligned with the space's canonical order and the
        merged Pareto front; never raises on worker death — missing work is
        recovered in-process (see ``ShardedDSEResult.recovered_configs``).
        """
        start = time.perf_counter()
        shards = partition_space(space, self.num_workers, self.shard_strategy)
        context = multiprocessing.get_context(self.mp_context)
        results_queue = context.Queue()
        processes: dict[int, multiprocessing.Process] = {}
        for shard in shards:
            items = [(cid, space.config(cid)) for cid in shard.config_ids]
            process = context.Process(
                target=shard_worker,
                args=(
                    shard.shard_id, str(self.model_path), space.source,
                    self.warm_caches, items, results_queue, self.chunk_size,
                    self._fault_injection.get(shard.shard_id),
                ),
                daemon=True,
            )
            process.start()
            processes[shard.shard_id] = process

        predictions_by_id: dict[int, dict[str, float]] = {}
        streamed: dict[int, list[tuple[int, dict[str, float]]]] = {
            shard.shard_id: [] for shard in shards
        }
        worker_stats: dict[int, dict] = {}
        errors: dict[int, str] = {}
        pending = {shard.shard_id for shard in shards}
        # stall deadline: pushed forward on every message, so it only fires
        # after worker_timeout seconds of total silence from the fleet
        deadline = time.perf_counter() + self.worker_timeout

        def handle(message: tuple) -> None:
            kind, shard_id = message[0], message[1]
            if kind == "results":
                for config_id, metrics in message[2]:
                    predictions_by_id[config_id] = metrics
                    streamed[shard_id].append((config_id, metrics))
            elif kind == "done":
                worker_stats[shard_id] = message[2]
                pending.discard(shard_id)
            elif kind == "error":
                errors[shard_id] = message[2]
                pending.discard(shard_id)

        while pending and time.perf_counter() < deadline:
            try:
                handle(results_queue.get(timeout=0.05))
                deadline = time.perf_counter() + self.worker_timeout
                continue
            except queue_module.Empty:
                pass
            # queue momentarily empty: retire shards whose worker died
            # without a completion message (drain once more first — the
            # worker may have flushed results right before exiting)
            for shard_id in sorted(pending):
                if processes[shard_id].is_alive():
                    continue
                processes[shard_id].join()
                try:
                    while True:
                        handle(results_queue.get(timeout=0.1))
                except queue_module.Empty:
                    pass
                if shard_id in pending:
                    pending.discard(shard_id)
                    errors.setdefault(
                        shard_id, "worker process exited before completing"
                    )
        for shard_id in sorted(pending):  # fleet stalled: reclaim their work
            errors.setdefault(
                shard_id,
                f"worker stalled (no progress for {self.worker_timeout:.0f}s)",
            )
        for process in processes.values():
            if process.is_alive():
                process.terminate()
            process.join()
        results_queue.close()

        # recover configurations no worker delivered, in-process
        coordinator_stats: dict | None = None
        recovered_by_shard: dict[int, int] = {}
        missing = [
            (shard, config_id)
            for shard in shards
            for config_id in shard.config_ids
            if config_id not in predictions_by_id
        ]
        if missing:
            predictor = QoRPredictor.load(
                self.model_path, warm_caches=self.warm_caches
            )
            metrics_list = predictor.predict_batch(
                space.function(), [space.config(cid) for _, cid in missing]
            )
            for (shard, config_id), metrics in zip(missing, metrics_list):
                predictions_by_id[config_id] = metrics
                streamed[shard.shard_id].append((config_id, metrics))
                recovered_by_shard[shard.shard_id] = (
                    recovered_by_shard.get(shard.shard_id, 0) + 1
                )
            coordinator_stats = predictor.cache_stats()

        # per-shard fronts, merged deterministically
        fronts: list[ParetoFront] = []
        for shard in shards:
            front = ParetoFront()
            for config_id, metrics in streamed[shard.shard_id]:
                front.add(
                    DesignPoint(
                        key=space.key_of(config_id),
                        objectives=qor_objectives(metrics),
                        metadata={
                            "config": space.config(config_id),
                            "config_id": config_id,
                        },
                    ),
                    config_id,
                )
            fronts.append(front)
        merged = merge_fronts(fronts)
        model_seconds = time.perf_counter() - start

        reports = [
            ShardReport(
                shard_id=shard.shard_id,
                num_configs=len(shard),
                completed=len(streamed[shard.shard_id])
                - recovered_by_shard.get(shard.shard_id, 0),
                recovered=recovered_by_shard.get(shard.shard_id, 0),
                cache_stats=worker_stats.get(shard.shard_id, {}),
                failed=shard.shard_id in errors,
                error=errors.get(shard.shard_id, ""),
            )
            for shard in shards
        ]
        all_stats = [stats for stats in worker_stats.values()]
        if coordinator_stats is not None:
            all_stats.append(coordinator_stats)
        return ShardedDSEResult(
            kernel=space.kernel,
            num_configs=len(space),
            num_workers=len(shards),
            shard_strategy=self.shard_strategy,
            predictions=[predictions_by_id[cid] for cid in range(len(space))],
            front=merged.points(),
            model_seconds=model_seconds,
            shards=reports,
            recovered_configs=sum(recovered_by_shard.values()),
            cache_stats=QoRPredictor.aggregate_cache_stats(all_stats),
            mp_context=self.mp_context,
        )


__all__ = [
    "SHARD_STRATEGIES", "DEFAULT_CHUNK_SIZE", "PREDICTION_TOLERANCE",
    "ShardSpec", "partition_space", "shard_worker", "ShardReport",
    "ShardedDSEResult", "predicted_front", "fronts_match",
    "max_prediction_error", "ShardedExplorer",
]
