"""Sharded multi-worker design-space exploration.

The batched inference engine (:meth:`HierarchicalQoRModel.predict_batch`)
scores a whole design space in one process; this module scales it across
worker **processes**:

1. :func:`partition_space` splits a :class:`~repro.dse.space.DesignSpace`
   into balanced shards (``round-robin`` or ``pragma-locality``);
2. each shard runs in a worker process (:func:`shard_worker`, a module-level
   — hence spawn-safe — entrypoint) that bootstraps its *own*
   :class:`~repro.core.predictor.QoRPredictor` from a saved model file,
   re-lowers the kernel source, and scores its configurations with
   ``predict_batch`` chunk by chunk, streaming ``(config_id, prediction)``
   pairs back over a queue;
3. the coordinator (:class:`ShardedExplorer`) folds each shard's stream into
   a per-shard :class:`~repro.dse.pareto.ParetoFront` and merges the fronts
   with :func:`~repro.dse.pareto.merge_fronts`.

With ``work_stealing=True`` step 2 runs over a **shared chunk queue**
instead of fixed assignments: every shard is cut into ``chunk_size`` chunks
enqueued in shard order, and each worker (:func:`stealing_worker`) pulls the
next chunk the moment it finishes one — early finishers steal the chunks a
skewed partition would have stranded on a straggler, while the
partition-invariant merge keeps the front bit-identical either way.

**Dedup mode.**  By default the coordinator first partitions the space into
HLS-equivalence classes (:meth:`~repro.dse.space.DesignSpace.dedup`):
configurations that canonicalize to the same effective form
(:func:`~repro.hls.directives.canonicalize_config`) predict bit-identically,
so only one *representative* per class — the member with the smallest config
id — is sharded and scored, and the coordinator fans each representative's
prediction back out to every class member.  The front needs no fan-out at
all: :class:`~repro.dse.pareto.ParetoFront` keeps the smallest config id on
exact objective ties, and every non-representative member has a larger id
than its (bit-identically-predicting) representative, so the front over
representatives *is* the front over the full space.  ``dedup=False``
restores the exhaustive sweep.

**Determinism guarantee.**  Two layers, guarded separately:

* the *merge* is bit-exact: :class:`~repro.dse.pareto.ParetoFront` is a pure
  function of the ``(objectives, config_id)`` multiset, so shard count,
  shard strategy, chunk size and message arrival order cannot change the
  merged front — it is identical, member for member and in the same
  canonical order, to one front fed every prediction directly;
* the *predictions* agree with the single-process batched engine to within
  1e-9 relative (typically bit-exact).  Workers load the same weights and
  run the same deterministic numpy arithmetic; the residual last-ulp
  variation comes from BLAS choosing different (equally correct) kernels
  for different disjoint-union sizes.  The degenerate single-row /
  single-column dispatch — by far the largest such effect — is removed at
  the source (see ``repro.nn.autograd._stable_matmul``).  Dominance gaps
  between *distinct* designs are macroscopic, so this noise cannot flip
  front membership between them.  **Duplicate designs** — distinct
  configurations HLS resolves identically — used to be the one place ulps
  could matter: scored by different processes they could come back
  last-ulp different, letting either duplicate survive the Pareto tie.
  Effective-directive canonicalization closes that hole at the source:
  every process rewrites a configuration to its canonical form before
  graph construction, so duplicates share one decomposition signature —
  one prediction-memo entry per process (duplicates scored by the *same*
  process tie exactly), one warm-cache blob, adjacent never-split slots
  in the ``pragma-locality`` order (so exhaustive locality sweeps keep
  each duplicate family on one worker) — and dedup mode (the default)
  never scores more than one family member to begin with, under *any*
  strategy.  Front **membership** is therefore exactly reproducible
  cross-process: :func:`fronts_match` (exact keys and order, tolerance
  only on the stored objective floats) is the sharded-vs-single-process
  guarantee, and full **bit-equality**
  (:func:`~repro.dse.pareto.fronts_bit_equal` — objectives included)
  holds between any two sweeps that score identical chunk compositions:
  repeated runs, fixed vs work-stealing fleets over the same shards,
  crashed-and-recovered vs clean fleets, resumed vs uninterrupted sweeps,
  and dedup vs exhaustive sweeps in one process.  :func:`fronts_equivalent` (tolerating duplicate
  swaps) remains only for the raw-directives differential path —
  ``dedup=False`` under a signature-blind distribution — which
  reintroduces the duplicate-tie ambiguity that canonicalization
  removes.

**Failure handling.**  A worker that dies mid-shard (crash, OOM-kill) simply
stops streaming: the coordinator notices the process is gone without a
completion message, drains whatever the worker did deliver, and re-scores
the missing configurations in-process, so the sweep always completes with
the exact same front.

**Checkpoint/resume.**  With ``checkpoint=PATH`` the coordinator persists
every scored prediction through :class:`~repro.dse.checkpoint.CheckpointWriter`
(atomic tmp+rename writes, digest-sealed, bound to the space fingerprint,
model weights digest and precision tier); ``resume=True`` folds a verified
checkpoint back in and dispatches only the not-yet-scored configurations.
Bit-equality with an uninterrupted sweep is achieved **by construction**:
predictions carry last-ulp sensitivity to ``predict_batch`` composition
(BLAS kernel dispatch varies with the disjoint-union size), so the resumed
run reproduces the clean run's exact chunk compositions — the partition is
computed over the *full* wanted set exactly as a clean run would, already-
scored work is dropped only in **whole chunks** of that canonical layout
(checkpoint records are chunk-granular, results stream per whole chunk),
and in-process recovery re-scores missing work one original chunk per
batch.  Checkpointed predictions round-trip exactly through JSON's
``repr``-based float encoding, and the merge is a pure function of the
``(objectives, config_id)`` multiset — so the resumed front is bit-equal
(:func:`~repro.dse.pareto.fronts_bit_equal`) to the uninterrupted one.
The fault-injection differential tests (``repro.testing.faults``) assert
exactly this for fleets killed, stalled and aborted mid-sweep in both
dispatch modes.

**Warm-cache write-back.**  With ``write_back=True`` every worker ships the
construction-cache / prediction-memo entries *it* built (a bounded,
canonical-keyed delta — adopted entries are subtracted) back over the
result queue, and the coordinator merges all deltas into the model file
under the versioned warm-cache machinery of ``core.serialization``.  The
next fleet run over the same space adopts them and does zero cold graph
builds.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.predictor import QoRPredictor
from repro.core.serialization import load_model, model_weights_digest, save_model
from repro.dse.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    CheckpointWriter,
    load_checkpoint,
    space_fingerprint,
)
from repro.dse.explorer import qor_objectives
from repro.dse.pareto import (
    DesignPoint,
    ParetoFront,
    fronts_bit_equal,
    merge_fronts,
)
from repro.dse.space import DesignSpace
from repro.flags import normalize_precision
from repro.frontend.pragmas import PragmaConfig
from repro.graph.cache import GraphConstructionCache
from repro.graph.hierarchy import decomposition_signature
from repro.ir.builder import lower_source
from repro.testing.faults import InjectedFault, normalize_fault

#: the shard strategies understood by :func:`partition_space`
SHARD_STRATEGIES: tuple[str, ...] = ("round-robin", "pragma-locality")

#: configurations scored (and streamed) per worker chunk
DEFAULT_CHUNK_SIZE = 32

#: per-category bound on one worker's write-back delta.  Deltas are
#: canonical-keyed, so entries past the bound are not lost correctness-wise
#: — they are simply rebuilt by a later sweep instead of banked; the bound
#: keeps one queue message from ballooning on enormous spaces
WRITE_BACK_MAX_ENTRIES = 8192

#: relative agreement guaranteed between worker-process and single-process
#: predictions (see the determinism notes in the module docstring); the
#: differential tests and the sharded benchmark guard exactly this bound
PREDICTION_TOLERANCE = 1e-9


def max_prediction_error(
    a: list[dict[str, float]], b: list[dict[str, float]]
) -> float:
    """Worst per-metric relative deviation between two prediction lists.

    The quantity the sharded-vs-single-process guards compare against
    :data:`PREDICTION_TOLERANCE` (denominators are clamped at 1.0 so
    near-zero metrics do not inflate the ratio).  Misaligned inputs are an
    error — a truncating comparison could pass vacuously.
    """
    if len(a) != len(b):
        raise ValueError(
            f"prediction lists differ in length: {len(a)} vs {len(b)}"
        )
    worst = 0.0
    for left, right in zip(a, b):
        for name in left:
            scale = max(abs(left[name]), 1.0)
            worst = max(worst, abs(left[name] - right[name]) / scale)
    return worst


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a design space: a stable id and the config ids it owns.

    ``config_ids`` are ids into the canonical order of the
    :class:`~repro.dse.space.DesignSpace` the shard was cut from, sorted
    ascending; every id of the space belongs to exactly one shard.
    """

    shard_id: int
    config_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.config_ids)


def _round_robin_blocks(
    config_ids: list[int], num_shards: int
) -> list[tuple[int, ...]]:
    """Deal the (sorted) config ids round-robin into ``num_shards`` piles."""
    return [
        tuple(config_ids[i::num_shards]) for i in range(num_shards)
    ]


def _pragma_locality_blocks(
    space: DesignSpace, num_shards: int, config_ids: list[int]
) -> list[tuple[int, ...]]:
    """Contiguous balanced blocks over the pragma-delta locality order.

    Configurations are ordered by their decomposition signature (the
    inner-unit and outer-graph cache keys of
    :func:`~repro.graph.hierarchy.decomposition_signature`), which places
    configurations that share pragma deltas — and therefore graph
    construction work — next to each other; cutting the order into
    contiguous blocks maximizes each worker's construction-cache hit rate.
    Signature computation builds no graphs, so sharding stays cheap.

    A block boundary never splits a run of **equal** signatures: such
    configurations are the *same design* (identical graphs, identical
    predictions), and keeping them on one worker means its per-signature
    prediction memo serves them one bit-identical value — which is what
    keeps Pareto ties between duplicate designs resolving exactly as in
    the single-process engine.  Blocks therefore balance to within one
    signature run rather than one configuration.
    """
    cache = GraphConstructionCache()
    function = space.function()
    signatures = []
    for config_id in config_ids:
        outer_key, unit_keys = decomposition_signature(
            function, space.config(config_id), cache
        )
        signatures.append((unit_keys, outer_key, config_id))
    signatures.sort()
    keys = [(unit_keys, outer_key) for unit_keys, outer_key, _ in signatures]
    order = [config_id for _, _, config_id in signatures]
    base, extra = divmod(len(order), num_shards)
    blocks: list[tuple[int, ...]] = []
    position = 0
    for index in range(num_shards):
        if position >= len(order):
            break
        end = min(position + base + (1 if index < extra else 0), len(order))
        while 0 < end < len(order) and keys[end] == keys[end - 1]:
            end += 1  # extend to the end of the equal-signature run
        if end > position:
            blocks.append(tuple(sorted(order[position:end])))
        position = end
    if position < len(order) and blocks:
        blocks[-1] = tuple(sorted(blocks[-1] + tuple(order[position:])))
    return blocks


def partition_space(
    space: DesignSpace,
    num_shards: int,
    strategy: str = "round-robin",
    *,
    config_ids: list[int] | None = None,
) -> list[ShardSpec]:
    """Partition a design space into at most ``num_shards`` balanced shards.

    Strategies:

    * ``round-robin`` — the i-th id (in ascending order) goes to shard
      ``i % num_shards``; cheap and delta-agnostic, sizes differ by at most
      one configuration;
    * ``pragma-locality`` — configurations sharing pragma deltas are grouped
      onto the same shard so each worker's construction cache sees maximal
      reuse; sizes balance to within one *signature run* because a block
      boundary never splits equal-signature duplicates
      (see :func:`_pragma_locality_blocks`).

    ``config_ids`` restricts the partition to a subset of the space — the
    dedup mode shards only class representatives this way.  Default: every
    id.  Empty shards (more workers than configurations) are dropped.  The
    partition is deterministic: same space, ids, count and strategy — same
    shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; available: {SHARD_STRATEGIES}"
        )
    ids = sorted(config_ids) if config_ids is not None else list(range(len(space)))
    if strategy == "pragma-locality":
        blocks = _pragma_locality_blocks(space, num_shards, ids)
    else:
        blocks = _round_robin_blocks(ids, num_shards)
    return [
        ShardSpec(shard_id=index, config_ids=block)
        for index, block in enumerate(blocks)
        if block
    ]


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def _bounded_warm_delta(predictor: QoRPredictor) -> dict:
    """The worker's write-back payload: newly warmed entries, bounded.

    Exports only the cache/memo entries this process built itself
    (``delta_only`` subtracts everything adopted from the model file) and
    truncates each category at :data:`WRITE_BACK_MAX_ENTRIES` — dict
    iteration order is insertion order, so the kept prefix is the
    deterministic earliest-built slice.
    """
    delta = predictor.model.export_warm_caches(delta_only=True)
    construction = delta.get("construction", {})
    return {
        "construction": {
            "units": construction.get("units", [])[:WRITE_BACK_MAX_ENTRIES],
            "outer": construction.get("outer", [])[:WRITE_BACK_MAX_ENTRIES],
        },
        "predictions": delta.get("predictions", [])[:WRITE_BACK_MAX_ENTRIES],
    }


def shard_worker(
    shard_id: int,
    model_path: str,
    source: str,
    warm_caches: bool,
    items: list[tuple[int, PragmaConfig]],
    results: multiprocessing.Queue,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    fault=None,
    precision: str = "float64",
    write_back: bool = False,
) -> None:
    """Worker-process entrypoint: score one shard and stream results back.

    Module-level (importable by name), with picklable arguments only, so it
    runs under any multiprocessing start method including ``spawn``.  The
    worker owns its whole pipeline: it loads a
    :class:`~repro.core.predictor.QoRPredictor` once from ``model_path``
    (optionally adopting the persisted warm caches), re-lowers ``source``
    (deterministic, so cache fingerprints agree with every other process),
    and scores its configurations in chunks of ``chunk_size`` through
    ``predict_batch`` — the construction cache persists across chunks, so
    chunking costs no repeated graph building.  The vectorized encoding
    pipeline rides along for free: each worker shares the single
    ``make_batch`` union encoder with cold sweeps and training, and its
    outer-graph sample templates and unit samples likewise persist across
    chunks (the ``outer_templates`` counter in the streamed cache stats
    shows how many deltas each worker captured).

    Messages on ``results``: ``("results", shard_id, [(config_id, metrics),
    ...])`` per chunk, with ``write_back`` one ``("caches", shard_id,
    delta)`` carrying the bounded newly-warmed-cache delta, then ``("done",
    shard_id, cache_stats)``; on an internal error, ``("error", shard_id,
    traceback_text)`` and a non-zero exit.  ``fault`` is the injection
    hook: an int (legacy: hard-exit after N configs) or a
    :class:`~repro.testing.faults.WorkerFault` descriptor, consulted
    between chunks (kill / stall / drop — a kill is ``os._exit``, nothing
    flushed, exactly like a real crash).  ``precision`` selects the
    inference tier each worker casts its weights into at load time
    (``"float64"`` default).
    """
    try:
        fault = normalize_fault(fault)
        predictor = QoRPredictor.load(
            model_path, warm_caches=warm_caches, precision=precision
        )
        function = lower_source(source)
        completed = 0
        chunk_index = 0
        for start in range(0, len(items), max(1, chunk_size)):
            if fault is not None and fault.should_kill(chunk_index, completed):
                os._exit(3)  # simulate a hard crash: nothing is flushed
            if fault is not None and fault.stalls_at(chunk_index):
                time.sleep(fault.stall_seconds)
            chunk = items[start:start + max(1, chunk_size)]
            metrics_list = predictor.predict_batch(
                function, [config for _, config in chunk]
            )
            if fault is None or not fault.drops(chunk_index):
                results.put((
                    "results", shard_id,
                    [
                        (config_id, metrics)
                        for (config_id, _), metrics in zip(chunk, metrics_list)
                    ],
                ))
            completed += len(chunk)
            chunk_index += 1
        if write_back:
            results.put(("caches", shard_id, _bounded_warm_delta(predictor)))
        results.put(("done", shard_id, predictor.cache_stats()))
    except BaseException:
        results.put(("error", shard_id, traceback.format_exc()))
        raise


def stealing_worker(
    worker_id: int,
    model_path: str,
    source: str,
    warm_caches: bool,
    tasks: multiprocessing.Queue,
    results: multiprocessing.Queue,
    fault=None,
    precision: str = "float64",
    write_back: bool = False,
) -> None:
    """Work-stealing worker: drain chunks from a shared queue until sentinel.

    The counterpart of :func:`shard_worker` for the work-stealing mode: no
    work is pre-assigned — every worker pulls the next chunk
    (``[(config_id, config), ...]``) from ``tasks`` as soon as it finishes
    the previous one, so an early-finishing worker keeps stealing chunks
    that a fixed partition would have left on a straggler.  ``tasks``
    carries exactly one ``None`` sentinel per worker after the chunks;
    consuming one ends the worker with a ``("done", worker_id,
    cache_stats)`` message (preceded, with ``write_back``, by its bounded
    ``("caches", ...)`` delta).  Message protocol and crash semantics
    otherwise match :func:`shard_worker`: ``fault`` takes the same int /
    :class:`~repro.testing.faults.WorkerFault` hook, with chunk indices
    counted in pull order.  ``precision`` selects the inference tier each
    worker casts its weights into at load time.
    """
    try:
        fault = normalize_fault(fault)
        predictor = QoRPredictor.load(
            model_path, warm_caches=warm_caches, precision=precision
        )
        function = lower_source(source)
        completed = 0
        chunk_index = 0
        while True:
            chunk = tasks.get()
            if chunk is None:
                break
            if fault is not None and fault.should_kill(chunk_index, completed):
                os._exit(3)  # simulate a hard crash: nothing is flushed
            if fault is not None and fault.stalls_at(chunk_index):
                time.sleep(fault.stall_seconds)
            metrics_list = predictor.predict_batch(
                function, [config for _, config in chunk]
            )
            if fault is None or not fault.drops(chunk_index):
                results.put((
                    "results", worker_id,
                    [
                        (config_id, metrics)
                        for (config_id, _), metrics in zip(chunk, metrics_list)
                    ],
                ))
            completed += len(chunk)
            chunk_index += 1
        if write_back:
            results.put(("caches", worker_id, _bounded_warm_delta(predictor)))
        results.put(("done", worker_id, predictor.cache_stats()))
    except BaseException:
        results.put(("error", worker_id, traceback.format_exc()))
        raise


# --------------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------------- #
@dataclass
class ShardReport:
    """What one worker contributed to a sharded sweep.

    In the fixed-shard mode ``num_configs`` is the shard's assigned size;
    in the work-stealing mode nothing is pre-assigned, so each worker's
    report covers what it actually delivered (``num_configs ==
    completed``) and in-process recovery appears as one trailing
    coordinator entry (``completed == 0``, ``recovered`` = everything no
    worker delivered).
    """

    shard_id: int
    num_configs: int
    #: configurations whose predictions the worker actually delivered
    completed: int
    #: configurations re-scored by the coordinator after a worker failure
    recovered: int = 0
    #: the worker's final cache counters (empty if it died before reporting)
    cache_stats: dict = field(default_factory=dict)
    #: True when the worker exited without a completion message
    failed: bool = False
    error: str = ""


@dataclass
class ShardedDSEResult:
    """Outcome of one sharded exploration.

    ``predictions`` is aligned with the canonical configuration order of the
    explored space (in dedup mode, non-representative members carry a copy
    of their representative's prediction — which is what a full sweep would
    have produced, bit for bit); ``front`` is the merged predicted-Pareto
    front in the canonical ``(objectives, config_id)`` order — bit-identical
    to :func:`predicted_front` over ``predictions``, and identical in
    membership and order to the single-process engine's front (see the
    module docstring for the exact guarantee).
    """

    kernel: str
    num_configs: int
    num_workers: int
    shard_strategy: str
    predictions: list[dict[str, float]]
    front: list[DesignPoint]
    model_seconds: float
    shards: list[ShardReport] = field(default_factory=list)
    #: configurations recovered in-process after worker failures
    recovered_configs: int = 0
    #: per-worker cache counters summed fleet-wide
    cache_stats: dict = field(default_factory=dict)
    #: multiprocessing start method the sweep actually used
    mp_context: str = ""
    #: whether chunks were pulled from a shared work-stealing queue
    work_stealing: bool = False
    #: whether only equivalence-class representatives were scored
    dedup: bool = False
    #: equivalence classes in the space (== num_configs when dedup is off)
    num_classes: int = 0
    #: configurations restored from a resumed checkpoint (never re-scored)
    resumed_configs: int = 0
    #: checkpoint-covered configurations a worker redundantly re-scored
    #: (zero by construction — resumed sweeps dispatch only unscored work)
    rescored_configs: int = 0
    #: checkpoint file progress was persisted to ("" = no checkpointing)
    checkpoint_path: str = ""
    #: whether worker warm-cache deltas were merged back into the model file
    write_back: bool = False
    #: write-back merge summary: deltas received and entries newly banked
    write_back_stats: dict = field(default_factory=dict)

    @property
    def configs_per_second(self) -> float:
        """Effective end-to-end throughput: raw configurations covered per
        second (spawn + load + predict + merge; in dedup mode fanned-out
        members count, which is the point of sweeping fewer of them)."""
        if self.model_seconds <= 0:
            return float("inf")
        return self.num_configs / self.model_seconds

    @property
    def dedup_ratio(self) -> float:
        """Raw configurations per scored representative (1.0 = no dedup)."""
        return self.num_configs / max(1, self.num_classes or self.num_configs)


def predicted_front(
    space: DesignSpace, predictions: list[dict[str, float]]
) -> ParetoFront:
    """Single-process reference front over a space's predictions.

    Feeds every ``(config_id, prediction)`` pair through one
    :class:`~repro.dse.pareto.ParetoFront` — the differential harness
    compares the sharded engine's merged front against exactly this.
    """
    front = ParetoFront()
    for config_id, metrics in enumerate(predictions):
        front.add(
            DesignPoint(
                key=space.key_of(config_id),
                objectives=qor_objectives(metrics),
                metadata={
                    "config": space.config(config_id), "config_id": config_id
                },
            ),
            config_id,
        )
    return front


def fronts_match(
    a: list[DesignPoint],
    b: list[DesignPoint],
    *,
    rel_tolerance: float = PREDICTION_TOLERANCE,
) -> bool:
    """True when two fronts are the same set of designs in the same order.

    Membership and ordering are compared exactly (by key); objective values
    are compared within ``rel_tolerance`` relative, absorbing the last-ulp
    BLAS kernel-dispatch variation described in the module docstring.  This
    is the comparison the differential tests and the sharded benchmark
    guard.
    """
    if len(a) != len(b):
        return False
    for point_a, point_b in zip(a, b):
        if point_a.key != point_b.key:
            return False
        for value_a, value_b in zip(point_a.objectives, point_b.objectives):
            scale = max(abs(value_a), abs(value_b), 1.0)
            if abs(value_a - value_b) > rel_tolerance * scale:
                return False
    return True


def fronts_equivalent(
    a: list[DesignPoint],
    b: list[DesignPoint],
    *,
    rel_tolerance: float = PREDICTION_TOLERANCE,
) -> bool:
    """Like :func:`fronts_match`, but accepting near-tie swaps.

    The dedup algebra makes Pareto ties *within* an equivalence class exact
    — every member carries its representative's prediction bit-for-bit, so
    the deterministic tie-break always picks the same survivor.  What it
    cannot make exact are near-ties between *distinct* designs: two
    configurations that HLS resolves differently (e.g. a pipeline directive
    on a fully unrolled loop shifts the simulated schedule by a few cycles)
    can still be mapped by a trained model to objectives equal up to
    last-ulp batch-composition effects.  Which of such a pair survives
    dominance then depends on those ulps, which differ between process
    topologies (one big batch vs per-shard chunks).  The cross-topology
    front guarantee is therefore: same length, and at every position
    objectives agreeing within tolerance — i.e. interchangeable near-ties.
    """
    if len(a) != len(b):
        return False
    for point_a, point_b in zip(a, b):
        for value_a, value_b in zip(point_a.objectives, point_b.objectives):
            scale = max(abs(value_a), abs(value_b), 1.0)
            if abs(value_a - value_b) > rel_tolerance * scale:
                return False
    return True


def _default_mp_context() -> str:
    """``fork`` where available (cheap bootstrap), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardedExplorer:
    """Coordinator for multi-worker DSE over a saved model.

    Partitions a :class:`~repro.dse.space.DesignSpace` with
    :func:`partition_space`, runs one worker process per shard
    (:func:`shard_worker`), folds the streamed results into per-shard
    Pareto fronts and merges them deterministically.  See the module
    docstring for the equivalence and failure-handling guarantees.

    Parameters:

    * ``model_path`` — a model saved with :meth:`QoRPredictor.save` /
      :func:`repro.core.serialization.save_model`; validated eagerly so a
      missing or untrained model fails before any process is spawned;
    * ``num_workers`` — worker processes (= maximum shard count);
    * ``shard_strategy`` — ``"round-robin"`` or ``"pragma-locality"``;
    * ``warm_caches`` — workers adopt the warm caches persisted in the model
      file (pair with ``write_back`` to also bank what they newly build);
    * ``work_stealing`` — instead of handing each worker one fixed shard,
      split every shard into ``chunk_size`` chunks on one shared task
      queue: each worker pulls the next chunk as soon as it finishes the
      previous one, so a skewed partition (or a slow machine) cannot leave
      the fleet idling behind one straggler.  Chunks are enqueued in shard
      order, so the pragma-locality grouping still keeps construction-cache
      reuse high.  The merged front is **unchanged**: the Pareto merge is
      partition- and order-invariant, so which worker scored which chunk
      cannot affect it;
    * ``mp_context`` — multiprocessing start method; defaults to ``fork``
      where available, ``spawn`` otherwise (the worker entrypoints are safe
      under both);
    * ``worker_timeout`` — a *stall* timeout: seconds without any message
      from any worker before the remaining workers are deemed wedged,
      terminated, and their outstanding work recovered in-process.  An
      actively-streaming fleet never trips it, however long the sweep;
    * ``precision`` — inference tier every worker (and in-process recovery)
      loads the model into: ``"float64"`` (the bit-exact default) or
      ``"float32"`` (the cheap tier, see
      :meth:`repro.core.predictor.QoRPredictor.load`);
    * ``dedup`` — partition the space into HLS-equivalence classes first
      (:meth:`~repro.dse.space.DesignSpace.dedup`), shard and score only
      the class representatives, and fan each representative's prediction
      out to its members.  On by default; the result is identical to the
      exhaustive sweep — same predictions, same front, bit for bit — at
      ``num_classes`` forward passes instead of ``num_configs``;
    * ``checkpoint`` — persist sweep progress to this path through
      :class:`~repro.dse.checkpoint.CheckpointWriter` (atomic, digest-sealed,
      bound to the space fingerprint / model weights digest / precision
      tier), every ``checkpoint_interval`` newly scored configurations;
    * ``resume`` — fold a verified checkpoint at ``checkpoint`` back in
      before dispatching: already-scored configurations are never re-sent to
      a worker, and the resumed front is **bit-equal** to an uninterrupted
      sweep's (see the module docstring).  An unusable checkpoint —
      truncated, corrupted, or bound to a different space/model/precision —
      is discarded with a :class:`RuntimeWarning` and the sweep restarts
      from zero.  Requires ``checkpoint``;
    * ``write_back`` — workers ship the warm-cache entries they newly built
      back to the coordinator (bounded deltas on the result queue), which
      merges them into the model file after the sweep; the next
      ``warm_caches`` fleet over the same space does zero cold graph builds;
    * ``fault_plan`` — a :class:`~repro.testing.faults.FaultPlan` injecting
      worker kills/stalls/drops and coordinator aborts (test harness; merged
      over the legacy ``_fault_injection`` hook).

    The ``partitioner`` hook (benchmarks/tests) replaces
    :func:`partition_space`: a callable ``(space, num_shards) ->
    [ShardSpec]`` — e.g. a deliberately skewed split to measure what work
    stealing buys.
    """

    def __init__(
        self,
        model_path: str | Path,
        *,
        num_workers: int = 2,
        shard_strategy: str = "pragma-locality",
        warm_caches: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        work_stealing: bool = False,
        mp_context: str | None = None,
        worker_timeout: float = 300.0,
        precision: str = "float64",
        dedup: bool = True,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        write_back: bool = False,
        fault_plan=None,
        partitioner=None,
        _fault_injection: dict[int, int] | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {shard_strategy!r}; "
                f"available: {SHARD_STRATEGIES}"
            )
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        self.model_path = Path(model_path)
        self.num_workers = num_workers
        self.shard_strategy = shard_strategy
        self.warm_caches = warm_caches
        self.chunk_size = max(1, chunk_size)
        self.work_stealing = work_stealing
        self.mp_context = mp_context or _default_mp_context()
        self.worker_timeout = worker_timeout
        self.precision = normalize_precision(precision)
        self.dedup = dedup
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.resume = resume
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.write_back = write_back
        self.partitioner = partitioner
        # fault-injection hooks: the legacy per-worker int map and the
        # structured FaultPlan merge into one WorkerFault-per-id table
        faults = {
            worker_id: normalize_fault(fault)
            for worker_id, fault in (_fault_injection or {}).items()
        }
        self._abort_after = None
        if fault_plan is not None:
            faults.update({
                worker_id: normalize_fault(fault)
                for worker_id, fault in fault_plan.workers.items()
            })
            self._abort_after = fault_plan.abort_coordinator_after_checkpoints
        self._worker_faults = faults
        # per-explore state consulted by _run_fleet (whose signature is
        # stable: tests monkeypatch it)
        self._checkpoint_writer = None
        self._pending_cache_deltas: dict[int, dict] = {}
        self._validate_model()

    def _validate_model(self) -> None:
        """Fail fast — before spawning anything — on a bad model file."""
        from repro.core.serialization import peek_manifest

        manifest = peek_manifest(self.model_path)
        if "g" not in manifest:
            raise ValueError(
                f"model at {self.model_path} has no trained global model; "
                "train and save it before sharded exploration"
            )

    # ------------------------------------------------------------------ #
    def _partition(
        self, space: DesignSpace, config_ids: list[int] | None = None
    ) -> list[ShardSpec]:
        """The shard partition (``partitioner`` hook or :func:`partition_space`).

        ``config_ids`` restricts the partition to the dedup representatives.
        A custom partitioner sees the full space (it may be signature- or
        skew-driven); its shards are filtered down to the restricted ids
        afterwards so the hook composes with dedup mode.
        """
        if self.partitioner is not None:
            shards = list(self.partitioner(space, self.num_workers))
            if config_ids is not None:
                keep = set(config_ids)
                shards = [
                    ShardSpec(
                        shard_id=shard.shard_id,
                        config_ids=tuple(
                            cid for cid in shard.config_ids if cid in keep
                        ),
                    )
                    for shard in shards
                ]
                shards = [shard for shard in shards if shard.config_ids]
            return shards
        return partition_space(
            space, self.num_workers, self.shard_strategy, config_ids=config_ids
        )

    def _run_fleet(
        self,
        processes: dict[int, multiprocessing.Process],
        results_queue,
    ) -> tuple[dict, dict, dict, dict]:
        """Drain the fleet's result stream until every process retires.

        Shared by the fixed-shard and work-stealing modes (messages are
        keyed by shard id in the former, worker id in the latter).  Returns
        ``(predictions_by_id, streamed, worker_stats, errors)``; handles
        silent worker death (retired with an error after a final drain) and
        the fleet-wide stall timeout.  Side channels ride the same stream:
        every scored prediction is recorded into the active
        :class:`~repro.dse.checkpoint.CheckpointWriter` (when checkpointing)
        and ``("caches", ...)`` write-back deltas are parked in
        ``_pending_cache_deltas`` for the post-sweep merge.
        """
        predictions_by_id: dict[int, dict[str, float]] = {}
        streamed: dict[int, list[tuple[int, dict[str, float]]]] = {
            key: [] for key in processes
        }
        worker_stats: dict[int, dict] = {}
        errors: dict[int, str] = {}
        pending = set(processes)
        # stall deadline: pushed forward on every message, so it only fires
        # after worker_timeout seconds of total silence from the fleet
        deadline = time.perf_counter() + self.worker_timeout

        def handle(message: tuple) -> None:
            kind, key = message[0], message[1]
            if kind == "results":
                writer = self._checkpoint_writer
                for config_id, metrics in message[2]:
                    predictions_by_id[config_id] = metrics
                    streamed[key].append((config_id, metrics))
                    if writer is not None:
                        writer.record(config_id, metrics)
            elif kind == "caches":
                self._pending_cache_deltas[key] = message[2]
            elif kind == "done":
                worker_stats[key] = message[2]
                pending.discard(key)
            elif kind == "error":
                errors[key] = message[2]
                pending.discard(key)

        while pending and time.perf_counter() < deadline:
            try:
                handle(results_queue.get(timeout=0.05))
                deadline = time.perf_counter() + self.worker_timeout
                continue
            except queue_module.Empty:
                pass
            # queue momentarily empty: retire keys whose process died
            # without a completion message (drain once more first — the
            # worker may have flushed results right before exiting)
            for key in sorted(pending):
                if processes[key].is_alive():
                    continue
                processes[key].join()
                try:
                    while True:
                        handle(results_queue.get(timeout=0.1))
                except queue_module.Empty:
                    pass
                if key in pending:
                    pending.discard(key)
                    errors.setdefault(
                        key, "worker process exited before completing"
                    )
        for key in sorted(pending):  # fleet stalled: reclaim their work
            errors.setdefault(
                key,
                f"worker stalled (no progress for {self.worker_timeout:.0f}s)",
            )
        for process in processes.values():
            if process.is_alive():
                process.terminate()
            process.join()
        return predictions_by_id, streamed, worker_stats, errors

    @staticmethod
    def _cleanup_fleet(
        processes: dict[int, multiprocessing.Process], *queues
    ) -> None:
        """Terminate/join every live worker and release the queues.

        Runs in the ``finally`` of both exploration modes so that a
        coordinator-side exception — a failure mid-merge or mid-recovery, or
        a ``KeyboardInterrupt`` while draining the result stream — cannot
        leak live worker processes or queue feeder threads, which a resident
        caller (the serving daemon, a notebook) would accumulate forever.
        Idempotent: on the normal path the fleet has already retired and
        every step is a no-op.
        """
        for process in processes.values():
            try:
                if process.is_alive():
                    process.terminate()
                process.join()
            except (OSError, ValueError, AssertionError):
                pass  # already reaped / never fully started
        for queue in queues:
            try:
                # discard unflushed buffers so the feeder thread cannot block
                # interpreter exit, then close the queue's pipe ends
                queue.cancel_join_thread()
                queue.close()
            except (OSError, ValueError):
                pass  # already closed

    def _recover_missing(
        self,
        space: DesignSpace,
        missing_chunks: list[list[int]],
        predictions_by_id: dict[int, dict[str, float]],
    ) -> tuple[list[tuple[int, dict[str, float]]], dict | None, dict | None]:
        """Score configurations no worker delivered, in-process.

        ``missing_chunks`` preserves the chunk layout the lost worker would
        have scored, and each chunk is re-scored as its own batch: BLAS
        kernel dispatch varies at the last ulp with batch composition, so
        recovery must reproduce the compositions exactly for the
        crashed-and-recovered front to stay bit-equal to a clean fleet's.

        Returns ``(recovered, cache_stats, write_back_delta)`` — the last a
        bounded warm-cache delta (the coordinator is just another scoring
        process as far as write-back is concerned), ``None`` unless
        ``write_back`` is on and something was recovered.
        """
        if not any(missing_chunks):
            return [], None, None
        predictor = QoRPredictor.load(
            self.model_path, warm_caches=self.warm_caches,
            precision=self.precision,
        )
        function = space.function()
        recovered: list[tuple[int, dict[str, float]]] = []
        for chunk in missing_chunks:
            if not chunk:
                continue
            metrics_list = predictor.predict_batch(
                function, [space.config(cid) for cid in chunk]
            )
            recovered.extend(zip(chunk, metrics_list))
        for config_id, metrics in recovered:
            predictions_by_id[config_id] = metrics
        delta = _bounded_warm_delta(predictor) if self.write_back else None
        return recovered, predictor.cache_stats(), delta

    def _prepare_sweep(self, space: DesignSpace) -> dict[int, dict[str, float]]:
        """Reset per-sweep state; load the checkpoint and arm the writer.

        Returns the prior scored table — the configurations a resumed sweep
        must not dispatch again (empty without ``resume``, or when the
        checkpoint is missing/unusable, or without checkpointing at all).
        """
        self._pending_cache_deltas = {}
        self._checkpoint_writer = None
        if self.checkpoint is None:
            return {}
        fingerprint = space_fingerprint(space)
        digest = model_weights_digest(self.model_path)
        prior: dict[int, dict[str, float]] = {}
        if self.resume:
            loaded = load_checkpoint(
                self.checkpoint,
                expected_space=fingerprint,
                expected_model=digest,
                expected_precision=self.precision,
            )
            if loaded is not None:
                prior = {
                    config_id: metrics
                    for config_id, metrics in loaded.scored.items()
                    if 0 <= config_id < len(space)
                }
        on_save = None
        if self._abort_after is not None:
            abort_after = self._abort_after

            def on_save(saves: int) -> None:
                """Injected coordinator crash: die after N durable saves."""
                if saves >= abort_after:
                    raise InjectedFault(
                        f"coordinator aborted after {saves} checkpoint saves"
                    )

        self._checkpoint_writer = CheckpointWriter(
            self.checkpoint,
            space_fingerprint=fingerprint,
            model_digest=digest,
            precision=self.precision,
            interval=self.checkpoint_interval,
            prior=prior,
            on_save=on_save,
        )
        return prior

    def _persist_write_back(self, deltas: list[dict]) -> dict:
        """Merge worker warm-cache deltas into the model file.

        Reloads the saved model with its persisted warm caches, imports
        every delta (canonical-keyed, so overlapping entries merge
        idempotently) and re-saves.  The weight arrays re-serialize
        bit-identically (the archive always holds the float64 masters), so
        the model weights digest — and with it any live checkpoint — stays
        valid across the rewrite.  Returns a merge summary of entries newly
        banked per category.
        """
        deltas = [delta for delta in deltas if delta]
        if not deltas:
            return {"deltas": 0}
        model = load_model(self.model_path, warm_caches=True)
        before = model.warm_cache_sizes()
        for delta in deltas:
            model.import_warm_caches(delta)
        after = model.warm_cache_sizes()
        save_model(model, self.model_path, warm_caches=True)
        return {
            "deltas": len(deltas),
            "new_units": after["units"] - before["units"],
            "new_outer": after["outer"] - before["outer"],
            "new_predictions": after["predictions"] - before["predictions"],
        }

    def _finish_sweep(
        self,
        prior: dict[int, dict[str, float]],
        predictions_by_id: dict[int, dict[str, float]],
        recovered: list[tuple[int, dict[str, float]]],
        coordinator_delta: dict | None,
    ) -> dict:
        """Post-fleet bookkeeping shared by both exploration modes.

        Records coordinator-recovered predictions into the checkpoint, folds
        the resumed prior back into the prediction table, seals the
        checkpoint as ``complete`` and merges any pending write-back deltas
        into the model file.  Returns the write-back summary (empty dict
        when write-back is off).
        """
        writer = self._checkpoint_writer
        if writer is not None:
            for config_id, metrics in recovered:
                writer.record(config_id, metrics)
        for config_id, metrics in prior.items():
            predictions_by_id.setdefault(config_id, metrics)
        if writer is not None:
            writer.save(complete=True)
        if not self.write_back:
            return {}
        deltas = [
            self._pending_cache_deltas[key]
            for key in sorted(self._pending_cache_deltas)
        ]
        if coordinator_delta:
            deltas.append(coordinator_delta)
        return self._persist_write_back(deltas)

    @staticmethod
    def _stream_front(
        space: DesignSpace, stream: list[tuple[int, dict[str, float]]]
    ) -> ParetoFront:
        """Fold one worker/shard stream into a Pareto front."""
        front = ParetoFront()
        for config_id, metrics in stream:
            front.add(
                DesignPoint(
                    key=space.key_of(config_id),
                    objectives=qor_objectives(metrics),
                    metadata={
                        "config": space.config(config_id),
                        "config_id": config_id,
                    },
                ),
                config_id,
            )
        return front

    def explore(self, space: DesignSpace) -> ShardedDSEResult:
        """Score every configuration of ``space`` across the worker fleet.

        Returns predictions aligned with the space's canonical order and the
        merged Pareto front; never raises on worker death — missing work is
        recovered in-process (see ``ShardedDSEResult.recovered_configs``).
        With ``work_stealing`` the same guarantees hold over the shared
        chunk queue (see the class docstring).  In dedup mode (the default)
        only equivalence-class representatives are dispatched; members get
        their representative's prediction fanned back out.  With a resumed
        checkpoint, configurations its scored table covers are folded in
        directly and only the remainder is dispatched.
        """
        deduped = space.dedup() if self.dedup else None
        wanted = list(
            deduped.representative_ids() if deduped else range(len(space))
        )
        prior = self._prepare_sweep(space)
        to_score = [cid for cid in wanted if cid not in prior]
        if self.work_stealing:
            return self._explore_stealing(space, deduped, prior, wanted, to_score)
        start = time.perf_counter()
        # None = "everything" preserves the partitioner hook's full view.
        # Dedup restricts the partition to class representatives; a resumed
        # prior deliberately does NOT — the partition (hence the chunk
        # layout) must match the uninterrupted sweep's, and already-scored
        # work is dropped per whole chunk at dispatch instead, so every
        # remaining batch keeps its original composition (bit-equality)
        restrict = wanted if deduped is not None else None
        shards = self._partition(space, restrict)
        context = multiprocessing.get_context(self.mp_context)
        results_queue = context.Queue()
        processes: dict[int, multiprocessing.Process] = {}
        try:
            return self._explore_fixed(
                space, deduped, prior, shards, context, results_queue,
                processes, start,
            )
        finally:
            # a coordinator-side exception (mid-drain, mid-merge, Ctrl-C)
            # must not leak live workers or the queue feeder thread
            self._cleanup_fleet(processes, results_queue)

    @staticmethod
    def _fan_out(deduped, predictions_by_id):
        """Predictions over every config id (copy reps to members)."""
        if deduped is None:
            return predictions_by_id
        return deduped.fan_out(predictions_by_id)

    def _dispatch_layout(
        self, config_ids: list[int], prior: dict
    ) -> tuple[list[int], list[list[int]]]:
        """What a worker actually scores after dropping resumed work.

        Returns ``(flat dispatch list, its chunk layout)``.  Already-scored
        configurations are removed at *chunk* granularity: results stream
        per whole chunk, so a checkpoint's scored table is a union of whole
        chunks of this same layout, and dropping them leaves every surviving
        chunk's batch composition identical to the uninterrupted sweep's
        (dropped and surviving blocks are all ``chunk_size`` long bar a
        final short one, so re-chunking the concatenation reproduces the
        surviving chunks exactly).  That composition invariance is what
        makes a resumed front bit-equal, not merely tolerance-close.
        """
        kept: list[int] = []
        for offset in range(0, len(config_ids), self.chunk_size):
            kept.extend(
                cid
                for cid in config_ids[offset:offset + self.chunk_size]
                if cid not in prior
            )
        layout = [
            kept[offset:offset + self.chunk_size]
            for offset in range(0, len(kept), self.chunk_size)
        ]
        return kept, layout

    def _explore_fixed(
        self, space, deduped, prior, shards, context, results_queue,
        processes, start,
    ) -> ShardedDSEResult:
        """Fixed-assignment exploration body (cleanup owned by caller)."""
        dispatched: dict[int, list[int]] = {}
        layouts: dict[int, list[list[int]]] = {}
        for shard in shards:
            flat, layout = self._dispatch_layout(shard.config_ids, prior)
            dispatched[shard.shard_id] = flat
            layouts[shard.shard_id] = layout
            items = [(cid, space.config(cid)) for cid in flat]
            process = context.Process(
                target=shard_worker,
                args=(
                    shard.shard_id, str(self.model_path), space.source,
                    self.warm_caches, items, results_queue, self.chunk_size,
                    self._worker_faults.get(shard.shard_id), self.precision,
                    self.write_back,
                ),
                daemon=True,
            )
            process.start()
            processes[shard.shard_id] = process

        predictions_by_id, streamed, worker_stats, errors = self._run_fleet(
            processes, results_queue
        )
        # the acceptance guard for resume: workers only ever receive
        # not-yet-scored configurations, so nothing checkpointed comes back
        rescored = sum(
            1 for stream in streamed.values()
            for config_id, _ in stream if config_id in prior
        )

        # recover configurations no worker delivered, in-process — chunk by
        # chunk in the layout the worker would have scored (losses are
        # chunk-granular, so compositions — and hence bits — are preserved)
        recovered_by_shard: dict[int, int] = {}
        recovery_chunks: list[list[int]] = []
        chunk_owner: list[int] = []
        for shard in shards:
            for chunk in layouts[shard.shard_id]:
                miss = [c for c in chunk if c not in predictions_by_id]
                if miss:
                    recovery_chunks.append(miss)
                    chunk_owner.append(shard.shard_id)
        recovered, coordinator_stats, coordinator_delta = self._recover_missing(
            space, recovery_chunks, predictions_by_id
        )
        index = 0
        for owner, chunk in zip(chunk_owner, recovery_chunks):
            for _ in chunk:
                config_id, metrics = recovered[index]
                index += 1
                streamed[owner].append((config_id, metrics))
                recovered_by_shard[owner] = recovered_by_shard.get(owner, 0) + 1

        write_back_stats = self._finish_sweep(
            prior, predictions_by_id, recovered, coordinator_delta
        )

        # per-shard fronts, merged deterministically; resumed predictions
        # join as one more front (the merge is partition-invariant)
        fronts = [
            self._stream_front(space, streamed[shard.shard_id])
            for shard in shards
        ]
        if prior:
            fronts.append(self._stream_front(space, sorted(prior.items())))
        merged = merge_fronts(fronts)
        model_seconds = time.perf_counter() - start

        reports = [
            ShardReport(
                shard_id=shard.shard_id,
                num_configs=len(dispatched[shard.shard_id]),
                completed=len(streamed[shard.shard_id])
                - recovered_by_shard.get(shard.shard_id, 0),
                recovered=recovered_by_shard.get(shard.shard_id, 0),
                cache_stats=worker_stats.get(shard.shard_id, {}),
                failed=shard.shard_id in errors,
                error=errors.get(shard.shard_id, ""),
            )
            for shard in shards
        ]
        all_stats = [stats for stats in worker_stats.values()]
        if coordinator_stats is not None:
            all_stats.append(coordinator_stats)
        full = self._fan_out(deduped, predictions_by_id)
        return ShardedDSEResult(
            kernel=space.kernel,
            num_configs=len(space),
            num_workers=len(shards),
            shard_strategy=self.shard_strategy,
            predictions=[full[cid] for cid in range(len(space))],
            front=merged.points(),
            model_seconds=model_seconds,
            shards=reports,
            recovered_configs=sum(recovered_by_shard.values()),
            cache_stats=QoRPredictor.aggregate_cache_stats(all_stats),
            mp_context=self.mp_context,
            dedup=deduped is not None,
            num_classes=(
                deduped.num_classes if deduped is not None else len(space)
            ),
            resumed_configs=len(prior),
            rescored_configs=rescored,
            checkpoint_path=str(self.checkpoint or ""),
            write_back=self.write_back,
            write_back_stats=write_back_stats,
        )

    def _explore_stealing(
        self, space: DesignSpace, deduped, prior, wanted, to_score
    ) -> ShardedDSEResult:
        """Work-stealing exploration over one shared chunk queue.

        Shards are computed exactly as in the fixed mode (so pragma-locality
        keeps related configurations adjacent), then split into
        ``chunk_size`` chunks enqueued in shard order; each worker pulls the
        next chunk as soon as it finishes one.  Crash/stall recovery and the
        deterministic merge are identical — the merge is partition-
        invariant, so the stolen distribution of chunks cannot change the
        front.
        """
        start = time.perf_counter()
        # same partition as a clean sweep (see explore()): resumed work is
        # dropped per whole chunk so surviving chunks keep their composition
        restrict = wanted if deduped is not None else None
        shards = self._partition(space, restrict)
        chunks: list[list[tuple[int, PragmaConfig]]] = []
        for shard in shards:
            for offset in range(0, len(shard.config_ids), self.chunk_size):
                chunk = [
                    (cid, space.config(cid))
                    for cid in shard.config_ids[offset:offset + self.chunk_size]
                    if cid not in prior
                ]
                if chunk:
                    chunks.append(chunk)
        # a fully-resumed sweep has no chunks and spawns no workers at all
        num_workers = min(self.num_workers, len(chunks)) if chunks else 0
        context = multiprocessing.get_context(self.mp_context)
        results_queue = context.Queue()
        tasks = context.Queue()
        processes: dict[int, multiprocessing.Process] = {}
        try:
            return self._explore_stealing_body(
                space, deduped, prior, to_score, chunks, num_workers, context,
                results_queue, tasks, processes, start,
            )
        finally:
            self._cleanup_fleet(processes, results_queue, tasks)

    def _explore_stealing_body(
        self, space, deduped, prior, to_score, chunks, num_workers, context,
        results_queue, tasks, processes, start,
    ) -> ShardedDSEResult:
        """Work-stealing exploration body (cleanup owned by caller)."""
        for chunk in chunks:
            tasks.put(chunk)
        for _ in range(num_workers):
            tasks.put(None)  # one end-of-work sentinel per worker
        for worker_id in range(num_workers):
            process = context.Process(
                target=stealing_worker,
                args=(
                    worker_id, str(self.model_path), space.source,
                    self.warm_caches, tasks, results_queue,
                    self._worker_faults.get(worker_id), self.precision,
                    self.write_back,
                ),
                daemon=True,
            )
            process.start()
            processes[worker_id] = process

        predictions_by_id, streamed, worker_stats, errors = self._run_fleet(
            processes, results_queue
        )
        rescored = sum(
            1 for stream in streamed.values()
            for config_id, _ in stream if config_id in prior
        )
        recovery_chunks = [
            [cid for cid, _ in chunk if cid not in predictions_by_id]
            for chunk in chunks
        ]
        recovered, coordinator_stats, coordinator_delta = self._recover_missing(
            space, recovery_chunks, predictions_by_id
        )
        write_back_stats = self._finish_sweep(
            prior, predictions_by_id, recovered, coordinator_delta
        )
        fronts = [
            self._stream_front(space, streamed[worker_id])
            for worker_id in processes
        ]
        if recovered:
            fronts.append(self._stream_front(space, recovered))
        if prior:
            fronts.append(self._stream_front(space, sorted(prior.items())))
        merged = merge_fronts(fronts)
        model_seconds = time.perf_counter() - start

        # stealing pre-assigns nothing, so a worker's report covers exactly
        # what it delivered; configurations no worker delivered are
        # attributed to a trailing coordinator entry (completed=0,
        # recovered=all) so crashed fleets never read as fully completed
        reports = [
            ShardReport(
                shard_id=worker_id,
                num_configs=len(streamed[worker_id]),
                completed=len(streamed[worker_id]),
                cache_stats=worker_stats.get(worker_id, {}),
                failed=worker_id in errors,
                error=errors.get(worker_id, ""),
            )
            for worker_id in processes
        ]
        if recovered:
            reports.append(
                ShardReport(
                    shard_id=num_workers,
                    num_configs=len(recovered),
                    completed=0,
                    recovered=len(recovered),
                )
            )
        all_stats = [stats for stats in worker_stats.values()]
        if coordinator_stats is not None:
            all_stats.append(coordinator_stats)
        full = self._fan_out(deduped, predictions_by_id)
        return ShardedDSEResult(
            kernel=space.kernel,
            num_configs=len(space),
            num_workers=num_workers,
            shard_strategy=self.shard_strategy,
            predictions=[full[cid] for cid in range(len(space))],
            front=merged.points(),
            model_seconds=model_seconds,
            shards=reports,
            recovered_configs=len(recovered),
            cache_stats=QoRPredictor.aggregate_cache_stats(all_stats),
            mp_context=self.mp_context,
            work_stealing=True,
            dedup=deduped is not None,
            num_classes=(
                deduped.num_classes if deduped is not None else len(space)
            ),
            resumed_configs=len(prior),
            rescored_configs=rescored,
            checkpoint_path=str(self.checkpoint or ""),
            write_back=self.write_back,
            write_back_stats=write_back_stats,
        )


__all__ = [
    "SHARD_STRATEGIES", "DEFAULT_CHUNK_SIZE", "PREDICTION_TOLERANCE",
    "WRITE_BACK_MAX_ENTRIES",
    "ShardSpec", "partition_space", "shard_worker", "stealing_worker",
    "ShardReport", "ShardedDSEResult", "predicted_front", "fronts_match",
    "fronts_equivalent", "fronts_bit_equal", "max_prediction_error",
    "ShardedExplorer",
]
