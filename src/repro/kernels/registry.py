"""Kernel registry: the 16 applications and the train / DSE split.

The paper uses 16 applications from Polybench, MachSuite and CHStone:
12 for GNN training/testing and 4 (``bicg``, ``symm``, ``mvt``, ``syrk``) for
the DSE experiment.  This registry mirrors that split.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ir.builder import lower_source
from repro.ir.structure import IRFunction
from repro.kernels.chstone import CHSTONE_KERNELS
from repro.kernels.machsuite import MACHSUITE_KERNELS
from repro.kernels.polybench import POLYBENCH_KERNELS

#: every kernel source, keyed by name
KERNEL_SOURCES: dict[str, str] = {
    **POLYBENCH_KERNELS,
    **MACHSUITE_KERNELS,
    **CHSTONE_KERNELS,
}

#: the four applications held out for the DSE experiment (Table V)
DSE_KERNELS: tuple[str, ...] = ("bicg", "symm", "mvt", "syrk")

#: the twelve applications used for model training and testing
TRAIN_KERNELS: tuple[str, ...] = tuple(
    name for name in (
        "gemm", "atax", "gesummv", "gemver", "mm2", "doitgen", "trmm",
        "jacobi1d", "stencil2d", "stencil3d", "fir", "gsm_autocorr",
    )
)

#: additional kernels available for extended experiments
EXTRA_KERNELS: tuple[str, ...] = tuple(
    name for name in KERNEL_SOURCES
    if name not in TRAIN_KERNELS and name not in DSE_KERNELS
)


def kernel_source(name: str) -> str:
    """Raw HLS-C source of one kernel."""
    if name not in KERNEL_SOURCES:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNEL_SOURCES)}"
        )
    return KERNEL_SOURCES[name]


@lru_cache(maxsize=None)
def load_kernel(name: str) -> IRFunction:
    """Parse and lower one kernel to IR (cached)."""
    return lower_source(kernel_source(name))


def load_kernels(names: tuple[str, ...] | list[str]) -> dict[str, IRFunction]:
    """Lower several kernels, keyed by name."""
    return {name: load_kernel(name) for name in names}


def training_kernels() -> dict[str, IRFunction]:
    """The 12 training applications."""
    return load_kernels(TRAIN_KERNELS)


def dse_kernels() -> dict[str, IRFunction]:
    """The 4 held-out DSE applications (bicg, symm, mvt, syrk)."""
    return load_kernels(DSE_KERNELS)


def all_kernels() -> dict[str, IRFunction]:
    """All 16 benchmark applications (plus extras)."""
    return load_kernels(tuple(KERNEL_SOURCES))


__all__ = [
    "KERNEL_SOURCES", "DSE_KERNELS", "TRAIN_KERNELS", "EXTRA_KERNELS",
    "kernel_source", "load_kernel", "load_kernels",
    "training_kernels", "dse_kernels", "all_kernels",
]
