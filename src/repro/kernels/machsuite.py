"""MachSuite-style kernels (stencils, sparse and signal processing) in HLS-C."""

from __future__ import annotations

STENCIL2D = """
void stencil2d(int orig[16][16], int sol[16][16], int filt[3][3]) {
  int r, c, k1, k2;
  for (r = 0; r < 14; r++) {
    for (c = 0; c < 14; c++) {
      int temp = 0;
      for (k1 = 0; k1 < 3; k1++) {
        for (k2 = 0; k2 < 3; k2++) {
          temp += filt[k1][k2] * orig[r + k1][c + k2];
        }
      }
      sol[r][c] = temp;
    }
  }
}
"""

STENCIL3D = """
void stencil3d(int orig[8][8][8], int sol[8][8][8], int C0, int C1) {
  int i, j, k;
  for (i = 1; i < 7; i++) {
    for (j = 1; j < 7; j++) {
      for (k = 1; k < 7; k++) {
        int sum0 = orig[i][j][k];
        int sum1 = orig[i+1][j][k] + orig[i-1][j][k]
                 + orig[i][j+1][k] + orig[i][j-1][k]
                 + orig[i][j][k+1] + orig[i][j][k-1];
        sol[i][j][k] = C0 * sum0 + C1 * sum1;
      }
    }
  }
}
"""

SPMV_ELLPACK = """
void spmv_ellpack(int nzval[32][8], int cols[32][8], int vec[32], int out[32]) {
  int i, j;
  for (i = 0; i < 32; i++) {
    int sum = 0;
    for (j = 0; j < 8; j++) {
      int col = cols[i][j];
      sum += nzval[i][j] * vec[col];
    }
    out[i] = sum;
  }
}
"""

FIR = """
void fir(int input[64], int coeff[16], int output[64]) {
  int n, k;
  for (n = 0; n < 64; n++) {
    int acc = 0;
    for (k = 0; k < 16; k++) {
      if (n >= k) {
        acc += coeff[k] * input[n - k];
      }
    }
    output[n] = acc;
  }
}
"""

MD_KNN = """
void md_knn(float fx[16], float px[16], float py[16], float pz[16],
            int neighbors[16][8]) {
  int i, j;
  for (i = 0; i < 16; i++) {
    float force = 0.0;
    for (j = 0; j < 8; j++) {
      int idx = neighbors[i][j];
      float dx = px[i] - px[idx];
      float dy = py[i] - py[idx];
      float dz = pz[i] - pz[idx];
      float r2 = dx * dx + dy * dy + dz * dz + 1.0;
      float inv = 1.0 / r2;
      force += dx * inv * inv;
    }
    fx[i] = force;
  }
}
"""

MACHSUITE_KERNELS: dict[str, str] = {
    "stencil2d": STENCIL2D,
    "stencil3d": STENCIL3D,
    "spmv_ellpack": SPMV_ELLPACK,
    "fir": FIR,
    "md_knn": MD_KNN,
}

__all__ = ["MACHSUITE_KERNELS"] + [name.upper() for name in MACHSUITE_KERNELS]
