"""Polybench-style linear-algebra kernels written in the HLS-C subset.

Sizes are scaled down (N = 16..32) relative to the original Polybench
"MINI"/"SMALL" datasets so that exhaustive ground-truth generation and graph
construction stay laptop-scale, while preserving each kernel's loop structure
and memory-access pattern — which is what the prediction models key on.
"""

from __future__ import annotations

GEMM = """
void gemm(int A[16][16], int B[16][16], int C[16][16], int alpha, int beta) {
  int i, j, k;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int acc = 0;
      for (k = 0; k < 16; k++) {
        acc += A[i][k] * B[k][j];
      }
      C[i][j] = beta * C[i][j] + alpha * acc;
    }
  }
}
"""

BICG = """
void bicg(int A[16][16], int s[16], int q[16], int p[16], int r[16]) {
  int i, j;
  for (i = 0; i < 16; i++) {
    s[i] = 0;
  }
  for (i = 0; i < 16; i++) {
    int acc = 0;
    for (j = 0; j < 16; j++) {
      s[j] += r[i] * A[i][j];
      acc += A[i][j] * p[j];
    }
    q[i] = acc;
  }
}
"""

MVT = """
void mvt(int A[16][16], int x1[16], int x2[16], int y1[16], int y2[16]) {
  int i, j;
  for (i = 0; i < 16; i++) {
    int acc = 0;
    for (j = 0; j < 16; j++) {
      acc += A[i][j] * y1[j];
    }
    x1[i] += acc;
  }
  for (i = 0; i < 16; i++) {
    int acc = 0;
    for (j = 0; j < 16; j++) {
      acc += A[j][i] * y2[j];
    }
    x2[i] += acc;
  }
}
"""

SYRK = """
void syrk(int A[16][16], int C[16][16], int alpha, int beta) {
  int i, j, k;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      C[i][j] = C[i][j] * beta;
    }
  }
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int acc = 0;
      for (k = 0; k < 16; k++) {
        acc += A[i][k] * A[j][k];
      }
      C[i][j] += alpha * acc;
    }
  }
}
"""

SYMM = """
void symm(int A[16][16], int B[16][16], int C[16][16], int alpha, int beta) {
  int i, j, k;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int temp = 0;
      for (k = 0; k < 16; k++) {
        if (k < i) {
          temp += B[k][j] * A[i][k];
        }
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp;
    }
  }
}
"""

ATAX = """
void atax(int A[16][16], int x[16], int y[16], int tmp[16]) {
  int i, j;
  for (i = 0; i < 16; i++) {
    y[i] = 0;
  }
  for (i = 0; i < 16; i++) {
    int acc = 0;
    for (j = 0; j < 16; j++) {
      acc += A[i][j] * x[j];
    }
    tmp[i] = acc;
    for (j = 0; j < 16; j++) {
      y[j] += A[i][j] * tmp[i];
    }
  }
}
"""

GESUMMV = """
void gesummv(int A[16][16], int B[16][16], int x[16], int y[16], int tmp[16],
             int alpha, int beta) {
  int i, j;
  for (i = 0; i < 16; i++) {
    int acc_a = 0;
    int acc_b = 0;
    for (j = 0; j < 16; j++) {
      acc_a += A[i][j] * x[j];
      acc_b += B[i][j] * x[j];
    }
    tmp[i] = acc_a;
    y[i] = alpha * acc_a + beta * acc_b;
  }
}
"""

GEMVER = """
void gemver(int A[16][16], int u1[16], int v1[16], int u2[16], int v2[16],
            int w[16], int x[16], int y[16], int z[16], int alpha, int beta) {
  int i, j;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (i = 0; i < 16; i++) {
    int acc = 0;
    for (j = 0; j < 16; j++) {
      acc += beta * A[j][i] * y[j];
    }
    x[i] = x[i] + acc + z[i];
  }
  for (i = 0; i < 16; i++) {
    int acc = 0;
    for (j = 0; j < 16; j++) {
      acc += alpha * A[i][j] * x[j];
    }
    w[i] += acc;
  }
}
"""

MM2 = """
void mm2(int A[16][16], int B[16][16], int C[16][16], int D[16][16],
         int tmp[16][16], int alpha, int beta) {
  int i, j, k;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int acc = 0;
      for (k = 0; k < 16; k++) {
        acc += alpha * A[i][k] * B[k][j];
      }
      tmp[i][j] = acc;
    }
  }
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int acc = 0;
      for (k = 0; k < 16; k++) {
        acc += tmp[i][k] * C[k][j];
      }
      D[i][j] = D[i][j] * beta + acc;
    }
  }
}
"""

DOITGEN = """
void doitgen(int A[8][8][8], int C4[8][8], int sum[8]) {
  int r, q, p, s;
  for (r = 0; r < 8; r++) {
    for (q = 0; q < 8; q++) {
      for (p = 0; p < 8; p++) {
        int acc = 0;
        for (s = 0; s < 8; s++) {
          acc += A[r][q][s] * C4[s][p];
        }
        sum[p] = acc;
      }
      for (p = 0; p < 8; p++) {
        A[r][q][p] = sum[p];
      }
    }
  }
}
"""

TRMM = """
void trmm(int A[16][16], int B[16][16], int alpha) {
  int i, j, k;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int acc = 0;
      for (k = 0; k < 16; k++) {
        if (k > i) {
          acc += A[k][i] * B[k][j];
        }
      }
      B[i][j] = alpha * (B[i][j] + acc);
    }
  }
}
"""

JACOBI1D = """
void jacobi1d(int A[64], int B[64]) {
  int t, i;
  for (t = 0; t < 4; t++) {
    for (i = 1; i < 63; i++) {
      B[i] = (A[i-1] + A[i] + A[i+1]) / 3;
    }
    for (i = 1; i < 63; i++) {
      A[i] = (B[i-1] + B[i] + B[i+1]) / 3;
    }
  }
}
"""

POLYBENCH_KERNELS: dict[str, str] = {
    "gemm": GEMM,
    "bicg": BICG,
    "mvt": MVT,
    "syrk": SYRK,
    "symm": SYMM,
    "atax": ATAX,
    "gesummv": GESUMMV,
    "gemver": GEMVER,
    "mm2": MM2,
    "doitgen": DOITGEN,
    "trmm": TRMM,
    "jacobi1d": JACOBI1D,
}

__all__ = ["POLYBENCH_KERNELS"] + [name.upper() for name in POLYBENCH_KERNELS]
