"""CHStone-style kernels (media / fixed-point processing) in HLS-C.

The original CHStone programs are full applications; the kernels here keep
their characteristic inner loops (prediction filters, windowed transforms)
at a size compatible with exhaustive ground-truth generation.
"""

from __future__ import annotations

ADPCM_PREDICT = """
void adpcm_predict(int input[64], int output[64], int coeffs[8], int history[8]) {
  int n, k;
  for (n = 0; n < 64; n++) {
    int pred = 0;
    for (k = 0; k < 8; k++) {
      pred += coeffs[k] * history[k];
    }
    int err = input[n] - pred / 64;
    output[n] = err;
    for (k = 7; k > 0; k--) {
      history[k] = history[k - 1];
    }
    history[0] = input[n];
  }
}
"""

DCT8X8 = """
void dct8x8(int block[8][8], int out[8][8], int cosines[8][8]) {
  int u, v, x, y;
  for (u = 0; u < 8; u++) {
    for (v = 0; v < 8; v++) {
      int acc = 0;
      for (x = 0; x < 8; x++) {
        for (y = 0; y < 8; y++) {
          acc += block[x][y] * cosines[x][u] * cosines[y][v];
        }
      }
      out[u][v] = acc / 16;
    }
  }
}
"""

GSM_AUTOCORR = """
void gsm_autocorr(int samples[64], int acf[9]) {
  int k, i;
  for (k = 0; k < 9; k++) {
    int sum = 0;
    for (i = 0; i < 64; i++) {
      if (i >= k) {
        sum += samples[i] * samples[i - k];
      }
    }
    acf[k] = sum;
  }
}
"""

CHSTONE_KERNELS: dict[str, str] = {
    "adpcm_predict": ADPCM_PREDICT,
    "dct8x8": DCT8X8,
    "gsm_autocorr": GSM_AUTOCORR,
}

__all__ = ["CHSTONE_KERNELS"] + [name.upper() for name in CHSTONE_KERNELS]
