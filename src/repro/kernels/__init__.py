"""Benchmark kernels (Polybench / MachSuite / CHStone style) in HLS-C."""

from repro.kernels.chstone import CHSTONE_KERNELS
from repro.kernels.machsuite import MACHSUITE_KERNELS
from repro.kernels.polybench import POLYBENCH_KERNELS
from repro.kernels.registry import (
    DSE_KERNELS,
    EXTRA_KERNELS,
    KERNEL_SOURCES,
    TRAIN_KERNELS,
    all_kernels,
    dse_kernels,
    kernel_source,
    load_kernel,
    load_kernels,
    training_kernels,
)

__all__ = [
    "CHSTONE_KERNELS", "MACHSUITE_KERNELS", "POLYBENCH_KERNELS",
    "DSE_KERNELS", "EXTRA_KERNELS", "KERNEL_SOURCES", "TRAIN_KERNELS",
    "all_kernels", "dse_kernels", "kernel_source", "load_kernel",
    "load_kernels", "training_kernels",
]
