"""The hierarchical modeling flow of Fig. 3 / Fig. 4, step by step.

Takes a kernel with two nested loops (mvt), applies a pragma configuration,
and walks through what the hierarchical approach does at inference time:

1. classify the inner-hierarchy loops (the four categories of Section III-C);
2. build the per-loop subgraphs with loop-level features (II, TC, ...);
3. predict each inner loop's QoR with GNNp / GNNnp;
4. condense the loops into super nodes annotated with those predictions;
5. predict the whole-kernel QoR with GNNg — and compare with the flow.

Run with::

    python examples/hierarchical_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    HierarchicalModelConfig,
    HierarchicalQoRModel,
    TrainingConfig,
    build_design_instances,
)
from repro.dse.space import sample_design_space
from repro.frontend import ArrayDirective, LoopDirective, PartitionType, PragmaConfig
from repro.graph import decompose
from repro.hls import run_full_flow
from repro.kernels import load_kernel, load_kernels


def main() -> None:
    rng = np.random.default_rng(0)
    mvt = load_kernel("mvt")
    config = PragmaConfig.from_dicts(
        loops={
            "L0_0": LoopDirective(pipeline=True),
            "L1_0": LoopDirective(pipeline=True, unroll_factor=2),
            "L1": LoopDirective(unroll_factor=2),
        },
        arrays={"A": ArrayDirective(PartitionType.CYCLIC, factor=2, dim=2)},
    )
    print("configuration:", config.describe())

    # ------------------------------------------------------------------ #
    # decomposition (no learning involved)
    # ------------------------------------------------------------------ #
    decomposition = decompose(mvt, config)
    print("\ninner-hierarchy units:")
    for unit in decomposition.inner_units:
        features = unit.subgraph.loop_features
        print(f"  {unit.label}: {unit.category.name.lower()}  pipelined={unit.pipelined}  "
              f"nodes={unit.subgraph.num_nodes}  II={features.ii:.0f}  "
              f"TC={features.tripcount:.0f}")
    print("outer graph:", decomposition.outer_graph.summary())

    # ------------------------------------------------------------------ #
    # train on other kernels, then predict this design hierarchically
    # ------------------------------------------------------------------ #
    kernels = load_kernels(("gemm", "atax", "gesummv", "gemver"))
    configs = {
        name: sample_design_space(function, 18, rng=rng)
        for name, function in kernels.items()
    }
    instances = build_design_instances(kernels, configs)
    model = HierarchicalQoRModel(
        HierarchicalModelConfig(training=TrainingConfig(epochs=35, batch_size=32))
    )
    model.fit(instances)

    print("\nper-inner-loop predictions (GNNp / GNNnp):")
    for unit in decomposition.inner_units:
        prediction = model.predict_inner_unit(unit)
        print(f"  {unit.label}: latency={prediction['latency']:9.0f}  "
              f"LUT={prediction['lut']:7.0f}  FF={prediction['ff']:7.0f}  "
              f"DSP={prediction['dsp']:5.1f}")

    predicted = model.predict(mvt, config)
    actual = run_full_flow(mvt, config)
    print("\nwhole-design QoR (GNNg vs ground-truth flow):")
    for metric in ("latency", "lut", "ff", "dsp"):
        truth = actual.as_dict()[metric]
        error = abs(predicted[metric] - truth) / max(truth, 1.0) * 100
        print(f"  {metric:8s} predicted={predicted[metric]:10.0f}  "
              f"actual={truth:10.0f}  error={error:5.1f}%")


if __name__ == "__main__":
    main()
